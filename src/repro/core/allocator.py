"""The proactive application-centric VM allocation algorithm (Sect. III-D).

Inputs, per the paper: "(i) the database with the allocation model,
(ii) values from the base experiments such as OSC/OSM/OSI (can be
extracted from the auxiliary file), (iii) a set of VMs and the
application's profile and maximum execution time (QoS guarantees) for
each of them, and (iv) the optimization goal (alpha).  The algorithm
returns the allocation of VMs that best matches the input optimization
goal while satisfying the QoS constraints."

Search: brute force over partitions of the input VM set.  Because VMs
are interchangeable within a workload class, the default fast path
enumerates *type partitions* (multiset partitions over class counts)
instead of raw Orlov set partitions -- the candidate spaces are
equivalent for scoring purposes and the type-aware one is exponentially
smaller.  Each partition's blocks are assigned greedily to the first
feasible server in list order (feasible = the server's combined mix
stays inside the database grid and under its VM limit); candidates are
ranked by the alpha objective with ties resolving to the
earliest-enumerated candidate, which implements "if two partitions have
the same rank in different servers, we select the first server of the
list".

QoS: a candidate is compliant when, for every placed VM, the estimated
execution time of its server's combined mix is within the VM's maximum
execution time.  Strict mode raises when no compliant candidate exists
("The algorithm can be relaxed by disregarding the QoS guarantees but
it might be not acceptable for production system"); relaxed mode then
falls back to the best non-compliant candidate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.campaign.records import MixKey, key_for_classes, total_vms
from repro.common.errors import (
    ConfigurationError,
    InfeasibleAllocationError,
    ModelLookupError,
    QoSViolationError,
)
from repro.core.model import EstimatedOutcome, ModelDatabase
from repro.core.partitions import type_partitions
from repro.core.plan import AllocationPlan, BlockAssignment
from repro.core.scoring import ScoreWeights, score_candidates
from repro.testbed.benchmarks import WorkloadClass


@dataclass(frozen=True)
class VMRequest:
    """One VM awaiting allocation.

    ``max_exec_time_s`` is the QoS guarantee (maximum execution time);
    ``None`` means no deadline.
    """

    vm_id: str
    workload_class: WorkloadClass
    max_exec_time_s: float | None = None

    def __post_init__(self) -> None:
        if not self.vm_id:
            raise ConfigurationError("vm_id must be non-empty")
        if self.max_exec_time_s is not None and self.max_exec_time_s <= 0:
            raise ConfigurationError(
                f"max_exec_time_s must be positive or None, got {self.max_exec_time_s}"
            )
        object.__setattr__(self, "workload_class", WorkloadClass(self.workload_class))


@dataclass(frozen=True)
class ServerState:
    """A server's identity and its current (already running) mix."""

    server_id: str
    allocated: MixKey = (0, 0, 0)
    max_vms: int | None = None

    def __post_init__(self) -> None:
        if not self.server_id:
            raise ConfigurationError("server_id must be non-empty")
        if min(self.allocated) < 0:
            raise ConfigurationError(f"allocated counts must be >= 0, got {self.allocated}")
        if self.max_vms is not None and self.max_vms < 1:
            raise ConfigurationError(f"max_vms must be >= 1 or None, got {self.max_vms}")

    def combined(self, block: MixKey) -> MixKey:
        return (
            self.allocated[0] + block[0],
            self.allocated[1] + block[1],
            self.allocated[2] + block[2],
        )


@dataclass(frozen=True)
class _Candidate:
    """Internal: one fully assigned partition, pre-scoring.

    ``rank_time_s`` is the time aggregate used for ranking: the
    estimated completion of the slowest touched server.  (An
    alternative ranking by average-execution-time-per-VM -- the
    paper's Sect. III metric -- rewards density so strongly that the
    greedy assignment over-consolidates into thrashing mixes; see
    DESIGN.md, "Key design choices".)  ``makespan_s`` keeps the
    wall-clock completion estimate for QoS and plan reporting; with
    this ranking the two coincide.
    """

    assignments: tuple[tuple[str, MixKey, MixKey, EstimatedOutcome], ...]
    rank_time_s: float
    makespan_s: float
    energy_j: float
    qos_ok: bool


class ProactiveAllocator:
    """The paper's allocation algorithm, bound to one model database.

    Parameters
    ----------
    database:
        The empirical model (records + Table I bounds).
    alpha:
        Optimization goal: 1 = minimize energy (PA-1), 0 = minimize
        execution time (PA-0), 0.5 = balanced (PA-0.5).
    strict_qos:
        Raise :class:`QoSViolationError` when no QoS-compliant
        allocation exists (otherwise return the best non-compliant
        one).
    max_candidates:
        Safety valve on the brute-force enumeration; exceeding it
        raises :class:`ConfigurationError` so callers learn they
        passed an unreasonably large batch instead of hanging.
    """

    def __init__(
        self,
        database: ModelDatabase,
        alpha: float = 0.5,
        strict_qos: bool = True,
        max_candidates: int = 2_000_000,
    ):
        self._db = database
        self._weights = ScoreWeights(alpha)
        self._strict_qos = bool(strict_qos)
        if max_candidates < 1:
            raise ConfigurationError(f"max_candidates must be >= 1, got {max_candidates}")
        self._max_candidates = int(max_candidates)

    @property
    def database(self) -> ModelDatabase:
        return self._db

    @property
    def alpha(self) -> float:
        return self._weights.alpha

    @property
    def strict_qos(self) -> bool:
        return self._strict_qos

    def allocate(
        self,
        requests: Sequence[VMRequest],
        servers: Sequence[ServerState],
    ) -> AllocationPlan:
        """Allocate a batch of VM requests onto the given servers.

        Returns the best-scoring :class:`AllocationPlan`.

        Raises
        ------
        InfeasibleAllocationError
            No partition fits the servers' residual capacities.
        QoSViolationError
            (strict mode) capacity-feasible plans exist but all break
            some VM's deadline.
        """
        if not requests:
            return AllocationPlan(assignments=(), alpha=self.alpha, score=0.0, qos_satisfied=True)
        if not servers:
            raise InfeasibleAllocationError("no servers available")
        ids = [r.vm_id for r in requests]
        if len(set(ids)) != len(ids):
            raise ConfigurationError(f"duplicate vm_id in batch: {ids}")

        counts = key_for_classes([r.workload_class for r in requests])
        deadlines = _tightest_deadlines(requests)
        candidates = self._enumerate_candidates(counts, servers, deadlines)
        if not candidates:
            raise InfeasibleAllocationError(
                f"no feasible partition of mix {counts} across {len(servers)} servers"
            )

        compliant = [c for c in candidates if c.qos_ok]
        pool = compliant
        qos_satisfied = True
        if not compliant:
            if self._strict_qos:
                raise QoSViolationError(
                    f"every feasible allocation of mix {counts} violates a deadline"
                )
            pool = candidates
            qos_satisfied = False

        scores = score_candidates([(c.rank_time_s, c.energy_j) for c in pool], self._weights)
        best_index = 0
        for i in range(1, len(scores)):
            if scores[i] < scores[best_index] - 1e-12:
                best_index = i
        chosen = pool[best_index]
        return self._materialize(chosen, requests, scores[best_index], qos_satisfied)

    # -- internals ---------------------------------------------------

    def _enumerate_candidates(
        self,
        counts: MixKey,
        servers: Sequence[ServerState],
        deadlines: "dict[WorkloadClass, float]",
    ) -> list[_Candidate]:
        """All (partition, greedy assignment) candidates with estimates."""
        candidates: list[_Candidate] = []
        bounds = self._db.grid_bounds
        produced = 0
        for partition in type_partitions(counts, bounds):
            produced += 1
            if produced > self._max_candidates:
                raise ConfigurationError(
                    f"partition enumeration exceeded {self._max_candidates} "
                    f"candidates for mix {counts}; split the batch"
                )
            candidate = self._assign_partition(partition, servers, deadlines)
            if candidate is not None:
                candidates.append(candidate)
        return candidates

    def _assign_partition(
        self,
        partition: tuple[MixKey, ...],
        servers: Sequence[ServerState],
        deadlines: "dict[WorkloadClass, float]",
    ) -> _Candidate | None:
        """Score-driven assignment of one partition's blocks to servers.

        For every block (largest first -- hardest to fit, and the pass
        is order-sensitive) each feasible server is evaluated by the
        alpha objective over the *marginal* cost of hosting the block:
        marginal energy (combined-mix energy minus what the server's
        existing mix was already going to consume -- waking an empty
        server pays its idle draw, joining a busy one amortizes it)
        and the combined mix's completion time.  The block goes to the
        best-scoring server, ties resolving to the first in list order
        (the paper's rule).  Servers whose (current mix, VM cap) are
        identical are interchangeable, so only the first of each
        equivalence class is evaluated.

        Returns None when some block cannot be placed anywhere.
        """
        max_time = self._db.time_range_s[1]
        max_energy = self._db.energy_range_j[1]
        residual: list[MixKey] = [s.allocated for s in servers]
        base_energy: list[float | None] = [None] * len(servers)  # lazy
        picks: list[tuple[str, MixKey, MixKey, EstimatedOutcome]] = []
        touched: dict[int, tuple[float, EstimatedOutcome]] = {}  # index -> (energy0, final est)

        for block in sorted(partition, key=total_vms, reverse=True):
            block_deadline = _block_deadline(block, deadlines)
            best_index: int | None = None
            best_score = float("inf")
            best_estimate: EstimatedOutcome | None = None
            best_compliant = False
            seen_classes: set[tuple[MixKey, int | None]] = set()
            for index, server in enumerate(servers):
                equivalence = (residual[index], server.max_vms)
                if equivalence in seen_classes:
                    continue
                seen_classes.add(equivalence)
                combined = (
                    residual[index][0] + block[0],
                    residual[index][1] + block[1],
                    residual[index][2] + block[2],
                )
                if not self._db.within_bounds(combined):
                    continue
                if server.max_vms is not None and total_vms(combined) > server.max_vms:
                    continue
                try:
                    estimate = self._db.estimate(combined)
                except ModelLookupError:
                    continue
                if base_energy[index] is None:
                    base_energy[index] = self._existing_energy(residual[index])
                marginal_energy = max(0.0, estimate.energy_j - base_energy[index])
                score = (
                    self._weights.energy_weight * (marginal_energy / max_energy)
                    + self._weights.time_weight * (estimate.time_s / max_time)
                )
                compliant = block_deadline is None or estimate.time_s <= block_deadline
                # Deadline-compliant placements always beat non-compliant
                # ones; within a compliance tier the alpha score decides.
                better = (compliant, -score) > (best_compliant, -best_score)
                if best_index is None or better:
                    best_score = score
                    best_index = index
                    best_estimate = estimate
                    best_compliant = compliant
            if best_index is None:
                return None
            assert best_estimate is not None
            if best_index not in touched:
                energy0 = base_energy[best_index]
                assert energy0 is not None
                touched[best_index] = (energy0, best_estimate)
            else:
                touched[best_index] = (touched[best_index][0], best_estimate)
            residual[best_index] = best_estimate.key
            base_energy[best_index] = best_estimate.energy_j
            picks.append(
                (servers[best_index].server_id, block, best_estimate.key, best_estimate)
            )

        makespan = max(est.time_s for _, est in touched.values())
        rank_time = makespan
        energy = sum(max(0.0, est.energy_j - energy0) for energy0, est in touched.values())
        qos_ok = all(
            _block_meets_deadline(block, estimate, deadlines)
            for _, block, _, estimate in picks
        )
        return _Candidate(
            assignments=tuple(picks),
            rank_time_s=rank_time,
            makespan_s=makespan,
            energy_j=energy,
            qos_ok=qos_ok,
        )

    def _existing_energy(self, mix: MixKey) -> float:
        """Energy the server's existing mix is already committed to.

        Zero for an idle server: placing nothing there costs nothing,
        so a block placed on it is charged the full combined-mix energy
        including the idle draw it wakes up.
        """
        if total_vms(mix) == 0:
            return 0.0
        try:
            return self._db.estimate(mix).energy_j
        except ModelLookupError:
            return 0.0

    def _materialize(
        self,
        chosen: _Candidate,
        requests: Sequence[VMRequest],
        score: float,
        qos_satisfied: bool,
    ) -> AllocationPlan:
        """Bind concrete VM ids to the chosen partition's blocks."""
        queues: dict[WorkloadClass, list[str]] = {
            WorkloadClass.CPU: [],
            WorkloadClass.MEM: [],
            WorkloadClass.IO: [],
        }
        for request in requests:
            queues[request.workload_class].append(request.vm_id)

        assignments: list[BlockAssignment] = []
        for server_id, block, combined, estimate in chosen.assignments:
            vm_ids: list[str] = []
            for class_index, workload_class in enumerate(
                (WorkloadClass.CPU, WorkloadClass.MEM, WorkloadClass.IO)
            ):
                take = block[class_index]
                vm_ids.extend(queues[workload_class][:take])
                del queues[workload_class][:take]
            assignments.append(
                BlockAssignment(
                    server_id=server_id,
                    block=block,
                    vm_ids=tuple(vm_ids),
                    combined_key=combined,
                    estimate=estimate,
                )
            )
        return AllocationPlan(
            assignments=tuple(assignments),
            alpha=self.alpha,
            score=score,
            qos_satisfied=qos_satisfied,
        )

def _tightest_deadlines(requests: Iterable[VMRequest]) -> dict[WorkloadClass, float]:
    """Per-class minimum of the requests' QoS deadlines.

    The paper defines QoS "per application type and not for each
    specific request", so the class-level minimum is the binding
    constraint for every block containing that class.
    """
    deadlines: dict[WorkloadClass, float] = {}
    for request in requests:
        if request.max_exec_time_s is None:
            continue
        current = deadlines.get(request.workload_class)
        if current is None or request.max_exec_time_s < current:
            deadlines[request.workload_class] = request.max_exec_time_s
    return deadlines


def _block_deadline(
    block: MixKey,
    deadlines: dict[WorkloadClass, float],
) -> float | None:
    """Tightest deadline among the classes a block contains."""
    tightest: float | None = None
    for class_index, workload_class in enumerate(
        (WorkloadClass.CPU, WorkloadClass.MEM, WorkloadClass.IO)
    ):
        if block[class_index] == 0:
            continue
        deadline = deadlines.get(workload_class)
        if deadline is not None and (tightest is None or deadline < tightest):
            tightest = deadline
    return tightest


def _block_meets_deadline(
    block: MixKey,
    estimate: EstimatedOutcome,
    deadlines: dict[WorkloadClass, float],
) -> bool:
    """QoS check for one block under its server's combined estimate.

    The estimated execution time of every VM in the mix is the mix's
    total time (the conservative bound); a block complies when that
    bound fits the tightest deadline among the block's classes.
    """
    for class_index, workload_class in enumerate(
        (WorkloadClass.CPU, WorkloadClass.MEM, WorkloadClass.IO)
    ):
        if block[class_index] == 0:
            continue
        deadline = deadlines.get(workload_class)
        if deadline is not None and estimate.time_s > deadline:
            return False
    return True
