"""The proactive application-centric VM allocation algorithm (Sect. III-D).

Inputs, per the paper: "(i) the database with the allocation model,
(ii) values from the base experiments such as OSC/OSM/OSI (can be
extracted from the auxiliary file), (iii) a set of VMs and the
application's profile and maximum execution time (QoS guarantees) for
each of them, and (iv) the optimization goal (alpha).  The algorithm
returns the allocation of VMs that best matches the input optimization
goal while satisfying the QoS constraints."

Search: brute force over partitions of the input VM set.  Because VMs
are interchangeable within a workload class, the default fast path
enumerates *type partitions* (multiset partitions over class counts)
instead of raw Orlov set partitions -- the candidate spaces are
equivalent for scoring purposes and the type-aware one is exponentially
smaller.  Each partition's blocks are assigned greedily to the first
feasible server in list order (feasible = the server's combined mix
stays inside the database grid and under its VM limit); candidates are
ranked by the alpha objective with ties resolving to the
earliest-enumerated candidate, which implements "if two partitions have
the same rank in different servers, we select the first server of the
list".

QoS: a candidate is compliant when, for every placed VM, the estimated
execution time of its server's combined mix is within the VM's maximum
execution time.  Strict mode raises when no compliant candidate exists
("The algorithm can be relaxed by disregarding the QoS guarantees but
it might be not acceptable for production system"); relaxed mode then
falls back to the best non-compliant candidate.

Implementation: :meth:`ProactiveAllocator.allocate` is a streaming,
pruned search engineered to return the *bit-identical* plan of the
naive brute force (kept as :meth:`allocate_reference` and cross-checked
property-style in ``tests/properties``):

* model estimates come from the dense :class:`EstimateGrid` (one O(1)
  indexed read per (partition, block, server) probe);
* instead of materializing every feasible candidate, only the
  (makespan, energy) Pareto frontier is retained -- the alpha score is
  monotone in both axes under any fixed normalization, so a candidate
  weakly dominated by an *earlier* one can never win the
  earliest-wins epsilon tie-break.  Pool maxima for normalization are
  tracked over all evaluated candidates, dropped or not, so the final
  scores equal the full-pool scores exactly;
* for batches of ``bnb_min_vms`` or more VMs the enumeration is
  branch-and-bound pruned: blocks that no server can ever host cut
  their whole subtree (exact, via the grid's min-VMs-containing
  table), and subtrees/partial assignments whose admissible
  (time, energy) lower bounds are already weakly dominated by a
  retained compliant candidate are cut once the running pool maxima
  provably cover anything the pruned candidates could contribute.

See DESIGN.md, "Key design choices", for why each step preserves
bit-identical output.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from repro.campaign.records import MixKey, key_for_classes, total_vms
from repro.common.errors import (
    ConfigurationError,
    InfeasibleAllocationError,
    ModelLookupError,
    QoSViolationError,
)
from repro.core.anytime import AnytimeConfig, AnytimeResult, run_anytime_search
from repro.core.estimatecache import CacheStats, EstimateGrid, grid_for
from repro.core.model import EstimatedOutcome, ModelDatabase
from repro.core.partitions import count_type_partitions_capped, type_partitions
from repro.core.plan import AllocationPlan, AllocationProvenance, BlockAssignment
from repro.core.scoring import (
    CarbonContext,
    ScoreWeights,
    carbon_axis,
    score_candidates,
    score_candidates_carbon,
)
# Deliberate exception to the core->obs.runtime ban: allocate() honours the
# ambient bundle when none is injected, so `repro allocate --trace` observes
# the search without callers threading state.  The hot path itself only sees
# the injected/ambient handle (see _allocate_impl).
# repro: allow layering-import -- ambient-observability fallback, see above
from repro.obs.runtime import Observability, get_observability
from repro.testbed.benchmarks import WorkloadClass

_INF = float("inf")


@dataclass(frozen=True)
class VMRequest:
    """One VM awaiting allocation.

    ``max_exec_time_s`` is the QoS guarantee (maximum execution time);
    ``None`` means no deadline.
    """

    vm_id: str
    workload_class: WorkloadClass
    max_exec_time_s: float | None = None

    def __post_init__(self) -> None:
        if not self.vm_id:
            raise ConfigurationError("vm_id must be non-empty")
        if self.max_exec_time_s is not None and self.max_exec_time_s <= 0:
            raise ConfigurationError(
                f"max_exec_time_s must be positive or None, got {self.max_exec_time_s}"
            )
        object.__setattr__(self, "workload_class", WorkloadClass(self.workload_class))


@dataclass(frozen=True)
class ServerState:
    """A server's identity and its current (already running) mix."""

    server_id: str
    allocated: MixKey = (0, 0, 0)
    max_vms: int | None = None

    def __post_init__(self) -> None:
        if not self.server_id:
            raise ConfigurationError("server_id must be non-empty")
        if min(self.allocated) < 0:
            raise ConfigurationError(f"allocated counts must be >= 0, got {self.allocated}")
        if self.max_vms is not None and self.max_vms < 1:
            raise ConfigurationError(f"max_vms must be >= 1 or None, got {self.max_vms}")

    def combined(self, block: MixKey) -> MixKey:
        return (
            self.allocated[0] + block[0],
            self.allocated[1] + block[1],
            self.allocated[2] + block[2],
        )


@dataclass(frozen=True)
class _Candidate:
    """Internal: one fully assigned partition, pre-scoring.

    ``rank_time_s`` is the time aggregate used for ranking: the
    estimated completion of the slowest touched server.  (An
    alternative ranking by average-execution-time-per-VM -- the
    paper's Sect. III metric -- rewards density so strongly that the
    greedy assignment over-consolidates into thrashing mixes; see
    DESIGN.md, "Key design choices".)  ``makespan_s`` keeps the
    wall-clock completion estimate for QoS and plan reporting; with
    this ranking the two coincide.
    """

    assignments: tuple[tuple[str, MixKey, MixKey, EstimatedOutcome], ...]
    rank_time_s: float
    makespan_s: float
    energy_j: float
    qos_ok: bool


class _Frontier:
    """Streaming (rank_time, energy) Pareto retention with pool maxima.

    ``offer`` drops a new candidate iff some *earlier retained* one
    weakly dominates it on both axes; earlier elements are never
    evicted.  That rule is exactly lossless for the allocator's
    selection: the scan ``scores[i] < scores[best] - 1e-12`` can only
    move ``best`` to a strictly better candidate, and a dropped
    candidate's score is >= its dominator's under any shared
    normalization, so it could never have become ``best``.  The
    running ``max_time``/``max_energy`` cover *every* offered
    candidate (retained or dropped): they are the exact pool maxima
    the reference implementation normalizes by.

    The domination test is indexed by a *staircase* -- the
    Pareto-minimal points of the retained list, kept as parallel
    arrays sorted by time with strictly decreasing energy.  Some
    retained point weakly dominates ``(t, e)`` iff the staircase's
    last point with time <= t has energy <= e, so each ``offer`` is
    one bisect instead of a scan.  ``min_time``/``min_energy`` track
    the per-axis minima over *offered* candidates: a dropped
    candidate's dominator is retained and at least as good on both
    axes, so a single-axis minimum over the offered pool is always
    witnessed by a retained candidate too.
    """

    __slots__ = (
        "retained",
        "count",
        "max_time",
        "max_energy",
        "min_time",
        "min_energy",
        "peak",
        "lossless",
        "_stair_t",
        "_stair_e",
    )

    def __init__(self) -> None:
        self.retained: list[_Candidate] = []
        self.lossless = False
        self.count = 0
        self.max_time = 0.0
        self.max_energy = 0.0
        self.min_time = _INF
        self.min_energy = _INF
        self.peak = 0
        self._stair_t: list[float] = []
        self._stair_e: list[float] = []

    def observe(self, time_s: float, energy_j: float) -> None:
        """Fold a candidate's aggregates into the pool *maxima* only.

        Used by the warm start; deliberately leaves the minima and the
        staircase untouched -- the warm candidate is enumerated late,
        so it must never serve as a dominance witness for candidates
        that precede its natural position.
        """
        if time_s > self.max_time:
            self.max_time = time_s
        if energy_j > self.max_energy:
            self.max_energy = energy_j

    def dominated(self, time_s: float, energy_j: float) -> bool:
        """Whether some retained candidate weakly dominates (t, e)."""
        i = bisect_right(self._stair_t, time_s)
        return i > 0 and self._stair_e[i - 1] <= energy_j

    def offer(self, candidate: _Candidate) -> bool:
        self.count += 1
        time_s = candidate.rank_time_s
        energy_j = candidate.energy_j
        if time_s > self.max_time:
            self.max_time = time_s
        if energy_j > self.max_energy:
            self.max_energy = energy_j
        if time_s < self.min_time:
            self.min_time = time_s
        if energy_j < self.min_energy:
            self.min_energy = energy_j
        if self.lossless:
            # Carbon-aware pools: (t, e)-dominance is lossy once the
            # carbon axis joins the score, so every feasible candidate
            # stays scoreable and the staircase is never consulted.
            self.retained.append(candidate)
            if len(self.retained) > self.peak:
                self.peak = len(self.retained)
            return True
        stair_t = self._stair_t
        stair_e = self._stair_e
        i = bisect_right(stair_t, time_s)
        if i > 0 and stair_e[i - 1] <= energy_j:
            return False
        self.retained.append(candidate)
        if len(self.retained) > self.peak:
            self.peak = len(self.retained)
        # Staircase insert: evict the (contiguous) points the new one
        # dominates, keeping times increasing and energies decreasing.
        pos = bisect_left(stair_t, time_s)
        j = pos
        n = len(stair_t)
        while j < n and stair_e[j] >= energy_j:
            j += 1
        if j > pos:
            del stair_t[pos:j]
            del stair_e[pos:j]
        stair_t.insert(pos, time_s)
        stair_e.insert(pos, energy_j)
        return True

    def drop_retention(self) -> None:
        """Release retained candidates (pool can no longer be scored)."""
        self.retained.clear()
        self._stair_t.clear()
        self._stair_e.clear()


class _SearchState:
    """Per-allocate scratch: precomputed server data, frontiers, bounds."""

    __slots__ = (
        "servers",
        "server_ids",
        "caps",
        "deadlines",
        "deadline_memo",
        "stats",
        "cells",
        "bounds",
        "stride_c",
        "stride_m",
        "norm_time",
        "norm_energy",
        "residual0",
        "base0",
        "inbox",
        "compliant",
        "fallback",
        "tables",
        "dominance",
        "ready",
        "need_t",
        "need_e",
        "ub_time",
        "ub_energy",
        "block_memo",
    )


class ProactiveAllocator:
    """The paper's allocation algorithm, bound to one model database.

    Parameters
    ----------
    database:
        The empirical model (records + Table I bounds).
    alpha:
        Optimization goal: 1 = minimize energy (PA-1), 0 = minimize
        execution time (PA-0), 0.5 = balanced (PA-0.5).
    strict_qos:
        Raise :class:`QoSViolationError` when no QoS-compliant
        allocation exists (otherwise return the best non-compliant
        one).
    max_candidates:
        Safety valve on the brute-force enumeration; exceeding it
        raises :class:`ConfigurationError` so callers learn they
        passed an unreasonably large batch instead of hanging.  With
        branch-and-bound active the valve counts *expanded* partitions
        (pruned subtrees are free).
    bnb_min_vms:
        Batch size (total VMs) from which the branch-and-bound
        machinery (bound tables, warm start, subtree pruning) is
        armed.  Small batches skip the setup entirely -- their
        enumeration is already microseconds and the paper's
        steady-state bursts stay in that regime.
    obs:
        Observability bundle (:mod:`repro.obs`); ``None`` resolves the
        process-local default per call.  When enabled, each ``allocate``
        emits one ``allocator.allocate`` span and folds its search
        counters into ``allocator.*`` registry counters; when disabled
        (the default) the only cost is one predicate check per call.
    anytime:
        Anytime-search policy.  ``None`` (default) enables automatic
        mode selection with default :class:`AnytimeConfig` knobs:
        batches whose type-partition family reaches
        ``exact_partition_limit`` run the bounded beam + local search
        of :mod:`repro.core.anytime`, smaller ones keep the exact
        enumerator and bit-identical plans.  ``True`` forces the
        anytime path for every batch; ``False`` disables it (the exact
        enumerator always runs); an :class:`AnytimeConfig` customizes
        the knobs.
    time_budget_s:
        Optional wall-clock deadline for the anytime search.  Setting
        it forces the anytime path and arms a monotonic deadline --
        this is the one opt-in departure from determinism (see
        :class:`repro.core.anytime.Deadline`).  Rejected when
        ``anytime=False``.
    carbon:
        Optional :class:`repro.core.scoring.CarbonContext` folding
        time-integrated carbon mass and energy cost into the score as
        a third axis weighted by its ``alpha_carbon``.  A context with
        ``alpha_carbon == 0`` (or ``None``) leaves every code path --
        and every float -- bit-identical to the 2-way allocator.  An
        active context retains all feasible candidates (the carbon
        window mean is not monotone in (time, energy), so Pareto
        retention would be lossy) and keeps the exact enumerator:
        combining it with a forced anytime mode or a time budget is a
        configuration error.
    """

    def __init__(
        self,
        database: ModelDatabase,
        alpha: float = 0.5,
        strict_qos: bool = True,
        max_candidates: int = 2_000_000,
        bnb_min_vms: int = 9,
        obs: Observability | None = None,
        anytime: "AnytimeConfig | bool | None" = None,
        time_budget_s: float | None = None,
        carbon: CarbonContext | None = None,
    ):
        self._db = database
        self._carbon = (
            carbon if carbon is not None and carbon.alpha_carbon > 0.0 else None
        )
        self._weights = ScoreWeights(
            alpha,
            alpha_carbon=(
                self._carbon.alpha_carbon if self._carbon is not None else 0.0
            ),
        )
        self._strict_qos = bool(strict_qos)
        if max_candidates < 1:
            raise ConfigurationError(f"max_candidates must be >= 1, got {max_candidates}")
        self._max_candidates = int(max_candidates)
        if bnb_min_vms < 0:
            raise ConfigurationError(f"bnb_min_vms must be >= 0, got {bnb_min_vms}")
        self._bnb_min_vms = int(bnb_min_vms)
        self._obs = obs
        self._grid: EstimateGrid = grid_for(database)
        if anytime is False:
            if time_budget_s is not None:
                raise ConfigurationError(
                    "time_budget_s requires the anytime mode, got anytime=False"
                )
            self._anytime_config: AnytimeConfig | None = None
            self._anytime_forced = False
        elif anytime is None or anytime is True:
            self._anytime_config = AnytimeConfig(time_budget_s=time_budget_s)
            self._anytime_forced = anytime is True or time_budget_s is not None
        elif isinstance(anytime, AnytimeConfig):
            config = anytime
            if time_budget_s is not None:
                config = replace(config, time_budget_s=time_budget_s)
            self._anytime_config = config
            self._anytime_forced = config.time_budget_s is not None
        else:
            raise ConfigurationError(
                f"anytime must be an AnytimeConfig, bool, or None, got {anytime!r}"
            )
        if self._carbon is not None and self._anytime_forced:
            raise ConfigurationError(
                "carbon-aware scoring keeps the exact enumerator; it cannot "
                "be combined with a forced anytime mode or a time budget"
            )
        # Mode-selection memo: counts -> bool (bounds are fixed per
        # allocator), plus the shared saturating-DP state memo behind
        # it -- the decision is O(1) after the first check per mix.
        self._mode_memo: dict[MixKey, bool] = {}
        self._count_memo: dict = {}

    @property
    def database(self) -> ModelDatabase:
        return self._db

    @property
    def alpha(self) -> float:
        return self._weights.alpha

    @property
    def weights(self) -> ScoreWeights:
        """The resolved score weights (including the carbon knob)."""
        return self._weights

    @property
    def carbon(self) -> CarbonContext | None:
        """The active carbon context (None when scoring is 2-way)."""
        return self._carbon

    @property
    def strict_qos(self) -> bool:
        return self._strict_qos

    @property
    def estimate_grid(self) -> EstimateGrid:
        """The dense estimate cache backing the optimized search."""
        return self._grid

    def allocate(
        self,
        requests: Sequence[VMRequest],
        servers: Sequence[ServerState],
    ) -> AllocationPlan:
        """Allocate a batch of VM requests onto the given servers.

        Returns the best-scoring :class:`AllocationPlan`, carrying an
        :class:`AllocationProvenance` with the search's cache/prune
        counters (also folded into the observability registry when one
        is enabled).  The selected plan (assignments, score, QoS flag)
        is bit-identical to :meth:`allocate_reference`.

        Raises
        ------
        InfeasibleAllocationError
            No partition fits the servers' residual capacities.
        QoSViolationError
            (strict mode) capacity-feasible plans exist but all break
            some VM's deadline.
        """
        obs = self._obs if self._obs is not None else get_observability()
        if not obs.enabled:
            return self._allocate_impl(requests, servers, None)
        span = obs.tracer.start(
            "allocator.allocate",
            n_vms=len(requests),
            n_servers=len(servers),
            alpha=self.alpha,
        )
        try:
            plan = self._allocate_impl(requests, servers, obs)
        except Exception as exc:
            obs.registry.counter(
                "allocator.errors", kind=type(exc).__name__
            ).inc()
            span.end(outcome=type(exc).__name__)
            raise
        provenance = plan.search_provenance
        span.end(
            outcome="ok",
            score=plan.score,
            qos_satisfied=plan.qos_satisfied,
            partitions=(
                provenance.partitions_enumerated if provenance is not None else 0
            ),
        )
        return plan

    def _allocate_impl(
        self,
        requests: Sequence[VMRequest],
        servers: Sequence[ServerState],
        obs: Observability | None,
    ) -> AllocationPlan:
        if not requests:
            return AllocationPlan(
                assignments=(),
                alpha=self.alpha,
                score=0.0,
                qos_satisfied=True,
                alpha_carbon=self._weights.alpha_carbon,
            )
        if not servers:
            raise InfeasibleAllocationError("no servers available")
        ids = [r.vm_id for r in requests]
        if len(set(ids)) != len(ids):
            raise ConfigurationError(f"duplicate vm_id in batch: {ids}")

        counts = key_for_classes([r.workload_class for r in requests])
        deadlines = _tightest_deadlines(requests)
        state = self._prepare_state(counts, servers, deadlines)

        # Aggregate-capacity fast path: if the batch exceeds what the
        # servers' residual grid/VM slack could absorb in total, no
        # partition is feasible -- skip enumeration entirely.
        if self._capacity_infeasible(counts, state):
            raise InfeasibleAllocationError(
                f"no feasible partition of mix {counts} across {len(servers)} servers"
            )

        anytime_result: AnytimeResult | None = None
        if self._select_anytime(counts, obs):
            anytime_result = self._stream_anytime(counts, state)
            if (state.compliant.count == 0 and state.fallback.count == 0) or (
                self._strict_qos and state.compliant.count == 0
            ):
                # The heuristic found nothing usable (or nothing
                # compliant in strict mode): rerun the exact enumerator
                # on a fresh state so infeasibility and strict-QoS
                # errors keep their certified exact-mode semantics.
                prior = state.stats
                state = self._prepare_state(counts, servers, deadlines)
                state.stats.anytime = True
                state.stats.anytime_exact_fallback = True
                state.stats.anytime_beam_width = prior.anytime_beam_width
                state.stats.anytime_rounds = prior.anytime_rounds
                state.stats.anytime_evaluated = prior.anytime_evaluated
                state.stats.anytime_budget_exhausted = prior.anytime_budget_exhausted
                self._stream_candidates(counts, state)
        else:
            self._stream_candidates(counts, state)

        stats = state.stats
        compliant = state.compliant
        fallback = state.fallback
        if compliant.count == 0 and fallback.count == 0:
            raise InfeasibleAllocationError(
                f"no feasible partition of mix {counts} across {len(servers)} servers"
            )
        if compliant.count:
            frontier = compliant
            qos_satisfied = True
        else:
            if self._strict_qos:
                raise QoSViolationError(
                    f"every feasible allocation of mix {counts} violates a deadline"
                )
            frontier = fallback
            qos_satisfied = False

        retained = frontier.retained
        impacts: list[tuple[float, float]] | None = None
        if self._carbon is None:
            scores = score_candidates(
                [(c.rank_time_s, c.energy_j) for c in retained],
                self._weights,
                maxima=(frontier.max_time, frontier.max_energy),
            )
        else:
            impacts = [
                self._carbon.impact(c.energy_j, c.rank_time_s) for c in retained
            ]
            axis = carbon_axis(impacts)
            scores = score_candidates_carbon(
                [
                    (c.rank_time_s, c.energy_j, axis[i])
                    for i, c in enumerate(retained)
                ],
                self._weights,
                maxima=(frontier.max_time, frontier.max_energy),
            )
        best_index = 0
        for i in range(1, len(scores)):
            if scores[i] < scores[best_index] - 1e-12:
                best_index = i
        chosen = retained[best_index]

        stats.candidates_feasible = compliant.count + fallback.count
        stats.candidates_compliant = compliant.count
        stats.frontier_retained = len(retained)
        stats.frontier_peak = max(compliant.peak, fallback.peak)
        counts = stats.as_dict()
        if obs is not None:
            obs.registry.counter("allocator.calls").inc()
            obs.registry.merge_counts(counts, prefix="allocator.")
        # Wall-clock budget figures bypass the (numeric-only) counter
        # registry and live on the provenance record alone.
        extra: dict = {}
        if anytime_result is not None and self._anytime_config.time_budget_s is not None:
            extra["time_budget_s"] = self._anytime_config.time_budget_s
            extra["budget_consumed_s"] = anytime_result.budget_consumed_s
        provenance = AllocationProvenance.from_counts(counts, **extra)
        return self._materialize(
            chosen,
            requests,
            scores[best_index],
            qos_satisfied,
            provenance,
            carbon_impact=None if impacts is None else impacts[best_index],
        )

    def _select_anytime(self, counts: MixKey, obs: Observability | None) -> bool:
        """Whether this batch takes the anytime path.

        Forced configurations (explicit ``anytime=True`` or a live
        ``time_budget_s``) always do.  Auto mode first applies the
        free ``mode_check_min_vms`` floor (the paper's steady-state
        bursts never reach it), then asks the saturating partition
        count whether the family reaches ``exact_partition_limit`` --
        memoized per mix, so repeated batches decide in one dict hit.
        """
        config = self._anytime_config
        if config is None:
            return False
        if self._carbon is not None:
            # Carbon-aware scoring needs the lossless exact pool; the
            # beam heuristic retains a (t, e)-frontier only.  Forced
            # anytime with carbon was rejected in the constructor.
            return False
        if self._anytime_forced:
            return True
        if total_vms(counts) < config.mode_check_min_vms:
            return False
        cached = self._mode_memo.get(counts)
        if cached is None:
            reached = count_type_partitions_capped(
                counts,
                self._db.grid_bounds,
                cap=config.exact_partition_limit,
                memo=self._count_memo,
            )
            cached = reached >= config.exact_partition_limit
            self._mode_memo[counts] = cached
            outcome = "computed"
        else:
            outcome = "memo"
        if obs is not None:
            obs.registry.counter("allocator.mode_checks", outcome=outcome).inc()
        return cached

    def _stream_anytime(self, counts: MixKey, state: _SearchState) -> AnytimeResult:
        """Run the bounded beam + local search, streaming every
        evaluated candidate into the same Pareto frontiers the exact
        path uses (so final scoring and tie-breaking are shared)."""
        config = self._anytime_config
        stats = state.stats
        stats.anytime = True
        stats.anytime_beam_width = config.beam_width
        if state.tables is None:
            # Guidance needs the min-containing tables even when the
            # batch is below the branch-and-bound arming size.
            state.tables = self._grid.bound_tables()
        bounds = self._db.grid_bounds
        norm_time = state.norm_time
        norm_energy = state.norm_energy
        energy_weight = self._weights.energy_weight
        time_weight = self._weights.time_weight

        def objective(time_s: float, energy_j: float) -> float:
            score = 0.0
            if norm_energy > 0.0:
                score += energy_weight * (energy_j / norm_energy)
            if norm_time > 0.0:
                score += time_weight * (time_s / norm_time)
            return score

        def evaluate(partition):
            stats.partitions_enumerated += 1
            candidate = self._assign_streamed(partition, state, abortable=True)
            if candidate is None:
                return None
            self._offer(candidate, state)
            return objective(candidate.rank_time_s, candidate.energy_j)

        def guidance(prefix, remaining):
            # Ranking heuristic, not an admissible bound: makespan is
            # the max of the blocks' placement time bounds, but energy
            # *sums* the bounds -- overcounting when blocks share a
            # server, yet far better at penalizing over-fine prefixes
            # than the max the exact pruner must use.
            lb_t = 0.0
            lb_e = 0.0
            for block in prefix:
                info = self._block_info(block, state)
                if info is None:
                    return None
                block_lb_t, block_lb_e = info
                if block_lb_t > lb_t:
                    lb_t = block_lb_t
                lb_e += block_lb_e
            return objective(lb_t, lb_e)

        result = run_anytime_search(counts, bounds, config, evaluate, guidance)
        stats.anytime_rounds = result.rounds
        stats.anytime_evaluated = result.evaluated
        stats.anytime_budget_exhausted = result.budget_exhausted
        return result

    # -- optimized search --------------------------------------------

    def _prepare_state(
        self,
        counts: MixKey,
        servers: Sequence[ServerState],
        deadlines: "dict[WorkloadClass, float]",
    ) -> _SearchState:
        grid = self._grid
        state = _SearchState()
        state.servers = servers
        state.server_ids = [s.server_id for s in servers]
        state.caps = [s.max_vms for s in servers]
        state.deadlines = deadlines
        state.deadline_memo = {}
        state.stats = CacheStats()
        state.cells = grid.cells
        state.bounds = grid.bounds
        state.stride_c = grid.stride_c
        state.stride_m = grid.stride_m
        state.norm_time = self._db.time_range_s[1]
        state.norm_energy = self._db.energy_range_j[1]
        state.compliant = _Frontier()
        state.fallback = _Frontier()
        if self._carbon is not None:
            # (t, e)-dominance is lossy once the carbon axis joins the
            # score: the cheapest-carbon candidate can be dominated on
            # both time and energy.  Retain every feasible candidate.
            state.compliant.lossless = True
            state.fallback.lossless = True
        state.tables = None
        state.dominance = False
        state.ready = False
        # Weights are fractions in [0, 1] (check_fraction), so "goal
        # contributes" is exactly "weight is positive" -- no equality.
        # Carbon scoring consumes both estimates regardless of weights.
        state.need_t = self._weights.time_weight > 0.0 or self._carbon is not None
        state.need_e = self._weights.energy_weight > 0.0 or self._carbon is not None
        state.ub_time = -_INF
        state.ub_energy = -_INF
        state.block_memo = {}

        residual0: list[MixKey] = []
        base0: list[float] = []
        inbox: list[bool] = []
        for server in servers:
            mix = server.allocated
            residual0.append(mix)
            if not grid.covers(mix):
                # Off-grid residual: every combined mix is off-grid
                # too, so the server can never host a block and its
                # base energy is never consulted.
                inbox.append(False)
                base0.append(0.0)
                continue
            inbox.append(True)
            if total_vms(mix) == 0:
                base0.append(0.0)
                continue
            cell = state.cells[grid.index(mix)]
            if cell is None:
                # The reference path silently treats an unestimable
                # existing mix as zero committed energy; keep the value
                # but surface the event in the provenance counters.
                state.stats.energy_fallbacks += 1
                base0.append(0.0)
            else:
                base0.append(cell.energy_j)
        state.residual0 = residual0
        state.base0 = base0
        state.inbox = inbox

        if self._carbon is None and total_vms(counts) >= self._bnb_min_vms:
            # Branch-and-bound prunes on (time, energy) upper bounds,
            # which would drop carbon-preferable candidates; the carbon
            # path enumerates the full feasible pool instead.
            state.stats.bnb_active = True
            state.tables = grid.bound_tables()
            state.ub_time, state.ub_energy = self._upper_bounds(counts, state)
            state.dominance = True
        return state

    def _capacity_infeasible(self, counts: MixKey, state: _SearchState) -> bool:
        """Exact necessary condition: per-dimension and total VM slack.

        Sums, over in-grid servers, how many VMs of each class (and in
        total) each could still absorb given the grid box and its
        ``max_vms``; any feasible assignment respects these caps, so a
        batch exceeding one has no feasible partition.
        """
        osc, osm, osi = state.bounds
        cap_c = cap_m = cap_i = 0
        cap_total = 0
        for index, server in enumerate(state.servers):
            if not state.inbox[index]:
                continue
            rc, rm, ri = state.residual0[index]
            slack_c = osc - rc
            slack_m = osm - rm
            slack_i = osi - ri
            box_slack = slack_c + slack_m + slack_i
            if server.max_vms is None:
                vm_slack = box_slack
            else:
                vm_slack = server.max_vms - (rc + rm + ri)
                if vm_slack < 0:
                    vm_slack = 0
            cap_c += slack_c if slack_c < vm_slack else vm_slack
            cap_m += slack_m if slack_m < vm_slack else vm_slack
            cap_i += slack_i if slack_i < vm_slack else vm_slack
            cap_total += box_slack if box_slack < vm_slack else vm_slack
        ncpu, nmem, nio = counts
        return (
            ncpu > cap_c
            or nmem > cap_m
            or nio > cap_i
            or ncpu + nmem + nio > cap_total
        )

    def _upper_bounds(self, counts: MixKey, state: _SearchState) -> tuple[float, float]:
        """Admissible maxima over every possible candidate's aggregates.

        ``ub_time``: no candidate's makespan can exceed the largest
        estimable time among mixes any single server could end up
        running (its residual plus a sub-mix of the batch, within its
        VM cap).  ``ub_energy``: a small knapsack over servers -- each
        receiving ``a`` of the batch's ``n`` VMs contributes at most
        its best estimable marginal energy at that count -- bounds the
        summed marginal energy of any candidate.  Both gate the
        dominance latch: pruning only starts once the running compliant
        pool maxima reach these bounds, so pruned candidates provably
        cannot change the normalization (see DESIGN.md).
        """
        n = total_vms(counts)
        osc, osm, osi = state.bounds
        cells = state.cells
        stride_c = state.stride_c
        stride_m = state.stride_m
        ub_time = -_INF
        best = [0.0] + [-_INF] * n
        # Identical (residual, cap, base) servers share scan results.
        scan_memo: dict[tuple[MixKey, int | None], tuple[float, list[float]]] = {}
        for index, server in enumerate(state.servers):
            if not state.inbox[index]:
                continue
            key = (state.residual0[index], server.max_vms)
            cached = scan_memo.get(key)
            if cached is None:
                rc, rm, ri = state.residual0[index]
                r_total = rc + rm + ri
                cap = n
                if server.max_vms is not None and server.max_vms - r_total < cap:
                    cap = server.max_vms - r_total
                if cap < 0:
                    cap = 0
                base = state.base0[index]
                hi_c = min(rc + counts[0], osc)
                hi_m = min(rm + counts[1], osm)
                hi_i = min(ri + counts[2], osi)
                local_ub_t = -_INF
                gains = [-_INF] * (cap + 1)
                gains[0] = 0.0
                for c in range(rc, hi_c + 1):
                    for m in range(rm, hi_m + 1):
                        row = c * stride_c + m * stride_m
                        for i in range(ri, hi_i + 1):
                            placed = (c - rc) + (m - rm) + (i - ri)
                            if placed == 0 or placed > cap:
                                continue
                            cell = cells[row + i]
                            if cell is None:
                                continue
                            if cell.time_s > local_ub_t:
                                local_ub_t = cell.time_s
                            gain = cell.energy_j - base
                            if gain < 0.0:
                                gain = 0.0
                            if gain > gains[placed]:
                                gains[placed] = gain
                cached = (local_ub_t, gains)
                scan_memo[key] = cached
            local_ub_t, gains = cached
            if local_ub_t > ub_time:
                ub_time = local_ub_t
            cap = len(gains) - 1
            new = [-_INF] * (n + 1)
            for total in range(n + 1):
                hi = cap if cap < total else total
                acc = -_INF
                for placed in range(hi + 1):
                    gain = gains[placed]
                    if gain == -_INF:
                        continue
                    prev = best[total - placed]
                    if prev == -_INF:
                        continue
                    value = prev + gain
                    if value > acc:
                        acc = value
                new[total] = acc
            best = new
        return ub_time, best[n]

    def _block_info(self, block: MixKey, state: _SearchState):
        """Per-block placement bound: None if no server can ever host it,
        else the (time, energy) lower bounds of hosting it anywhere.

        A block placed on server ``s`` lands in a combined mix
        containing ``allocated(s) + block``; the grid's min-containing
        tables bound that mix's time/energy from below, and its
        min-VMs-containing entry decides feasibility against
        ``max_vms`` exactly (every estimable containing mix has at
        least that many VMs).
        """
        cached = state.block_memo.get(block, False)
        if cached is not False:
            return cached
        tables = state.tables
        min_time = tables.min_time_containing
        min_energy = tables.min_energy_containing
        min_vms = tables.min_vms_containing
        osc, osm, osi = state.bounds
        stride_c = state.stride_c
        stride_m = state.stride_m
        bc, bm, bi = block
        lb_t = _INF
        lb_e = _INF
        hopeful = False
        for index, server in enumerate(state.servers):
            if not state.inbox[index]:
                continue
            rc, rm, ri = state.residual0[index]
            kc = rc + bc
            km = rm + bm
            ki = ri + bi
            if kc > osc or km > osm or ki > osi:
                continue
            grid_index = kc * stride_c + km * stride_m + ki
            needed = min_vms[grid_index]
            if needed == _INF:
                continue
            if server.max_vms is not None and needed > server.max_vms:
                continue
            hopeful = True
            t = min_time[grid_index]
            if t < lb_t:
                lb_t = t
            e = min_energy[grid_index] - state.base0[index]
            if e < 0.0:
                e = 0.0
            if e < lb_e:
                lb_e = e
        result = (lb_t, lb_e) if hopeful else None
        state.block_memo[block] = result
        return result

    def _dominance_ready(self, state: _SearchState) -> bool:
        """Latch: dominance pruning may start once the compliant pool's
        running maxima reach the upper bounds of anything still
        enumerable (per axis the alpha score actually weighs), so
        pruned candidates cannot change the normalization."""
        if state.ready:
            return True
        compliant = state.compliant
        if not compliant.retained:
            return False
        if state.need_t and compliant.max_time < state.ub_time:
            return False
        if state.need_e and compliant.max_energy < state.ub_energy:
            return False
        state.ready = True
        return True

    def _has_dominator(self, state: _SearchState, lb_t: float, lb_e: float) -> bool:
        """A retained compliant candidate at least as good, on every
        axis the score weighs, as the given lower bounds.

        Both-axes queries hit the frontier's staircase index; single-
        axis queries (alpha 0 or 1) compare the offered-pool minimum,
        which is always witnessed by a retained candidate because a
        dropped candidate's dominator is retained and no worse on
        either axis.
        """
        compliant = state.compliant
        if state.need_t:
            if state.need_e:
                return compliant.dominated(lb_t, lb_e)
            return compliant.min_time <= lb_t
        return compliant.min_energy <= lb_e

    def _stream_candidates(self, counts: MixKey, state: _SearchState) -> None:
        """Enumerate partitions, assign greedily, stream into frontiers."""
        bounds = self._db.grid_bounds
        stats = state.stats

        prune = None
        if state.dominance:
            # Warm start: evaluate the finest (all-singletons) partition
            # up front and fold its aggregates into the pool maxima --
            # maxima are order-independent, and larger running maxima
            # close the dominance latch sooner.  It is re-offered (or
            # provably dominated) at its natural enumeration position.
            finest = (
                ((1, 0, 0),) * counts[0]
                + ((0, 1, 0),) * counts[1]
                + ((0, 0, 1),) * counts[2]
            )
            warm = self._assign_streamed(finest, state, abortable=False)
            if warm is not None:
                target = state.compliant if warm.qos_ok else state.fallback
                target.observe(warm.rank_time_s, warm.energy_j)

            def prune(prefix, remaining, _state=state):
                info = self._block_info(prefix[-1], _state)
                if info is None:
                    _state.stats.pruned_infeasible_subtrees += 1
                    return True
                if _state.ready or self._dominance_ready(_state):
                    lb_t = 0.0
                    lb_e = 0.0
                    for block in prefix:
                        block_lb_t, block_lb_e = self._block_info(block, _state)
                        if block_lb_t > lb_t:
                            lb_t = block_lb_t
                        if block_lb_e > lb_e:
                            lb_e = block_lb_e
                    if self._has_dominator(_state, lb_t, lb_e):
                        _state.stats.pruned_dominated_subtrees += 1
                        return True
                return False

        produced = 0
        for partition in type_partitions(counts, bounds, prune=prune):
            produced += 1
            if produced > self._max_candidates:
                raise ConfigurationError(
                    f"partition enumeration exceeded {self._max_candidates} "
                    f"candidates for mix {counts}; split the batch"
                )
            candidate = self._assign_streamed(partition, state, abortable=True)
            if candidate is None:
                continue
            self._offer(candidate, state)
        stats.partitions_enumerated += produced

    def _offer(self, candidate: "_Candidate", state: _SearchState) -> None:
        """Stream one feasible candidate into the QoS-split frontiers
        (shared by the exact enumerator and the anytime search)."""
        if candidate.qos_ok:
            compliant = state.compliant
            if compliant.count == 0:
                # The compliant pool exists from here on; the
                # fallback frontier can never be the scored pool.
                state.fallback.drop_retention()
            compliant.offer(candidate)
        else:
            fallback = state.fallback
            if state.compliant.count == 0:
                fallback.offer(candidate)
            else:
                fallback.count += 1

    def _assign_streamed(
        self,
        partition: tuple[MixKey, ...],
        state: _SearchState,
        abortable: bool,
    ) -> _Candidate | None:
        """Greedy block assignment against the dense grid.

        Float-for-float identical to the reference `_assign_partition`
        (same probe order, same score expression, same tie-breaks);
        the only behavioural addition is the mid-assignment abort: once
        the dominance latch is closed, a partial assignment whose
        admissible lower bounds are already weakly dominated by a
        retained compliant candidate is abandoned (it could neither be
        selected nor move the pool maxima).
        """
        deadlines = state.deadlines
        deadline_memo = state.deadline_memo
        cells = state.cells
        osc, osm, osi = state.bounds
        stride_c = state.stride_c
        stride_m = state.stride_m
        max_time = state.norm_time
        max_energy = state.norm_energy
        energy_weight = self._weights.energy_weight
        time_weight = self._weights.time_weight
        server_ids = state.server_ids
        caps = state.caps
        n_servers = len(server_ids)
        check_abort = abortable and state.dominance

        residual: list[MixKey] = list(state.residual0)
        base_energy: list[float] = list(state.base0)
        picks: list[tuple[str, MixKey, MixKey, EstimatedOutcome]] = []
        touched: dict[int, tuple[float, EstimatedOutcome]] = {}
        hits = 0
        misses = 0
        # Running AND of the chosen placements' compliance flags.  Per
        # block, ``best_compliant`` is exactly
        # ``_block_meets_deadline(block, best_estimate, deadlines)``
        # (the block deadline is the min over its classes' deadlines),
        # so this equals the reference's final all(...) pass.
        qos_ok = True

        for position, block in enumerate(sorted(partition, key=total_vms, reverse=True)):
            if check_abort and position > 0 and (
                state.ready or self._dominance_ready(state)
            ):
                tables = state.tables
                min_time_tab = tables.min_time_containing
                min_energy_tab = tables.min_energy_containing
                lb_t = 0.0
                lb_e = 0.0
                for energy0, estimate in touched.values():
                    kc, km, ki = estimate.key
                    grid_index = kc * stride_c + km * stride_m + ki
                    t = min_time_tab[grid_index]
                    if t > lb_t:
                        lb_t = t
                    gain = min_energy_tab[grid_index] - energy0
                    if gain > 0.0:
                        lb_e += gain
                if self._has_dominator(state, lb_t, lb_e):
                    state.stats.aborted_assignments += 1
                    state.stats.grid_hits += hits
                    state.stats.grid_misses += misses
                    return None

            if deadlines:
                block_deadline = deadline_memo.get(block, False)
                if block_deadline is False:
                    block_deadline = _block_deadline(block, deadlines)
                    deadline_memo[block] = block_deadline
            else:
                block_deadline = None
            bc, bm, bi = block
            best_index = -1
            best_score = _INF
            best_estimate: EstimatedOutcome | None = None
            best_compliant = False
            seen_classes: set[tuple[MixKey, int | None]] = set()
            seen_add = seen_classes.add
            for index in range(n_servers):
                mix = residual[index]
                cap = caps[index]
                equivalence = (mix, cap)
                if equivalence in seen_classes:
                    continue
                seen_add(equivalence)
                kc = mix[0] + bc
                km = mix[1] + bm
                ki = mix[2] + bi
                if kc > osc or km > osm or ki > osi:
                    continue
                if cap is not None and kc + km + ki > cap:
                    continue
                estimate = cells[kc * stride_c + km * stride_m + ki]
                if estimate is None:
                    misses += 1
                    continue
                hits += 1
                marginal_energy = estimate.energy_j - base_energy[index]
                if marginal_energy < 0.0:
                    marginal_energy = 0.0
                score = (
                    energy_weight * (marginal_energy / max_energy)
                    + time_weight * (estimate.time_s / max_time)
                )
                compliant = block_deadline is None or estimate.time_s <= block_deadline
                # Deadline-compliant placements always beat non-compliant
                # ones; within a compliance tier the alpha score decides.
                if best_index < 0 or (compliant, -score) > (best_compliant, -best_score):
                    best_score = score
                    best_index = index
                    best_estimate = estimate
                    best_compliant = compliant
            if best_index < 0:
                state.stats.grid_hits += hits
                state.stats.grid_misses += misses
                return None
            assert best_estimate is not None
            previous = touched.get(best_index)
            if previous is None:
                touched[best_index] = (base_energy[best_index], best_estimate)
            else:
                touched[best_index] = (previous[0], best_estimate)
            residual[best_index] = best_estimate.key
            base_energy[best_index] = best_estimate.energy_j
            picks.append((server_ids[best_index], block, best_estimate.key, best_estimate))
            qos_ok = qos_ok and best_compliant

        state.stats.grid_hits += hits
        state.stats.grid_misses += misses
        makespan = max(est.time_s for _, est in touched.values())
        energy = sum(max(0.0, est.energy_j - energy0) for energy0, est in touched.values())
        return _Candidate(
            assignments=tuple(picks),
            rank_time_s=makespan,
            makespan_s=makespan,
            energy_j=energy,
            qos_ok=qos_ok,
        )

    # -- reference (naive) path --------------------------------------

    def allocate_reference(
        self,
        requests: Sequence[VMRequest],
        servers: Sequence[ServerState],
    ) -> AllocationPlan:
        """The pre-optimization brute force, kept verbatim as the
        equivalence oracle: materializes every feasible candidate,
        queries the database per probe, applies no pruning.

        ``tests/properties`` asserts :meth:`allocate` returns the
        bit-identical plan (assignments, score, QoS flag) on seeded
        random inputs; ``benchmarks/bench_perf_allocator.py`` uses it
        for before/after numbers.  Plans from this path carry no
        provenance.

        The 2-way oracle predates the carbon axis and stays that way:
        a carbon-active allocator has no reference path and rejects
        this call outright.
        """
        if self._carbon is not None:
            raise ConfigurationError(
                "allocate_reference is the 2-way (time, energy) oracle; "
                "carbon-aware scoring has no reference path"
            )
        if not requests:
            return AllocationPlan(assignments=(), alpha=self.alpha, score=0.0, qos_satisfied=True)
        if not servers:
            raise InfeasibleAllocationError("no servers available")
        ids = [r.vm_id for r in requests]
        if len(set(ids)) != len(ids):
            raise ConfigurationError(f"duplicate vm_id in batch: {ids}")

        counts = key_for_classes([r.workload_class for r in requests])
        deadlines = _tightest_deadlines(requests)
        candidates = self._enumerate_candidates(counts, servers, deadlines)
        if not candidates:
            raise InfeasibleAllocationError(
                f"no feasible partition of mix {counts} across {len(servers)} servers"
            )

        compliant = [c for c in candidates if c.qos_ok]
        pool = compliant
        qos_satisfied = True
        if not compliant:
            if self._strict_qos:
                raise QoSViolationError(
                    f"every feasible allocation of mix {counts} violates a deadline"
                )
            pool = candidates
            qos_satisfied = False

        scores = score_candidates([(c.rank_time_s, c.energy_j) for c in pool], self._weights)
        best_index = 0
        for i in range(1, len(scores)):
            if scores[i] < scores[best_index] - 1e-12:
                best_index = i
        chosen = pool[best_index]
        return self._materialize(chosen, requests, scores[best_index], qos_satisfied)

    def _enumerate_candidates(
        self,
        counts: MixKey,
        servers: Sequence[ServerState],
        deadlines: "dict[WorkloadClass, float]",
    ) -> list[_Candidate]:
        """All (partition, greedy assignment) candidates with estimates."""
        candidates: list[_Candidate] = []
        bounds = self._db.grid_bounds
        produced = 0
        for partition in type_partitions(counts, bounds):
            produced += 1
            if produced > self._max_candidates:
                raise ConfigurationError(
                    f"partition enumeration exceeded {self._max_candidates} "
                    f"candidates for mix {counts}; split the batch"
                )
            candidate = self._assign_partition(partition, servers, deadlines)
            if candidate is not None:
                candidates.append(candidate)
        return candidates

    def _assign_partition(
        self,
        partition: tuple[MixKey, ...],
        servers: Sequence[ServerState],
        deadlines: "dict[WorkloadClass, float]",
    ) -> _Candidate | None:
        """Score-driven assignment of one partition's blocks to servers.

        For every block (largest first -- hardest to fit, and the pass
        is order-sensitive) each feasible server is evaluated by the
        alpha objective over the *marginal* cost of hosting the block:
        marginal energy (combined-mix energy minus what the server's
        existing mix was already going to consume -- waking an empty
        server pays its idle draw, joining a busy one amortizes it)
        and the combined mix's completion time.  The block goes to the
        best-scoring server, ties resolving to the first in list order
        (the paper's rule).  Servers whose (current mix, VM cap) are
        identical are interchangeable, so only the first of each
        equivalence class is evaluated.

        Returns None when some block cannot be placed anywhere.
        """
        max_time = self._db.time_range_s[1]
        max_energy = self._db.energy_range_j[1]
        residual: list[MixKey] = [s.allocated for s in servers]
        base_energy: list[float | None] = [None] * len(servers)  # lazy
        picks: list[tuple[str, MixKey, MixKey, EstimatedOutcome]] = []
        touched: dict[int, tuple[float, EstimatedOutcome]] = {}  # index -> (energy0, final est)

        for block in sorted(partition, key=total_vms, reverse=True):
            block_deadline = _block_deadline(block, deadlines)
            best_index: int | None = None
            best_score = float("inf")
            best_estimate: EstimatedOutcome | None = None
            best_compliant = False
            seen_classes: set[tuple[MixKey, int | None]] = set()
            for index, server in enumerate(servers):
                equivalence = (residual[index], server.max_vms)
                if equivalence in seen_classes:
                    continue
                seen_classes.add(equivalence)
                combined = (
                    residual[index][0] + block[0],
                    residual[index][1] + block[1],
                    residual[index][2] + block[2],
                )
                if not self._db.within_bounds(combined):
                    continue
                if server.max_vms is not None and total_vms(combined) > server.max_vms:
                    continue
                try:
                    estimate = self._db.estimate(combined)
                except ModelLookupError:
                    continue
                if base_energy[index] is None:
                    base_energy[index] = self._existing_energy(residual[index])
                marginal_energy = max(0.0, estimate.energy_j - base_energy[index])
                score = (
                    self._weights.energy_weight * (marginal_energy / max_energy)
                    + self._weights.time_weight * (estimate.time_s / max_time)
                )
                compliant = block_deadline is None or estimate.time_s <= block_deadline
                # Deadline-compliant placements always beat non-compliant
                # ones; within a compliance tier the alpha score decides.
                better = (compliant, -score) > (best_compliant, -best_score)
                if best_index is None or better:
                    best_score = score
                    best_index = index
                    best_estimate = estimate
                    best_compliant = compliant
            if best_index is None:
                return None
            assert best_estimate is not None
            if best_index not in touched:
                energy0 = base_energy[best_index]
                assert energy0 is not None
                touched[best_index] = (energy0, best_estimate)
            else:
                touched[best_index] = (touched[best_index][0], best_estimate)
            residual[best_index] = best_estimate.key
            base_energy[best_index] = best_estimate.energy_j
            picks.append(
                (servers[best_index].server_id, block, best_estimate.key, best_estimate)
            )

        makespan = max(est.time_s for _, est in touched.values())
        rank_time = makespan
        energy = sum(max(0.0, est.energy_j - energy0) for energy0, est in touched.values())
        qos_ok = all(
            _block_meets_deadline(block, estimate, deadlines)
            for _, block, _, estimate in picks
        )
        return _Candidate(
            assignments=tuple(picks),
            rank_time_s=rank_time,
            makespan_s=makespan,
            energy_j=energy,
            qos_ok=qos_ok,
        )

    def _existing_energy(self, mix: MixKey) -> float:
        """Energy the server's existing mix is already committed to.

        Zero for an idle server: placing nothing there costs nothing,
        so a block placed on it is charged the full combined-mix energy
        including the idle draw it wakes up.  (The optimized path reads
        the same value from the dense grid and counts the
        lookup-failed-to-zero fallback in the plan provenance.)
        """
        if total_vms(mix) == 0:
            return 0.0
        try:
            return self._db.estimate(mix).energy_j
        except ModelLookupError:
            return 0.0

    # -- shared -------------------------------------------------------

    def _materialize(
        self,
        chosen: _Candidate,
        requests: Sequence[VMRequest],
        score: float,
        qos_satisfied: bool,
        search_provenance: AllocationProvenance | None = None,
        carbon_impact: "tuple[float, float] | None" = None,
    ) -> AllocationPlan:
        """Bind concrete VM ids to the chosen partition's blocks."""
        queues: dict[WorkloadClass, list[str]] = {
            WorkloadClass.CPU: [],
            WorkloadClass.MEM: [],
            WorkloadClass.IO: [],
        }
        for request in requests:
            queues[request.workload_class].append(request.vm_id)

        assignments: list[BlockAssignment] = []
        for server_id, block, combined, estimate in chosen.assignments:
            vm_ids: list[str] = []
            for class_index, workload_class in enumerate(
                (WorkloadClass.CPU, WorkloadClass.MEM, WorkloadClass.IO)
            ):
                take = block[class_index]
                vm_ids.extend(queues[workload_class][:take])
                del queues[workload_class][:take]
            assignments.append(
                BlockAssignment(
                    server_id=server_id,
                    block=block,
                    vm_ids=tuple(vm_ids),
                    combined_key=combined,
                    estimate=estimate,
                )
            )
        return AllocationPlan(
            assignments=tuple(assignments),
            alpha=self.alpha,
            score=score,
            qos_satisfied=qos_satisfied,
            alpha_carbon=self._weights.alpha_carbon,
            estimated_carbon_g=None if carbon_impact is None else carbon_impact[0],
            estimated_cost=None if carbon_impact is None else carbon_impact[1],
            search_provenance=search_provenance,
        )

def _tightest_deadlines(requests: Iterable[VMRequest]) -> dict[WorkloadClass, float]:
    """Per-class minimum of the requests' QoS deadlines.

    The paper defines QoS "per application type and not for each
    specific request", so the class-level minimum is the binding
    constraint for every block containing that class.
    """
    deadlines: dict[WorkloadClass, float] = {}
    for request in requests:
        if request.max_exec_time_s is None:
            continue
        current = deadlines.get(request.workload_class)
        if current is None or request.max_exec_time_s < current:
            deadlines[request.workload_class] = request.max_exec_time_s
    return deadlines


def _block_deadline(
    block: MixKey,
    deadlines: dict[WorkloadClass, float],
) -> float | None:
    """Tightest deadline among the classes a block contains."""
    tightest: float | None = None
    for class_index, workload_class in enumerate(
        (WorkloadClass.CPU, WorkloadClass.MEM, WorkloadClass.IO)
    ):
        if block[class_index] == 0:
            continue
        deadline = deadlines.get(workload_class)
        if deadline is not None and (tightest is None or deadline < tightest):
            tightest = deadline
    return tightest


def _block_meets_deadline(
    block: MixKey,
    estimate: EstimatedOutcome,
    deadlines: dict[WorkloadClass, float],
) -> bool:
    """QoS check for one block under its server's combined estimate.

    The estimated execution time of every VM in the mix is the mix's
    total time (the conservative bound); a block complies when that
    bound fits the tightest deadline among the block's classes.
    """
    for class_index, workload_class in enumerate(
        (WorkloadClass.CPU, WorkloadClass.MEM, WorkloadClass.IO)
    ):
        if block[class_index] == 0:
            continue
        deadline = deadlines.get(workload_class)
        if deadline is not None and estimate.time_s > deadline:
            return False
    return True


def plan_objective(
    plan: AllocationPlan,
    servers: Sequence[ServerState],
    database,
) -> float:
    """Alpha objective of a plan, recomputed from its assignments.

    Puts plans from different search modes on one comparable scale
    (the benches' anytime-vs-exact quality ratio): makespan over each
    touched server's *final* combined-mix estimate (the last
    assignment per server wins, since its mix only grows), summed
    marginal energy versus each server's pre-plan base (zero for
    empty, off-grid, or unestimable residuals -- the allocator's own
    fallback), normalized by the database ranges exactly as the
    allocator scores candidates.
    """
    if not plan.assignments:
        return 0.0
    grid = grid_for(database)
    base: dict[str, float] = {}
    for server in servers:
        mix = server.allocated
        energy = 0.0
        if grid.covers(mix) and total_vms(mix) > 0:
            cell = grid.get(mix)
            if cell is not None:
                energy = cell.energy_j
        base[server.server_id] = energy
    final: dict[str, EstimatedOutcome] = {}
    for assignment in plan.assignments:
        final[assignment.server_id] = assignment.estimate
    makespan = max(estimate.time_s for estimate in final.values())
    energy = sum(
        max(0.0, estimate.energy_j - base.get(server_id, 0.0))
        for server_id, estimate in final.items()
    )
    weights = ScoreWeights(plan.alpha)
    max_time = database.time_range_s[1]
    max_energy = database.energy_range_j[1]
    score = 0.0
    if max_energy > 0.0:
        score += weights.energy_weight * (energy / max_energy)
    if max_time > 0.0:
        score += weights.time_weight * (makespan / max_time)
    return score
