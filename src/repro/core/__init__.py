"""The paper's primary contribution: the empirical allocation model and
the proactive application-centric VM allocation algorithm (Sect. III).

* :mod:`~repro.core.model` -- the model database: Table II records,
  binary-search lookup, proportional estimation for off-grid mixes.
* :mod:`~repro.core.partitions` -- set-partition generation (Orlov's
  restricted-growth-string scheme) and the type-aware multiset
  variant the allocator uses as its fast path.
* :mod:`~repro.core.scoring` -- the alpha trade-off objective.
* :mod:`~repro.core.allocator` -- the brute-force proactive allocator
  with QoS constraints (streamed and branch-and-bound pruned, with a
  retained naive reference path).
* :mod:`~repro.core.estimatecache` -- the dense O(1) estimate grid and
  the search's cache/prune counters.
* :mod:`~repro.core.plan` -- allocation plans (the algorithm's output).
"""

from repro.core.estimatecache import BoundTables, CacheStats, EstimateGrid, grid_for
from repro.core.model import EstimatedOutcome, ModelDatabase
from repro.core.partitions import (
    bell_number,
    count_type_partitions,
    set_partitions,
    type_partitions,
)
from repro.core.scoring import ScoreWeights, score_candidates
from repro.core.plan import AllocationPlan, AllocationProvenance, BlockAssignment
from repro.core.allocator import ProactiveAllocator, ServerState, VMRequest
from repro.core.whatif import GoalComparison, GoalOutcome, compare_goals

__all__ = [
    "BoundTables",
    "CacheStats",
    "EstimateGrid",
    "grid_for",
    "EstimatedOutcome",
    "ModelDatabase",
    "bell_number",
    "count_type_partitions",
    "set_partitions",
    "type_partitions",
    "ScoreWeights",
    "score_candidates",
    "AllocationPlan",
    "AllocationProvenance",
    "BlockAssignment",
    "ProactiveAllocator",
    "ServerState",
    "VMRequest",
    "GoalComparison",
    "GoalOutcome",
    "compare_goals",
]
