"""The process-local observability runtime.

An :class:`Observability` bundle pairs the two halves of
:mod:`repro.obs` -- a :class:`~repro.obs.registry.MetricsRegistry` and
a tracer -- and is what the instrumented layers (allocator, simulator,
campaign, evaluation) accept as their optional ``obs`` argument.

A single process-local default makes the common case zero-config: the
CLI's ``--trace``/``--metrics`` flags install an enabled bundle around
the command, and every component constructed without an explicit
``obs`` picks it up through :func:`get_observability`.  When nothing
installed one, the default is :data:`NULL_OBS` -- ``enabled`` false,
the shared :data:`~repro.obs.tracer.NULL_TRACER`, and a throwaway
registry -- so instrumented code needs no None checks and pays only a
predicate test on its hot paths.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import IO, Iterator

from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "Observability",
    "NULL_OBS",
    "get_observability",
    "set_observability",
    "observed",
    "snapshot",
]


class Observability:
    """A metrics registry plus a tracer, threaded through the stack.

    ``enabled`` is the single predicate instrumented code checks before
    doing anything beyond free counter arithmetic (wall-clock reads,
    gauge recomputation, span attribute construction).
    """

    __slots__ = ("registry", "tracer", "enabled")

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: "Tracer | NullTracer | None" = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.enabled = True

    @classmethod
    def disabled(cls) -> "Observability":
        obs = cls(tracer=NULL_TRACER)
        obs.enabled = False
        return obs

    def snapshot(self, include_volatile: bool = False) -> dict:
        return self.registry.snapshot(include_volatile=include_volatile)


#: The no-op bundle every component falls back to.  Its registry is a
#: real (shared, throwaway) one so recording into it is always safe;
#: components that need isolated counters check ``enabled`` and build
#: their own registry instead.
NULL_OBS = Observability.disabled()

_default: Observability = NULL_OBS


def get_observability() -> Observability:
    """The current process-local default bundle (NULL_OBS when unset)."""
    return _default


def set_observability(obs: Observability | None) -> Observability:
    """Install a new default bundle; returns the previous one.

    ``None`` restores :data:`NULL_OBS`.
    """
    global _default
    previous = _default
    _default = obs if obs is not None else NULL_OBS
    return previous


@contextmanager
def observed(
    registry: MetricsRegistry | None = None,
    tracer: "Tracer | NullTracer | None" = None,
    trace_sink: "IO[str] | None" = None,
    deterministic: bool = False,
) -> Iterator[Observability]:
    """Install an enabled bundle for the duration of a ``with`` block.

    Either pass a ready ``tracer`` or a ``trace_sink`` stream to wrap
    in one (``deterministic`` selects the diffable logical clock).  The
    previous default is restored on exit and any tracer built here is
    closed.
    """
    built_tracer = None
    if tracer is None and trace_sink is not None:
        tracer = built_tracer = Tracer(trace_sink, deterministic=deterministic)
    obs = Observability(registry=registry, tracer=tracer)
    previous = set_observability(obs)
    try:
        yield obs
    finally:
        set_observability(previous)
        if built_tracer is not None:
            built_tracer.close()


def snapshot(include_volatile: bool = False) -> dict:
    """Deterministic snapshot of the current default registry."""
    return _default.registry.snapshot(include_volatile=include_volatile)
