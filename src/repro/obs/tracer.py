"""Span tracing to JSON lines.

One event per line, three event kinds::

    {"event": "open",  "span_id": 3, "parent_id": 1, "name": "sim.job",
     "t_wall": 0.0123, "t_sim": 42.0, "attrs": {"job_id": 7}}
    {"event": "close", "span_id": 3, "parent_id": 1, "name": "sim.job",
     "t_wall": 0.8, "t_sim": 99.5, "dur_wall": 0.7877, "attrs": {}}
    {"event": "point", "span_id": 4, "parent_id": 1, "name": "sim.place",
     "t_wall": 0.9, "t_sim": 99.5, "attrs": {"server": "s0003"}}

Every event carries both clocks: ``t_wall`` (monotonic wall seconds
since the tracer started) and ``t_sim`` (the caller's simulated time,
``null`` outside a simulation).  Span ids are consecutive integers, so
under ``deterministic=True`` -- which replaces the wall clock with an
event counter -- two seeded runs emit byte-identical traces that can
be diffed line by line.

:class:`NullTracer` is the disabled stand-in: same interface, every
method a no-op, ``enabled`` false.  Hot paths may branch on
``tracer.enabled`` to skip attribute construction entirely.
"""

from __future__ import annotations

import json
import time
from typing import IO, Callable

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]


class Span:
    """A started span; close it with :meth:`end` (or via the tracer's
    ``span()`` context manager, which does it for you)."""

    __slots__ = ("_tracer", "span_id", "parent_id", "name", "_open")

    def __init__(self, tracer: "Tracer", span_id: int, parent_id: int | None, name: str):
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self._open = True

    def end(self, t_sim: float | None = None, **attrs) -> None:
        if self._open:
            self._open = False
            self._tracer._close_span(self, t_sim, attrs)


class _SpanContext:
    __slots__ = ("_tracer", "_name", "_t_sim", "_attrs", "_span")

    def __init__(self, tracer, name, t_sim, attrs):
        self._tracer = tracer
        self._name = name
        self._t_sim = t_sim
        self._attrs = attrs
        self._span = None

    def __enter__(self) -> Span:
        self._span = self._tracer.start(self._name, t_sim=self._t_sim, **self._attrs)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._span.end(t_sim=self._t_sim)


class Tracer:
    """Writes span open/close and point events as JSON lines.

    Parameters
    ----------
    sink:
        A writable text stream.  Use :meth:`to_path` for a file.
    clock:
        Wall-clock source (monotonic); defaults to
        :func:`time.perf_counter`.  Readings are rebased so the first
        event is at ``t_wall`` 0.0.
    deterministic:
        Replace wall readings with an event counter (0.0, 1.0, ...) so
        traces from equal-seed runs are byte-identical.
    """

    enabled = True

    def __init__(
        self,
        sink: IO[str],
        clock: Callable[[], float] = time.perf_counter,
        deterministic: bool = False,
    ):
        self._sink = sink
        self._clock = clock
        self._deterministic = bool(deterministic)
        self._epoch: float | None = None
        self._events = 0
        self._next_id = 1
        self._stack: list[int] = []
        self._owns_sink = False

    @classmethod
    def to_path(cls, path, **kwargs) -> "Tracer":
        """A tracer writing (line-buffered) to a fresh file at ``path``."""
        sink = open(path, "w", encoding="utf-8", buffering=1)
        tracer = cls(sink, **kwargs)
        tracer._owns_sink = True
        return tracer

    # -- internals ----------------------------------------------------

    def _now(self) -> float:
        if self._deterministic:
            return float(self._events)
        reading = self._clock()
        if self._epoch is None:
            self._epoch = reading
        return reading - self._epoch

    def _emit(self, payload: dict) -> None:
        self._events += 1
        self._sink.write(json.dumps(payload, sort_keys=True, default=str) + "\n")

    # -- public API ---------------------------------------------------

    def start(
        self, name: str, t_sim: float | None = None, detached: bool = False, **attrs
    ) -> Span:
        """Open a span; the caller must :meth:`Span.end` it.

        ``detached`` spans record the current span as parent but do not
        become the current span themselves -- use for long-lived spans
        that overlap arbitrarily (e.g. one span per in-flight job)
        instead of nesting.
        """
        span_id = self._next_id
        self._next_id += 1
        parent_id = self._stack[-1] if self._stack else None
        t_wall = self._now()
        self._emit(
            {
                "event": "open",
                "span_id": span_id,
                "parent_id": parent_id,
                "name": name,
                "t_wall": t_wall,
                "t_sim": t_sim,
                "attrs": attrs,
            }
        )
        span = Span(self, span_id, parent_id, name)
        if not detached:
            self._stack.append(span_id)
        return span

    def _close_span(self, span: Span, t_sim: float | None, attrs: dict) -> None:
        t_wall = self._now()
        if span.span_id in self._stack:
            # Closing an outer span implicitly abandons nested ones.
            while self._stack and self._stack[-1] != span.span_id:
                self._stack.pop()
            if self._stack:
                self._stack.pop()
        self._emit(
            {
                "event": "close",
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "name": span.name,
                "t_wall": t_wall,
                "t_sim": t_sim,
                "attrs": attrs,
            }
        )

    def span(self, name: str, t_sim: float | None = None, **attrs) -> _SpanContext:
        """Context manager opening a span and closing it on exit."""
        return _SpanContext(self, name, t_sim, attrs)

    def point(self, name: str, t_sim: float | None = None, **attrs) -> None:
        """A zero-duration event under the currently open span."""
        span_id = self._next_id
        self._next_id += 1
        self._emit(
            {
                "event": "point",
                "span_id": span_id,
                "parent_id": self._stack[-1] if self._stack else None,
                "name": name,
                "t_wall": self._now(),
                "t_sim": t_sim,
                "attrs": attrs,
            }
        )

    @property
    def n_events(self) -> int:
        return self._events

    @property
    def deterministic(self) -> bool:
        return self._deterministic

    def replay(self, events: "list[dict]") -> None:
        """Re-emit events captured by another (worker) tracer.

        The foreign tracer is assumed to have numbered its span ids
        1, 2, ...; they are remapped onto this tracer's id sequence so a
        replayed stream is indistinguishable from spans opened here
        directly.  Foreign root events (``parent_id`` null) are
        reparented under the currently open span.  ``t_wall`` is
        restamped with this tracer's clock: under ``deterministic=True``
        that makes a serial run and an in-order replay of worker
        captures byte-identical; in wall-clock mode the original worker
        timings are discarded (they were measured against a different
        epoch).  ``t_sim`` and all attributes pass through untouched.
        """
        if not events:
            return
        base = self._next_id
        local_parent = self._stack[-1] if self._stack else None
        highest = 0
        for event in events:
            span_id = event["span_id"]
            parent_id = event["parent_id"]
            payload = dict(event)
            payload["span_id"] = base + span_id - 1
            payload["parent_id"] = (
                local_parent if parent_id is None else base + parent_id - 1
            )
            payload["t_wall"] = self._now()
            self._emit(payload)
            if span_id > highest:
                highest = span_id
        self._next_id = base + highest

    def close(self) -> None:
        """Flush and, when the tracer opened its own file, close it."""
        self._sink.flush()
        if self._owns_sink:
            self._sink.close()


class _NullSpan:
    __slots__ = ()
    span_id = 0
    parent_id = None
    name = ""

    def end(self, t_sim: float | None = None, **attrs) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every method a no-op, every span the same
    reusable null span.  There is one shared instance, ``NULL_TRACER``."""

    enabled = False
    deterministic = False

    def start(
        self, name: str, t_sim: float | None = None, detached: bool = False, **attrs
    ) -> _NullSpan:
        return _NULL_SPAN

    def span(self, name: str, t_sim: float | None = None, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def point(self, name: str, t_sim: float | None = None, **attrs) -> None:
        pass

    def replay(self, events: "list[dict]") -> None:
        pass

    @property
    def n_events(self) -> int:
        return 0

    def close(self) -> None:
        pass


NULL_TRACER = NullTracer()
