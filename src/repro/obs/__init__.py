"""repro.obs: unified observability for the simulator/allocator stack.

Two halves, one bundle:

* :class:`MetricsRegistry` -- process-local counters, gauges and
  histograms with *deterministic* snapshots (equal-seed runs produce
  byte-identical ``snapshot()`` output; wall-clock-valued series are
  marked volatile and contribute only their observation counts).
* :class:`Tracer` -- span-based JSON-lines tracing; every event
  carries ``span_id``, monotonic ``t_wall`` and simulated ``t_sim``.
  :class:`NullTracer` (singleton :data:`NULL_TRACER`) is the zero-cost
  disabled stand-in.
* :class:`Observability` -- the (registry, tracer) pair the
  instrumented layers accept; :func:`get_observability` /
  :func:`set_observability` manage the process-local default, and
  :func:`snapshot` reads the default registry in one call.

Typical capture::

    from repro import obs

    registry = obs.MetricsRegistry()
    with open("trace.jsonl", "w") as sink, obs.observed(
        registry=registry, trace_sink=sink
    ):
        run_evaluation(...)
    print(registry.snapshot())

The CLI exposes the same capture via ``--trace PATH --metrics PATH``
on ``allocate``/``evaluate``/``reproduce``.
"""

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.runtime import (
    NULL_OBS,
    Observability,
    get_observability,
    observed,
    set_observability,
    snapshot,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Observability",
    "NULL_OBS",
    "get_observability",
    "set_observability",
    "observed",
    "snapshot",
]
