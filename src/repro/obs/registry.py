"""Process-local metrics: counters, gauges, histograms, snapshots.

The registry is the numeric half of :mod:`repro.obs` (the tracer is
the event half).  Instruments are created lazily and identified by
``(name, sorted labels)``, Prometheus-style::

    registry = MetricsRegistry()
    placed = registry.counter("sim.jobs_placed", strategy="PA-0.5")
    placed.inc()
    registry.snapshot()["counters"]['sim.jobs_placed{strategy="PA-0.5"}']
    # -> 1

Design constraints, in priority order:

* **Deterministic snapshots.**  ``snapshot()`` must be byte-identical
  across two runs with the same seed, so it can be diffed in tests and
  committed as a golden file.  Keys are sorted; values derived from
  wall-clock time are *volatile* and contribute only their observation
  count (which is seeded-deterministic) unless the caller explicitly
  asks for the full, non-reproducible dump.
* **Cheap instruments.**  ``Counter.inc`` is one float add; creation
  cost is paid once per (name, labels) pair.  Hot loops keep instrument
  handles instead of re-resolving names.
* **No global state here.**  The process-local default registry lives
  in :mod:`repro.obs.runtime`; this module is plain data.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.common.errors import ConfigurationError

#: Default histogram bucket upper bounds (seconds-flavoured geometric
#: ladder; the implicit +inf bucket is always present).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    60.0,
    300.0,
    1800.0,
    7200.0,
    43200.0,
)


def _render_key(name: str, labels: Mapping[str, str]) -> str:
    """Stable display key: ``name`` or ``name{k="v",k2="v2"}``."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing count (events, records, prunes)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Mapping[str, str]):
        self.name = name
        self.labels = dict(labels)
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        self.value += amount


class Gauge:
    """Instantaneous level (queue depth, powered servers) with extrema."""

    __slots__ = ("name", "labels", "value", "max", "min", "updates")

    def __init__(self, name: str, labels: Mapping[str, str]):
        self.name = name
        self.labels = dict(labels)
        self.value: float = 0.0
        self.max: float | None = None
        self.min: float | None = None
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = value
        self.updates += 1
        if self.max is None or value > self.max:
            self.max = value
        if self.min is None or value < self.min:
            self.min = value


class Histogram:
    """Distribution of observations over fixed bucket bounds.

    ``volatile=True`` marks a series whose *values* come from the wall
    clock (latencies, phase timings): its snapshot keeps only the
    observation count so the snapshot stays run-to-run deterministic;
    the full statistics remain readable on the instrument itself and
    via ``snapshot(include_volatile=True)``.
    """

    __slots__ = ("name", "labels", "unit", "volatile", "buckets", "bucket_counts",
                 "count", "sum", "min", "max")

    def __init__(
        self,
        name: str,
        labels: Mapping[str, str],
        unit: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        volatile: bool = False,
    ):
        self.name = name
        self.labels = dict(labels)
        self.unit = unit
        self.volatile = bool(volatile)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ConfigurationError(f"histogram {name!r} needs at least one bucket")
        self.buckets = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # +1: the +inf bucket
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """A named family of counters, gauges and histograms.

    Instruments are created on first access and shared thereafter;
    asking for an existing (name, labels) pair with a different
    instrument type raises :class:`ConfigurationError`.
    """

    def __init__(self) -> None:
        self._instruments: dict[tuple[str, tuple[tuple[str, str], ...]], object] = {}

    def _get(self, cls, name: str, labels: Mapping[str, str], **kwargs):
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, dict(key[1]), **kwargs)
            self._instruments[key] = instrument
        elif type(instrument) is not cls:
            raise ConfigurationError(
                f"metric {name!r} already registered as {type(instrument).__name__}"
            )
        return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        unit: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        volatile: bool = False,
        **labels: str,
    ) -> Histogram:
        return self._get(
            Histogram, name, labels, unit=unit, buckets=buckets, volatile=volatile
        )

    def counter_values(self, prefix: str = "") -> dict[str, int | float]:
        """{display key: value} for counters whose name has the prefix."""
        out: dict[str, int | float] = {}
        for instrument in self._instruments.values():
            if isinstance(instrument, Counter) and instrument.name.startswith(prefix):
                out[_render_key(instrument.name, instrument.labels)] = instrument.value
        return dict(sorted(out.items()))

    def merge_counts(self, counts: Mapping[str, int | float], prefix: str = "", **labels: str) -> None:
        """Fold a plain mapping of totals into prefixed counters."""
        for key, value in counts.items():
            self.counter(f"{prefix}{key}", **labels).inc(value)

    def dump_state(self) -> list[dict]:
        """Plain-data dump of every instrument, for cross-process merges.

        Unlike :meth:`snapshot` (a human/JSON view that hides volatile
        values), the dump is lossless: :meth:`merge_state` can fold it
        into another registry so that serial and fanned-out runs end in
        identical registries.  Records are sorted by (name, labels) so
        the dump itself is deterministic.
        """
        records: list[dict] = []
        for (name, labels), instrument in sorted(self._instruments.items()):
            record: dict = {"name": name, "labels": list(labels)}
            if isinstance(instrument, Counter):
                record["kind"] = "counter"
                record["value"] = instrument.value
            elif isinstance(instrument, Gauge):
                record["kind"] = "gauge"
                record.update(
                    value=instrument.value,
                    max=instrument.max,
                    min=instrument.min,
                    updates=instrument.updates,
                )
            elif isinstance(instrument, Histogram):
                record["kind"] = "histogram"
                record.update(
                    unit=instrument.unit,
                    volatile=instrument.volatile,
                    buckets=list(instrument.buckets),
                    bucket_counts=list(instrument.bucket_counts),
                    count=instrument.count,
                    sum=instrument.sum,
                    min=instrument.min,
                    max=instrument.max,
                )
            records.append(record)
        return records

    def merge_state(self, state: "list[dict]") -> None:
        """Fold a :meth:`dump_state` dump into this registry.

        Counters and histogram tallies add; gauge extrema and update
        counts combine while the gauge *value* takes the incoming one
        (merging worker states in task order thus reproduces the
        last-writer value a serial run would have ended with).  Merging
        the same dumps in the same order is deterministic, which is what
        lets a process pool end bit-identical to a serial loop.
        """
        for record in state:
            labels = {key: value for key, value in record["labels"]}
            kind = record["kind"]
            if kind == "counter":
                self.counter(record["name"], **labels).inc(record["value"])
            elif kind == "gauge":
                gauge = self.gauge(record["name"], **labels)
                gauge.value = record["value"]
                gauge.updates += record["updates"]
                for incoming in (record["max"],):
                    if incoming is not None and (gauge.max is None or incoming > gauge.max):
                        gauge.max = incoming
                for incoming in (record["min"],):
                    if incoming is not None and (gauge.min is None or incoming < gauge.min):
                        gauge.min = incoming
            elif kind == "histogram":
                histogram = self.histogram(
                    record["name"],
                    unit=record["unit"],
                    buckets=tuple(record["buckets"]),
                    volatile=record["volatile"],
                    **labels,
                )
                if histogram.buckets != tuple(record["buckets"]):
                    raise ConfigurationError(
                        f"histogram {record['name']!r} merge: bucket bounds differ"
                    )
                histogram.count += record["count"]
                histogram.sum += record["sum"]
                for index, count in enumerate(record["bucket_counts"]):
                    histogram.bucket_counts[index] += count
                if record["min"] is not None and (
                    histogram.min is None or record["min"] < histogram.min
                ):
                    histogram.min = record["min"]
                if record["max"] is not None and (
                    histogram.max is None or record["max"] > histogram.max
                ):
                    histogram.max = record["max"]
            else:
                raise ConfigurationError(f"unknown instrument kind {kind!r} in dump")

    def reset(self) -> None:
        self._instruments.clear()

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self, include_volatile: bool = False) -> dict:
        """Deterministic JSON-ready view of every instrument.

        Keys are sorted display keys.  Volatile histograms contribute
        only their (deterministic) observation count unless
        ``include_volatile`` asks for the full wall-clock statistics.
        """
        counters: dict[str, object] = {}
        gauges: dict[str, object] = {}
        histograms: dict[str, object] = {}
        for instrument in self._instruments.values():
            key = _render_key(instrument.name, instrument.labels)
            if isinstance(instrument, Counter):
                counters[key] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[key] = {
                    "value": instrument.value,
                    "max": instrument.max,
                    "min": instrument.min,
                    "updates": instrument.updates,
                }
            elif isinstance(instrument, Histogram):
                entry: dict[str, object] = {
                    "count": instrument.count,
                    "unit": instrument.unit,
                    "volatile": instrument.volatile,
                }
                if include_volatile or not instrument.volatile:
                    entry.update(
                        {
                            "sum": instrument.sum,
                            "min": instrument.min,
                            "max": instrument.max,
                            "mean": instrument.mean,
                            "buckets": {
                                **{
                                    str(bound): count
                                    for bound, count in zip(
                                        instrument.buckets, instrument.bucket_counts
                                    )
                                },
                                "+inf": instrument.bucket_counts[-1],
                            },
                        }
                    )
                histograms[key] = entry
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": dict(sorted(histograms.items())),
        }
