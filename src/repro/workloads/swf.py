"""Standard Workload Format (SWF) records, reader, writer and merger.

The SWF (Feitelson's Parallel Workload Archive) is a line-oriented
plain-text format: comment/header lines start with ``;``, data lines
hold 18 whitespace-separated integer fields per job, with ``-1``
denoting "unknown".  The paper converts the Grid Observatory logs into
SWF, merges the per-site files into one, and cleans the result.

Only the fields the reproduction consumes get named accessors; the
full 18-field tuple is preserved on round-trip.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from repro.common.errors import TraceFormatError

#: SWF field count (fixed by the standard).
N_FIELDS = 18


class JobStatus(enum.IntEnum):
    """SWF status field values."""

    FAILED = 0
    COMPLETED = 1
    PARTIAL_TO_BE_CONTINUED = 2
    PARTIAL_LAST = 3
    CANCELLED = 5
    UNKNOWN = -1


@dataclass(frozen=True, slots=True)
class SWFRecord:
    """One SWF job line.

    Field names follow the SWF standard; times are seconds relative to
    the trace start, ``-1`` = unknown.
    """

    job_number: int
    submit_time: int
    wait_time: int = -1
    run_time: int = -1
    allocated_procs: int = -1
    avg_cpu_time: int = -1
    used_memory: int = -1
    requested_procs: int = -1
    requested_time: int = -1
    requested_memory: int = -1
    status: int = JobStatus.UNKNOWN
    user_id: int = -1
    group_id: int = -1
    executable: int = -1
    queue: int = -1
    partition: int = -1
    preceding_job: int = -1
    think_time: int = -1

    @property
    def job_status(self) -> JobStatus:
        try:
            return JobStatus(self.status)
        except ValueError:
            return JobStatus.UNKNOWN

    @property
    def completed(self) -> bool:
        return self.status == JobStatus.COMPLETED

    def shifted(self, delta_s: int) -> "SWFRecord":
        """A copy with the submit time shifted by ``delta_s`` seconds."""
        return replace(self, submit_time=self.submit_time + delta_s)

    def as_fields(self) -> tuple[int, ...]:
        return (
            self.job_number,
            self.submit_time,
            self.wait_time,
            self.run_time,
            self.allocated_procs,
            self.avg_cpu_time,
            self.used_memory,
            self.requested_procs,
            self.requested_time,
            self.requested_memory,
            self.status,
            self.user_id,
            self.group_id,
            self.executable,
            self.queue,
            self.partition,
            self.preceding_job,
            self.think_time,
        )

    @classmethod
    def from_fields(cls, fields: Sequence[int]) -> "SWFRecord":
        if len(fields) != N_FIELDS:
            raise ValueError(f"SWF record needs {N_FIELDS} fields, got {len(fields)}")
        return cls(*fields)


def read_swf(path: str | os.PathLike) -> tuple[list[str], list[SWFRecord]]:
    """Read an SWF file.

    Returns (header_comments, records); comments keep their leading
    ``;``.  Data lines with the wrong field count or non-integer
    fields raise :class:`TraceFormatError` with the line number.
    """
    comments: list[str] = []
    records: list[SWFRecord] = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            if stripped.startswith(";"):
                comments.append(stripped)
                continue
            parts = stripped.split()
            if len(parts) != N_FIELDS:
                raise TraceFormatError(
                    f"expected {N_FIELDS} fields, got {len(parts)}",
                    line_number=line_number,
                )
            try:
                fields = [int(p) for p in parts]
            except ValueError as exc:
                raise TraceFormatError(str(exc), line_number=line_number) from exc
            records.append(SWFRecord.from_fields(fields))
    return comments, records


def write_swf(
    records: Iterable[SWFRecord],
    path: str | os.PathLike,
    comments: Sequence[str] = (),
) -> None:
    """Write records to an SWF file (comments first, then data lines)."""
    with open(path, "w") as handle:
        for comment in comments:
            if not comment.startswith(";"):
                comment = f"; {comment}"
            handle.write(comment + "\n")
        for record in records:
            handle.write(" ".join(str(f) for f in record.as_fields()) + "\n")


def merge_swf(traces: Sequence[Sequence[SWFRecord]]) -> list[SWFRecord]:
    """Merge several SWF traces into one.

    "As they are usually composed of multiple files we combined them
    into a single file."  Records are interleaved by submit time and
    renumbered sequentially from 1 (job numbers from different sites
    collide); ties keep the input-trace order.
    """
    merged = sorted(
        (record for trace in traces for record in trace),
        key=lambda r: r.submit_time,
    )
    return [replace(record, job_number=index) for index, record in enumerate(merged, start=1)]
