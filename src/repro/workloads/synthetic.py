"""Synthetic EGEE-like trace generation.

Substitute for the Grid Observatory production logs (see DESIGN.md):
the generator produces raw grid logs with the statistical features that
matter to the paper's pipeline --

* **bursty arrivals**: a Poisson cluster process; submission epochs
  arrive in bursts (scientific workflows submit sets of jobs at once),
* **heavy-tailed runtimes**: lognormal job durations,
* **failures and cancellations**: a sizable fraction of EGEE jobs never
  completed; those records must exist so the cleaning stage has
  something to clean,
* **anomalies**: occasional corrupt rows (end < start, zero CPUs),
* **multiple files and formats**: the output is split across several
  per-site logs in two dialects, exercising conversion and merging.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.rng import RngLike, derive_rng
from repro.workloads.rawlogs import RawLogDialect, parse_raw_log, raw_log_to_swf
from repro.workloads.swf import JobStatus, SWFRecord, merge_swf


@dataclass(frozen=True)
class EGEETraceConfig:
    """Knobs of the synthetic Grid Observatory generator.

    Defaults give a trace whose *cleaned* job count, after 1-4 VM
    scaling, lands near the paper's 10,000 requested VMs when
    ``n_jobs`` is around 5,500.
    """

    n_jobs: int = 5500
    #: Mean burst size of the arrival cluster process.
    mean_burst_size: float = 3.0
    #: Mean gap between bursts, seconds.
    mean_burst_gap_s: float = 240.0
    #: Within-burst inter-submission gap, seconds.
    within_burst_gap_s: float = 2.0
    #: Lognormal runtime parameters (seconds).
    runtime_log_mean: float = 6.3  # exp(6.3) ~ 545 s median
    runtime_log_sigma: float = 0.9
    #: Fraction of failed jobs (EGEE logs carry a large failed share).
    failed_fraction: float = 0.18
    #: Fraction of cancelled jobs.
    cancelled_fraction: float = 0.05
    #: Fraction of anomalous/corrupt records.
    anomaly_fraction: float = 0.02
    #: Number of per-site log files the trace is split across.
    n_sites: int = 3

    def __post_init__(self) -> None:
        if self.n_jobs < 1:
            raise ConfigurationError(f"n_jobs must be >= 1, got {self.n_jobs}")
        if self.mean_burst_size < 1:
            raise ConfigurationError(
                f"mean_burst_size must be >= 1, got {self.mean_burst_size}"
            )
        for name in ("mean_burst_gap_s", "within_burst_gap_s", "runtime_log_sigma"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0, got {getattr(self, name)}")
        total = self.failed_fraction + self.cancelled_fraction + self.anomaly_fraction
        for name in ("failed_fraction", "cancelled_fraction", "anomaly_fraction"):
            if not 0 <= getattr(self, name) <= 1:
                raise ConfigurationError(f"{name} must lie in [0, 1]")
        if total >= 1:
            raise ConfigurationError(
                f"failed+cancelled+anomaly fractions must stay below 1, got {total}"
            )
        if self.n_sites < 1:
            raise ConfigurationError(f"n_sites must be >= 1, got {self.n_sites}")


def generate_raw_grid_logs(
    config: EGEETraceConfig | None = None,
    rng: RngLike = None,
) -> list[tuple[RawLogDialect, list[str]]]:
    """Generate per-site raw log files (dialect, lines).

    Sites alternate between the CSV and key=value dialects; job ids are
    per-site (they collide across sites, as in reality -- merging must
    renumber).  Epochs are absolute (a fixed fictional origin).
    """
    config = config or EGEETraceConfig()
    rng = derive_rng(rng)
    origin_epoch = 1_280_000_000  # mid-2010, the Grid Observatory era

    # Submission epochs via a Poisson cluster process.
    submits: list[int] = []
    t = 0.0
    while len(submits) < config.n_jobs:
        burst = 1 + rng.poisson(max(config.mean_burst_size - 1.0, 0.0))
        for _ in range(int(burst)):
            submits.append(int(t))
            t += rng.exponential(config.within_burst_gap_s)
            if len(submits) >= config.n_jobs:
                break
        t += rng.exponential(config.mean_burst_gap_s)

    site_lines: list[list[str]] = [[] for _ in range(config.n_sites)]
    site_counters = [0] * config.n_sites
    for submit in submits:
        site = int(rng.integers(0, config.n_sites))
        site_counters[site] += 1
        job_id = site_counters[site]
        runtime = float(rng.lognormal(config.runtime_log_mean, config.runtime_log_sigma))
        runtime = max(1, int(runtime))
        wait = int(rng.exponential(30.0))
        start = origin_epoch + submit + wait
        end = start + runtime
        ncpus = int(rng.integers(1, 9))

        draw = rng.random()
        if draw < config.anomaly_fraction:
            kind = int(rng.integers(0, 2))
            if kind == 0:
                end = start - int(rng.integers(1, 1000))  # negative runtime
                state = "DONE"
            else:
                ncpus = 0  # zero-CPU anomaly
                state = "DONE"
        elif draw < config.anomaly_fraction + config.failed_fraction:
            end = start + int(runtime * rng.random())  # died partway
            state = "FAILED"
        elif draw < (
            config.anomaly_fraction + config.failed_fraction + config.cancelled_fraction
        ):
            start = -1
            end = -1
            state = "CANCELLED"
        else:
            state = "DONE"

        submit_epoch = origin_epoch + submit
        if site % 2 == 0:
            line = f"{job_id},{submit_epoch},{start},{end},{ncpus},{state}"
        else:
            line = (
                f"id={job_id} submit={submit_epoch} start={start} "
                f"end={end} cpus={ncpus} status={state}"
            )
        site_lines[site].append(line)

    return [
        (RawLogDialect.CSV if site % 2 == 0 else RawLogDialect.KEYVALUE, lines)
        for site, lines in enumerate(site_lines)
    ]


def generate_egee_like_trace(
    config: EGEETraceConfig | None = None,
    rng: RngLike = None,
) -> list[SWFRecord]:
    """Full generation + conversion + merge pipeline, still *uncleaned*.

    Returns the merged SWF trace containing completed, failed,
    cancelled and anomalous records -- the input the cleaning stage
    expects.
    """
    logs = generate_raw_grid_logs(config, rng)
    traces = [raw_log_to_swf(parse_raw_log(lines, dialect)) for dialect, lines in logs]
    return merge_swf(traces)
