"""Profile assignment and VM scaling (paper Sect. IV-B).

"As the traces found from different systems did not provide all the
information needed for our analysis, we needed to complete them using a
model based on the benchmarking of HPC applications.  We randomly
assigned one of the possible benchmark profiles to each request in the
input trace, following a uniform distribution by bursts.  The bursts of
job requests were sized (randomly) from 1 to 5 job requests. ...
Specifically, we assigned 1 to 4 VMs per job request rather than the
original CPU demand."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.common.errors import ConfigurationError
from repro.common.rng import RngLike, derive_rng
from repro.testbed.benchmarks import WORKLOAD_CLASSES, WorkloadClass
from repro.workloads.swf import SWFRecord


@dataclass(frozen=True)
class AssignmentConfig:
    """Knobs of the completion step."""

    min_burst: int = 1
    max_burst: int = 5
    min_vms: int = 1
    max_vms: int = 4

    def __post_init__(self) -> None:
        if not 1 <= self.min_burst <= self.max_burst:
            raise ConfigurationError(
                f"burst bounds must satisfy 1 <= min <= max, got "
                f"({self.min_burst}, {self.max_burst})"
            )
        if not 1 <= self.min_vms <= self.max_vms:
            raise ConfigurationError(
                f"VM bounds must satisfy 1 <= min <= max, got "
                f"({self.min_vms}, {self.max_vms})"
            )


@dataclass(frozen=True, slots=True)
class PreparedJob:
    """A cleaned trace record completed with profile and VM count.

    This is the unit the simulation consumes: a job request submits
    ``n_vms`` VMs of one application profile at ``submit_time_s``.
    ``burst_id`` groups the jobs of one synthetic workflow (same
    profile by construction).
    """

    job_id: int
    submit_time_s: float
    workload_class: WorkloadClass
    n_vms: int
    burst_id: int

    def __post_init__(self) -> None:
        if self.n_vms < 1:
            raise ConfigurationError(f"n_vms must be >= 1, got {self.n_vms}")
        if self.submit_time_s < 0:
            raise ConfigurationError(
                f"submit_time_s must be >= 0, got {self.submit_time_s}"
            )


def assign_profiles_and_vms(
    records: Sequence[SWFRecord],
    config: AssignmentConfig | None = None,
    rng: RngLike = None,
) -> list[PreparedJob]:
    """Complete a cleaned SWF trace into prepared job requests.

    Walks the trace in submit order; draws a burst length uniformly in
    [min_burst, max_burst] and a profile uniformly over the workload
    classes, stamps the next burst-length jobs with that profile, and
    draws each job's VM count uniformly in [min_vms, max_vms].

    Determinism: identical (records, config, seed) triples produce
    identical outputs.
    """
    config = config or AssignmentConfig()
    rng = derive_rng(rng)

    ordered = sorted(records, key=lambda r: (r.submit_time, r.job_number))
    prepared: list[PreparedJob] = []
    index = 0
    burst_id = 0
    while index < len(ordered):
        burst_len = int(rng.integers(config.min_burst, config.max_burst + 1))
        workload_class = WORKLOAD_CLASSES[int(rng.integers(0, len(WORKLOAD_CLASSES)))]
        for record in ordered[index : index + burst_len]:
            prepared.append(
                PreparedJob(
                    job_id=record.job_number,
                    submit_time_s=float(record.submit_time),
                    workload_class=workload_class,
                    n_vms=int(rng.integers(config.min_vms, config.max_vms + 1)),
                    burst_id=burst_id,
                )
            )
        index += burst_len
        burst_id += 1
    return prepared


def total_vms_requested(jobs: Sequence[PreparedJob]) -> int:
    """Total VM count of a prepared trace (the paper's traces request
    10,000 VMs)."""
    return sum(job.n_vms for job in jobs)


def truncate_to_vm_budget(
    jobs: Sequence[PreparedJob], vm_budget: int
) -> list[PreparedJob]:
    """Clip a prepared trace to approximately ``vm_budget`` total VMs.

    Keeps whole jobs in submit order until adding the next job would
    exceed the budget; used to pin the evaluation trace at the paper's
    10,000 requested VMs.
    """
    if vm_budget < 1:
        raise ConfigurationError(f"vm_budget must be >= 1, got {vm_budget}")
    out: list[PreparedJob] = []
    used = 0
    for job in sorted(jobs, key=lambda j: (j.submit_time_s, j.job_id)):
        if used + job.n_vms > vm_budget:
            break
        out.append(job)
        used += job.n_vms
    return out
