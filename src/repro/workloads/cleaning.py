"""Trace cleaning (paper Sect. IV-B).

"Then, we cleaned the trace, now in SWF format, in order to eliminate
failed jobs, cancelled jobs and anomalies."

Anomalies, for a trace destined to drive the simulation, are records
whose essential fields are unusable: non-positive runtimes, missing or
non-positive CPU counts, or negative submit times.  Cleaning also
rebases submit times to zero and renumbers jobs, so downstream stages
can rely on a dense, chronologically sorted trace.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.workloads.swf import JobStatus, SWFRecord


@dataclass(frozen=True)
class CleanReport:
    """What cleaning removed and what survived."""

    total: int
    kept: int
    failed: int
    cancelled: int
    anomalies: int

    @property
    def removed(self) -> int:
        return self.total - self.kept

    def summary(self) -> str:
        return (
            f"kept {self.kept}/{self.total} jobs "
            f"(failed {self.failed}, cancelled {self.cancelled}, "
            f"anomalies {self.anomalies})"
        )


def _is_anomalous(record: SWFRecord) -> bool:
    if record.submit_time < 0:
        return True
    if record.run_time <= 0:
        return True
    if record.allocated_procs == 0 or record.allocated_procs < -1:
        return True
    return False


def clean_trace(records: Sequence[SWFRecord]) -> tuple[list[SWFRecord], CleanReport]:
    """Remove failed jobs, cancelled jobs and anomalies.

    Precedence when a record is wrong in several ways: failed and
    cancelled states are counted first (they are deliberate removals),
    anomalies catch the remainder.  Survivors are sorted by submit
    time, rebased so the first submission is second 0, and renumbered
    from 1.
    """
    kept: list[SWFRecord] = []
    failed = cancelled = anomalies = 0
    for record in records:
        status = record.job_status
        if status == JobStatus.FAILED:
            failed += 1
            continue
        if status == JobStatus.CANCELLED:
            cancelled += 1
            continue
        if status != JobStatus.COMPLETED or _is_anomalous(record):
            anomalies += 1
            continue
        kept.append(record)

    kept.sort(key=lambda r: r.submit_time)
    if kept:
        base = kept[0].submit_time
        kept = [
            replace(record, submit_time=record.submit_time - base, job_number=index)
            for index, record in enumerate(kept, start=1)
        ]
    report = CleanReport(
        total=len(records),
        kept=len(kept),
        failed=failed,
        cancelled=cancelled,
        anomalies=anomalies,
    )
    return kept, report
