"""Workload trace statistics.

Summaries the paper's workload section implies (burstiness, runtime
spread, failure shares) in one place, both for validating the synthetic
generator against its EGEE-like targets and for characterizing any SWF
trace a user brings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.workloads.assignment import PreparedJob
from repro.workloads.swf import JobStatus, SWFRecord


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of one SWF trace."""

    n_jobs: int
    span_s: float
    completed_fraction: float
    failed_fraction: float
    cancelled_fraction: float
    runtime_median_s: float
    runtime_p90_s: float
    interarrival_mean_s: float
    #: Squared coefficient of variation of inter-arrival gaps; > 1
    #: indicates burstier-than-Poisson arrivals.
    interarrival_cv2: float

    @property
    def is_bursty(self) -> bool:
        return self.interarrival_cv2 > 1.0

    def summary(self) -> str:
        return (
            f"{self.n_jobs} jobs over {self.span_s:.0f}s; "
            f"completed {self.completed_fraction:.0%}, "
            f"failed {self.failed_fraction:.0%}, "
            f"cancelled {self.cancelled_fraction:.0%}; "
            f"runtime median {self.runtime_median_s:.0f}s "
            f"(p90 {self.runtime_p90_s:.0f}s); "
            f"arrivals CV^2={self.interarrival_cv2:.1f}"
            f"{' (bursty)' if self.is_bursty else ''}"
        )


def trace_stats(records: Sequence[SWFRecord]) -> TraceStats:
    """Compute :class:`TraceStats` over an SWF trace.

    Raises
    ------
    ValueError
        On an empty trace (no statistics to compute).
    """
    if not records:
        raise ValueError("cannot summarize an empty trace")
    n = len(records)
    submits = np.array(sorted(r.submit_time for r in records), dtype=float)
    statuses = [r.job_status for r in records]
    runtimes = np.array([r.run_time for r in records if r.run_time > 0], dtype=float)

    gaps = np.diff(submits)
    if len(gaps) and gaps.mean() > 0:
        cv2 = float(gaps.var() / gaps.mean() ** 2)
        mean_gap = float(gaps.mean())
    else:
        cv2 = 0.0
        mean_gap = 0.0

    return TraceStats(
        n_jobs=n,
        span_s=float(submits[-1] - submits[0]),
        completed_fraction=statuses.count(JobStatus.COMPLETED) / n,
        failed_fraction=statuses.count(JobStatus.FAILED) / n,
        cancelled_fraction=statuses.count(JobStatus.CANCELLED) / n,
        runtime_median_s=float(np.median(runtimes)) if len(runtimes) else 0.0,
        runtime_p90_s=float(np.percentile(runtimes, 90)) if len(runtimes) else 0.0,
        interarrival_mean_s=mean_gap,
        interarrival_cv2=cv2,
    )


@dataclass(frozen=True)
class PreparedStats:
    """Summary of a prepared (profile-assigned, VM-scaled) trace."""

    n_jobs: int
    n_vms: int
    class_shares: Mapping[str, float]
    mean_vms_per_job: float
    mean_burst_size: float

    def summary(self) -> str:
        shares = ", ".join(f"{k}={v:.0%}" for k, v in sorted(self.class_shares.items()))
        return (
            f"{self.n_jobs} jobs / {self.n_vms} VMs "
            f"({self.mean_vms_per_job:.2f} VMs/job, "
            f"bursts ~{self.mean_burst_size:.1f} jobs); classes: {shares}"
        )


def prepared_stats(jobs: Sequence[PreparedJob]) -> PreparedStats:
    """Compute :class:`PreparedStats` over a prepared trace."""
    if not jobs:
        raise ValueError("cannot summarize an empty prepared trace")
    n = len(jobs)
    n_vms = sum(j.n_vms for j in jobs)
    by_class: dict[str, int] = {}
    bursts: dict[int, int] = {}
    for job in jobs:
        by_class[job.workload_class.value] = by_class.get(job.workload_class.value, 0) + 1
        bursts[job.burst_id] = bursts.get(job.burst_id, 0) + 1
    return PreparedStats(
        n_jobs=n,
        n_vms=n_vms,
        class_shares={k: v / n for k, v in by_class.items()},
        mean_vms_per_job=n_vms / n,
        mean_burst_size=n / len(bursts),
    )
