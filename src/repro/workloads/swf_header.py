"""Standard SWF header generation.

The Parallel Workload Archive's SWF convention opens each file with
``; Key: Value`` comment lines (Version, Computer, MaxJobs,
UnixStartTime, ...).  The converter emits conforming headers so traces
written by this library interoperate with standard SWF tooling, and
the reader side parses headers back into a dict.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.workloads.swf import SWFRecord

#: Header keys in the conventional order.
_STANDARD_ORDER = (
    "Version",
    "Computer",
    "Installation",
    "Information",
    "Conversion",
    "MaxJobs",
    "MaxRecords",
    "UnixStartTime",
    "TimeZoneString",
    "StartTime",
    "EndTime",
    "MaxNodes",
    "MaxProcs",
    "Note",
)


def build_swf_header(
    records: Sequence[SWFRecord],
    computer: str = "emulated Dell X3220 cluster",
    installation: str = "repro: IPDPS-2011 VM-allocation reproduction",
    unix_start_time: int = 1_280_000_000,
    extra: Mapping[str, str] | None = None,
) -> list[str]:
    """Build conventional SWF header comments for a trace.

    Values derived from the records (MaxJobs, MaxProcs, EndTime) are
    computed; callers can append or override via ``extra``.
    """
    fields: dict[str, str] = {
        "Version": "2.2",
        "Computer": computer,
        "Installation": installation,
        "Conversion": "repro.workloads.rawlogs (raw grid logs -> SWF)",
        "MaxJobs": str(len(records)),
        "MaxRecords": str(len(records)),
        "UnixStartTime": str(unix_start_time),
        "TimeZoneString": "UTC",
    }
    if records:
        fields["StartTime"] = str(min(r.submit_time for r in records))
        fields["EndTime"] = str(max(r.submit_time for r in records))
        procs = [r.allocated_procs for r in records if r.allocated_procs > 0]
        if procs:
            fields["MaxProcs"] = str(max(procs))
    if extra:
        fields.update({str(k): str(v) for k, v in extra.items()})

    lines = []
    for key in _STANDARD_ORDER:
        if key in fields:
            lines.append(f"; {key}: {fields.pop(key)}")
    for key, value in fields.items():  # non-standard extras, stable order
        lines.append(f"; {key}: {value}")
    return lines


def parse_swf_header(comments: Sequence[str]) -> dict[str, str]:
    """Parse ``; Key: Value`` comment lines back into a dict.

    Non-conforming comment lines (no ``Key: Value`` shape) are skipped;
    duplicate keys keep the last occurrence, as SWF consumers do.
    """
    fields: dict[str, str] = {}
    for comment in comments:
        body = comment.lstrip(";").strip()
        key, sep, value = body.partition(":")
        if not sep or not key.strip():
            continue
        fields[key.strip()] = value.strip()
    return fields
