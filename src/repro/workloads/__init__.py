"""Workload traces (paper Sect. IV-B).

The paper drives its evaluation with production traces from the Grid
Observatory (logs of the EGEE Grid), pre-processed as follows:

1. convert the raw logs (multiple formats) to the Standard Workload
   Format (SWF) and merge the files into a single trace,
2. clean the trace: drop failed jobs, cancelled jobs and anomalies,
3. complete the missing information: assign a benchmark profile to
   each request uniformly at random *by bursts* of 1-5 job requests
   ("intended to illustrate the submission of scientific HPC
   workflows, which are composed of sets of jobs with the same
   resource requirements"), scale each request to 1-4 VMs instead of
   its original CPU demand, and define QoS (maximum response time)
   per application type.

Since the original Grid Observatory logs are not redistributable, the
:mod:`~repro.workloads.synthetic` generator produces statistically
EGEE-like raw logs (bursty arrivals, heavy-tailed runtimes, a realistic
share of failed/cancelled jobs and anomalous records) in the same
multi-format shape, so that the *entire* pre-processing pipeline above
is exercised, not bypassed.
"""

from repro.workloads.swf import SWFRecord, JobStatus, read_swf, write_swf, merge_swf
from repro.workloads.synthetic import (
    EGEETraceConfig,
    generate_raw_grid_logs,
    generate_egee_like_trace,
)
from repro.workloads.rawlogs import (
    parse_raw_log,
    raw_log_to_swf,
    RawLogDialect,
)
from repro.workloads.cleaning import CleanReport, clean_trace
from repro.workloads.assignment import (
    PreparedJob,
    AssignmentConfig,
    assign_profiles_and_vms,
)
from repro.workloads.qos import QoSPolicy
from repro.workloads.stats import PreparedStats, TraceStats, prepared_stats, trace_stats
from repro.workloads.swf_header import build_swf_header, parse_swf_header

__all__ = [
    "SWFRecord",
    "JobStatus",
    "read_swf",
    "write_swf",
    "merge_swf",
    "EGEETraceConfig",
    "generate_raw_grid_logs",
    "generate_egee_like_trace",
    "parse_raw_log",
    "raw_log_to_swf",
    "RawLogDialect",
    "CleanReport",
    "clean_trace",
    "PreparedJob",
    "AssignmentConfig",
    "assign_profiles_and_vms",
    "QoSPolicy",
    "PreparedStats",
    "TraceStats",
    "prepared_stats",
    "trace_stats",
    "build_swf_header",
    "parse_swf_header",
]
