"""Raw grid-log parsing and conversion to SWF.

"As the traces are in different formats and include data that are not
useful for our purpose, they were pre-processed before being input to
the simulations.  First, we converted the input traces to the Standard
Workload Format (SWF)."

Two dialects of raw logs are supported, mirroring the heterogeneity of
the Grid Observatory exports:

* ``RawLogDialect.CSV`` -- one job per line,
  ``job_id,submit_epoch,start_epoch,end_epoch,ncpus,state`` with
  states ``DONE``/``FAILED``/``CANCELLED``;
* ``RawLogDialect.KEYVALUE`` -- one job per line of
  ``key=value`` pairs (``id= submit= start= end= cpus= status=``),
  the style of L&B event dumps.

Both carry absolute epochs and per-site job ids; conversion rebases
times to the earliest submission and maps states onto SWF status codes.
"""

from __future__ import annotations

import enum
from typing import Iterable, Sequence

from repro.common.errors import TraceFormatError
from repro.workloads.swf import JobStatus, SWFRecord


class RawLogDialect(enum.Enum):
    """Known raw-log formats."""

    CSV = "csv"
    KEYVALUE = "keyvalue"


_STATE_MAP = {
    "DONE": JobStatus.COMPLETED,
    "FAILED": JobStatus.FAILED,
    "CANCELLED": JobStatus.CANCELLED,
}


def _map_state(raw: str, line_number: int) -> JobStatus:
    try:
        return _STATE_MAP[raw.upper()]
    except KeyError:
        raise TraceFormatError(
            f"unknown job state {raw!r} (expected {sorted(_STATE_MAP)})",
            line_number=line_number,
        ) from None


def parse_raw_log(
    lines: Iterable[str],
    dialect: RawLogDialect,
) -> list[tuple[int, int, int, int, int, JobStatus]]:
    """Parse raw log lines into (job_id, submit, start, end, ncpus, status).

    Blank lines and ``#`` comments are skipped.  Epochs stay absolute;
    jobs that never started carry ``start == end == -1``.
    """
    rows: list[tuple[int, int, int, int, int, JobStatus]] = []
    for line_number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if dialect is RawLogDialect.CSV:
            parts = stripped.split(",")
            if len(parts) != 6:
                raise TraceFormatError(
                    f"expected 6 comma-separated fields, got {len(parts)}",
                    line_number=line_number,
                )
            raw_id, raw_submit, raw_start, raw_end, raw_cpus, raw_state = (
                p.strip() for p in parts
            )
        elif dialect is RawLogDialect.KEYVALUE:
            pairs: dict[str, str] = {}
            for token in stripped.split():
                if "=" not in token:
                    raise TraceFormatError(
                        f"malformed key=value token {token!r}", line_number=line_number
                    )
                key, _, value = token.partition("=")
                pairs[key] = value
            missing = {"id", "submit", "start", "end", "cpus", "status"} - set(pairs)
            if missing:
                raise TraceFormatError(
                    f"missing keys {sorted(missing)}", line_number=line_number
                )
            raw_id = pairs["id"]
            raw_submit = pairs["submit"]
            raw_start = pairs["start"]
            raw_end = pairs["end"]
            raw_cpus = pairs["cpus"]
            raw_state = pairs["status"]
        else:  # pragma: no cover - exhaustive enum
            raise ValueError(f"unknown dialect {dialect!r}")
        try:
            job_id = int(raw_id)
            submit = int(raw_submit)
            start = int(raw_start)
            end = int(raw_end)
            ncpus = int(raw_cpus)
        except ValueError as exc:
            raise TraceFormatError(str(exc), line_number=line_number) from exc
        rows.append((job_id, submit, start, end, ncpus, _map_state(raw_state, line_number)))
    return rows


def raw_log_to_swf(
    rows: Sequence[tuple[int, int, int, int, int, JobStatus]],
    rebase: bool = True,
) -> list[SWFRecord]:
    """Convert parsed raw-log rows to SWF records.

    * submit times rebased so the earliest submission is second 0,
    * wait = start - submit (when started), run = end - start,
    * ncpus lands in ``allocated_procs``.

    Anomalous rows (end before start, negative CPU counts) are *kept*:
    removing them is the cleaning stage's job, and the paper treats
    cleaning as a separate explicit step.
    """
    if not rows:
        return []
    base = min(r[1] for r in rows) if rebase else 0
    records: list[SWFRecord] = []
    for job_id, submit, start, end, ncpus, status in rows:
        started = start >= 0
        wait = (start - submit) if started else -1
        run = (end - start) if (started and end >= 0) else -1
        records.append(
            SWFRecord(
                job_number=job_id,
                submit_time=submit - base,
                wait_time=wait,
                run_time=run,
                allocated_procs=ncpus,
                status=int(status),
            )
        )
    records.sort(key=lambda r: r.submit_time)
    return records
