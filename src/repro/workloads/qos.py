"""QoS (maximum response time) policy per application type.

"...we defined the QoS requirements (maximum in response time) per
application type and not for each specific request."

A deadline is a multiple of the class's reference solo runtime Tx: a
job submitted at t must have all of its VMs finished by
``t + factor * Tx``.  The response time includes queueing delay, so the
factor leaves room both for waiting and for consolidation slowdown.
SLA accounting ("summing the number of missed deadlines of all
applications") lives in :mod:`repro.sim.metrics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

from repro.campaign.optimal import OptimalScenarios
from repro.common.errors import ConfigurationError
from repro.testbed.benchmarks import WORKLOAD_CLASSES, WorkloadClass


@dataclass(frozen=True)
class QoSPolicy:
    """Per-class maximum response times, in seconds."""

    max_response_s: Mapping[WorkloadClass, float]

    def __post_init__(self) -> None:
        normalized: dict[WorkloadClass, float] = {}
        for workload_class in WORKLOAD_CLASSES:
            if workload_class not in self.max_response_s:
                raise ConfigurationError(f"QoS policy missing class {workload_class!r}")
            value = self.max_response_s[workload_class]
            if value <= 0:
                raise ConfigurationError(
                    f"max response for {workload_class} must be positive, got {value}"
                )
            normalized[workload_class] = float(value)
        object.__setattr__(self, "max_response_s", MappingProxyType(normalized))

    def __reduce__(self):
        # The read-only MappingProxyType view cannot pickle; rebuild
        # from a plain dict so policies can ship to worker processes
        # (repro.exec) and land bit-identical.
        return (type(self), (dict(self.max_response_s),))

    def deadline_for(self, workload_class: WorkloadClass, submit_time_s: float) -> float:
        """Absolute completion deadline of a job submitted at the given time."""
        return submit_time_s + self.max_response_s[WorkloadClass(workload_class)]

    def max_response(self, workload_class: WorkloadClass) -> float:
        return self.max_response_s[WorkloadClass(workload_class)]

    @classmethod
    def from_optima(cls, optima: OptimalScenarios, factor: float = 6.0) -> "QoSPolicy":
        """Derive the policy from Table I: deadline = factor * Tx.

        The factor must exceed 1 (a deadline below the solo runtime is
        unsatisfiable even on an idle server).
        """
        if factor <= 1.0:
            raise ConfigurationError(f"factor must be > 1, got {factor}")
        return cls(
            max_response_s={
                workload_class: factor * optima.reference_time(workload_class)
                for workload_class in WORKLOAD_CLASSES
            }
        )

    @classmethod
    def unlimited(cls) -> "QoSPolicy":
        """A policy that never binds (for experiments ignoring QoS)."""
        return cls(
            max_response_s={workload_class: float("inf") for workload_class in WORKLOAD_CLASSES}
        )
