"""Wire-schema v1: round-trips, version gating, determinism.

Satellite contract for the schema module: every document type
round-trips losslessly (encode -> decode -> encode is the identity on
the document), every document is stamped ``schema_version: "1"`` with
the stamp as the first key, and decoders reject missing or future
versions with messages naming both sides.
"""

from __future__ import annotations

import json

import pytest

from repro.common.errors import SchemaError
from repro.core.allocator import ProactiveAllocator, ServerState, VMRequest
from repro.experiments.evaluation import StrategyOutcome
from repro.faults.spec import FaultRecord, FaultSpec
from repro.service import schema


@pytest.fixture(scope="module")
def plan(database):
    allocator = ProactiveAllocator(database, alpha=0.5)
    return allocator.allocate(
        [
            VMRequest("vm0", "cpu"),
            VMRequest("vm1", "mem", 4000.0),
            VMRequest("vm2", "io"),
        ],
        [ServerState("s0"), ServerState("s1")],
    )


class TestStamp:
    def test_stamp_is_first_key(self):
        document = schema.stamp({"alpha": 0.5})
        assert list(document) == ["schema_version", "alpha"]
        assert document["schema_version"] == schema.SCHEMA_VERSION == "1"

    def test_missing_version_rejected(self):
        with pytest.raises(SchemaError, match="missing 'schema_version'"):
            schema.check_version({"vm_id": "vm0"}, "vm_request")

    def test_future_version_rejected_naming_both(self):
        with pytest.raises(SchemaError) as excinfo:
            schema.check_version({"schema_version": "99"}, "plan")
        message = str(excinfo.value)
        assert "'99'" in message and "'1'" in message

    def test_non_object_rejected(self):
        with pytest.raises(SchemaError, match="must be a JSON object"):
            schema.check_version([1, 2], "plan")


class TestVMRequestRoundTrip:
    @pytest.mark.parametrize("deadline", [None, 1200.0])
    def test_round_trip(self, deadline):
        request = VMRequest("vm-7", "mem", deadline)
        document = schema.vm_request_document(request)
        assert document["schema_version"] == "1"
        assert schema.decode_vm_request(document) == request
        assert schema.vm_request_document(schema.decode_vm_request(document)) == document

    def test_unknown_class_rejected(self):
        document = schema.vm_request_document(VMRequest("vm0", "cpu"))
        document["workload_class"] = "gpu"
        with pytest.raises(SchemaError, match="unknown workload_class 'gpu'"):
            schema.decode_vm_request(document)

    def test_non_positive_deadline_rejected(self):
        document = schema.vm_request_document(VMRequest("vm0", "cpu"))
        document["max_exec_time_s"] = 0
        with pytest.raises(SchemaError, match="must be positive or null"):
            schema.decode_vm_request(document)


class TestPlanRoundTrip:
    def test_round_trip_is_document_identity(self, plan):
        document = schema.plan_document(plan)
        decoded = schema.decode_plan(document)
        assert schema.plan_document(decoded) == document

    def test_decoded_plan_matches_original(self, plan):
        decoded = schema.decode_plan(schema.plan_document(plan))
        assert decoded.assignments == plan.assignments
        assert decoded.alpha == plan.alpha
        assert decoded.score == plan.score
        assert decoded.qos_satisfied == plan.qos_satisfied
        # Derived totals are recomputed, not read back.
        assert decoded.estimated_makespan_s == plan.estimated_makespan_s
        assert decoded.estimated_energy_j == plan.estimated_energy_j
        assert decoded.n_vms == plan.n_vms

    def test_document_is_byte_deterministic(self, plan):
        first = json.dumps(schema.plan_document(plan), indent=2, sort_keys=True)
        second = json.dumps(schema.plan_document(plan), indent=2, sort_keys=True)
        assert first == second

    def test_missing_field_names_it(self, plan):
        document = schema.plan_document(plan)
        del document["alpha"]
        with pytest.raises(SchemaError, match="missing 'alpha'"):
            schema.decode_plan(document)


class _FakeResult:
    def __init__(self, outcomes, n_jobs, n_vms):
        self.outcomes = outcomes
        self.n_jobs = n_jobs
        self.n_vms = n_vms


class TestEvaluationRoundTrip:
    OUTCOMES = (
        StrategyOutcome("smaller", "PA-0.5", 900.0, 5.0e6, 2.5, 40.0, 7, 1.25),
        StrategyOutcome("larger", "FF", 1400.0, 9.0e6, 8.0, 80.0, 12, 3.5),
    )

    def test_round_trip_is_document_identity(self):
        result = _FakeResult(self.OUTCOMES, n_jobs=2, n_vms=120)
        document = schema.evaluation_document(result)
        decoded = schema.decode_evaluation(document)
        assert schema.evaluation_document(decoded) == document

    def test_decoded_outcomes_compare_equal(self):
        # wall_time_s is compare=False and not on the wire; decoded
        # outcomes still compare equal to the originals.
        document = schema.evaluation_document(
            _FakeResult(self.OUTCOMES, n_jobs=1, n_vms=60)
        )
        decoded = schema.decode_evaluation(document)
        assert decoded.outcomes == self.OUTCOMES
        assert decoded.outcomes[0].wall_time_s == 0.0
        assert decoded.n_jobs == 1
        assert decoded.n_vms == 60


class TestFaultSpecRoundTrip:
    SPEC = FaultSpec.from_dict(
        {
            "events": [
                {"kind": "server_crash", "server": 0, "time_s": 10.0},
                {"kind": "server_recover", "server": 0, "time_s": 50.0},
            ],
            "random": {
                "crash_rate_per_1000s": 1.0,
                "window_t0_s": 0.0,
                "window_t1_s": 100.0,
            },
            "seed": 7,
        }
    )

    def test_round_trip_is_document_identity(self):
        document = schema.fault_spec_document(self.SPEC)
        decoded = schema.decode_fault_spec(document)
        assert schema.fault_spec_document(decoded) == document

    def test_decoded_spec_equals_original(self):
        decoded = schema.decode_fault_spec(schema.fault_spec_document(self.SPEC))
        assert decoded == self.SPEC


class TestFaultRecordDocument:
    def test_document_shape(self):
        record = FaultRecord(
            time_s=10.0,
            kind="server_crash",
            target="s0",
            vm_ids=("vm0", "vm1"),
            detail="2 VMs re-queued",
        )
        document = schema.fault_record_document(record)
        assert document["schema_version"] == "1"
        assert document["kind"] == "server_crash"
        assert document["vm_ids"] == ["vm0", "vm1"]
        assert document["applied"] is True


class TestErrorEnvelope:
    def test_shape_and_stamp(self):
        document = schema.error_envelope("invalid_request", "alpha must be ...")
        assert document["schema_version"] == "1"
        assert document["error"] == {
            "code": "invalid_request",
            "message": "alpha must be ...",
        }

    def test_detail_keys_sorted(self):
        document = schema.error_envelope("backpressure", "full", zebra=1, apple=2)
        assert list(document["error"]["detail"]) == ["apple", "zebra"]
