"""Tests for the allocation service (repro.service)."""
