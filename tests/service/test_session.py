"""The session state machine: coalescing, backpressure, snapshots, faults.

The headline pin lives here: the sequence of admitted requests alone
determines every plan.  However a client chunks its stream, the
coalesced windows -- and therefore the plan documents -- are
bit-identical to each other and to the equivalent one-shot
:class:`~repro.core.allocator.ProactiveAllocator` calls.
"""

from __future__ import annotations

import json

import pytest

from repro.common.errors import BackpressureError, SchemaError
from repro.core.allocator import ProactiveAllocator, ServerState, VMRequest
from repro.faults.spec import FaultSpec
from repro.obs.registry import MetricsRegistry
from repro.service import schema
from repro.service.session import Session, SessionConfig

CLASSES = ("cpu", "mem", "io")


def requests(n, start=0):
    return [
        VMRequest(f"vm{start + i}", CLASSES[(start + i) % len(CLASSES)])
        for i in range(n)
    ]


def plan_bytes(records):
    return json.dumps(
        [record.to_document() for record in records], indent=2, sort_keys=True
    )


def new_session(database, registry=None, **overrides):
    config = SessionConfig(**{"n_servers": 4, "coalesce": 4, **overrides})
    return Session("sess-t", config, database, registry=registry)


class TestSessionConfig:
    def test_defaults_validate(self):
        config = SessionConfig()
        assert config.coalesce == 8
        assert config.max_queue == 1024

    def test_bad_alpha_uses_shared_parser_message(self):
        with pytest.raises(ValueError, match=r"alpha must be within \[0, 1\]"):
            SessionConfig(alpha=1.5)

    def test_coalesce_may_not_exceed_max_queue(self):
        with pytest.raises(ValueError, match="must not exceed max_queue"):
            SessionConfig(coalesce=16, max_queue=8)

    def test_unknown_document_keys_rejected(self):
        with pytest.raises(SchemaError, match=r"unknown keys \['servers'\]"):
            SessionConfig.from_document({"servers": 4})

    def test_non_boolean_strict_qos_rejected(self):
        with pytest.raises(SchemaError, match="'strict_qos' must be a boolean"):
            SessionConfig.from_document({"strict_qos": "yes"})

    def test_document_round_trip(self):
        config = SessionConfig(n_servers=2, alpha=1.0, coalesce=3, max_queue=16)
        document = config.to_document()
        assert document["schema_version"] == "1"
        assert SessionConfig.from_document(document) == config


class TestAdmission:
    def test_admit_below_window_runs_nothing(self, database):
        session = new_session(database)
        assert session.admit(requests(3)) == 3
        assert session.queue_depth == 3
        assert not session.window_ready()
        assert session.run_ready_batches() == []

    def test_window_fills_and_allocates(self, database):
        session = new_session(database)
        session.admit(requests(4))
        assert session.window_ready()
        records = session.run_ready_batches()
        assert len(records) == 1
        assert records[0].plan is not None
        assert records[0].vm_ids == tuple(f"vm{i}" for i in range(4))
        assert session.queue_depth == 0

    def test_flush_allocates_partial_tail(self, database):
        session = new_session(database)
        session.admit(requests(6))
        records = session.flush()
        assert [len(record.vm_ids) for record in records] == [4, 2]
        assert session.queue_depth == 0

    def test_empty_admission_rejected(self, database):
        with pytest.raises(SchemaError, match="must not be empty"):
            new_session(database).admit([])

    def test_duplicate_vm_id_rejected_atomically(self, database):
        session = new_session(database)
        session.admit(requests(2))
        with pytest.raises(SchemaError, match="'vm1' was already admitted"):
            session.admit([VMRequest("vm9", "cpu"), VMRequest("vm1", "cpu")])
        # All-or-nothing: the fresh vm9 was not admitted either.
        assert session.queue_depth == 2
        session.admit([VMRequest("vm9", "cpu")])

    def test_backpressure_rejects_whole_call(self, database):
        session = new_session(database, coalesce=4, max_queue=4)
        session.admit(requests(3))
        with pytest.raises(BackpressureError, match="admission queue is full"):
            session.admit(requests(2, start=3))
        assert session.queue_depth == 3

    def test_metrics_recorded(self, database):
        registry = MetricsRegistry()
        session = new_session(database, registry=registry)
        session.admit(requests(4))
        session.run_ready_batches()
        snapshot = registry.snapshot()
        assert snapshot["counters"]["service.requests.admitted"] == 4
        assert snapshot["counters"]["service.batches"] == 1
        gauge = snapshot["gauges"]['service.queue_depth{session="sess-t"}']
        assert gauge["value"] == 0
        assert gauge["max"] == 4


class TestCoalescingDeterminism:
    TOTAL = 12

    def run_chunked(self, database, chunks):
        session = new_session(database, n_servers=6)
        start = 0
        for chunk in chunks:
            session.admit(requests(chunk, start=start))
            session.run_ready_batches()
            start += chunk
        session.flush()
        return session

    def test_plans_identical_across_chunkings(self, database):
        baselines = self.run_chunked(database, [self.TOTAL])
        one_by_one = self.run_chunked(database, [1] * self.TOTAL)
        uneven = self.run_chunked(database, [5, 1, 3, 3])
        assert (
            plan_bytes(baselines.batches)
            == plan_bytes(one_by_one.batches)
            == plan_bytes(uneven.batches)
        )

    def test_windows_match_one_shot_allocator_calls(self, database):
        from dataclasses import replace

        session = self.run_chunked(database, [self.TOTAL])
        allocator = ProactiveAllocator(database, alpha=session.config.alpha)
        order = [f"s{i}" for i in range(6)]
        servers = {server_id: ServerState(server_id) for server_id in order}
        stream = requests(self.TOTAL)
        for record in session.batches:
            window = stream[: len(record.vm_ids)]
            stream = stream[len(record.vm_ids):]
            plan = allocator.allocate(window, [servers[s] for s in order])
            assert schema.plan_document(plan) == schema.plan_document(record.plan)
            for assignment in plan.assignments:
                servers[assignment.server_id] = replace(
                    servers[assignment.server_id],
                    allocated=assignment.combined_key,
                )


class TestSnapshotRestore:
    def test_state_document_round_trips(self, database):
        session = new_session(database)
        session.admit(requests(6))
        session.run_ready_batches()
        snapshot = session.state_document()
        assert snapshot["schema_version"] == "1"
        restored = new_session(database)
        restored.restore(snapshot)
        assert restored.state_document() == snapshot

    def test_restored_session_continues_identically(self, database):
        # Stream the same 8 requests through an uninterrupted session
        # and through one snapshotted/restored midway; every subsequent
        # plan must be bit-identical.
        straight = new_session(database)
        straight.admit(requests(8))
        straight.flush()

        first_half = new_session(database)
        first_half.admit(requests(4))
        first_half.run_ready_batches()
        snapshot = first_half.state_document()

        resumed = new_session(database)
        resumed.restore(snapshot)
        resumed.admit(requests(4, start=4))
        resumed.flush()

        # Batch history is not transported; the resumed session's
        # batches continue the index sequence.
        assert [record.index for record in resumed.batches] == [1]
        assert plan_bytes(resumed.batches) == plan_bytes(straight.batches[1:])

    def test_restore_validates_before_committing(self, database):
        session = new_session(database)
        session.admit(requests(4))
        session.run_ready_batches()
        before = session.state_document()
        broken = json.loads(json.dumps(before))
        broken["servers"][0]["allocated"] = {"ncpu": 1}  # missing nmem/nio
        with pytest.raises(SchemaError, match="nmem"):
            session.restore(broken)
        assert session.state_document() == before

    def test_restore_rejects_server_count_mismatch(self, database):
        session = new_session(database)
        snapshot = session.state_document()
        snapshot["servers"] = snapshot["servers"][:2]
        with pytest.raises(SchemaError, match="n_servers"):
            new_session(database).restore(snapshot)


class TestFaults:
    CRASH0 = FaultSpec.from_dict(
        {"events": [{"kind": "server_crash", "server": 0, "time_s": 5.0}]}
    )

    def placed_session(self, database):
        session = new_session(database, n_servers=2)
        session.admit(requests(4))
        session.run_ready_batches()
        assert session.queue_depth == 0
        return session

    def test_crash_evicts_and_requeues_fifo(self, database):
        session = self.placed_session(database)
        records = session.apply_faults(self.CRASH0)
        assert len(records) == 1
        assert records[0].kind == "server_crash"
        assert records[0].applied
        evicted = records[0].vm_ids
        assert session.queue_depth == len(evicted)
        # Failed servers take no further placements: the re-flush puts
        # every evicted VM on the surviving server.
        replanned = session.flush()
        for record in replanned:
            if record.plan is None:
                continue
            assert all(a.server_id != "s0" for a in record.plan.assignments)

    def test_double_crash_is_a_recorded_noop(self, database):
        session = self.placed_session(database)
        session.apply_faults(self.CRASH0)
        second = session.apply_faults(self.CRASH0)
        assert second[0].applied is False
        assert second[0].detail == "server already failed"

    def test_recover_restores_eligibility(self, database):
        session = self.placed_session(database)
        session.apply_faults(self.CRASH0)
        records = session.apply_faults(
            FaultSpec.from_dict(
                {"events": [{"kind": "server_recover", "server": 0, "time_s": 9.0}]}
            )
        )
        assert records[0].applied
        assert session.info_document()["failed_servers"] == []

    def test_vm_abort_requeues_one_vm(self, database):
        session = self.placed_session(database)
        target = next(iter(session.state_document()["placements"]))["vm_id"]
        records = session.apply_faults(
            FaultSpec.from_dict(
                {"events": [{"kind": "vm_abort", "vm": target, "time_s": 3.0}]}
            )
        )
        assert records[0].vm_ids == (target,)
        assert session.queue_depth == 1

    def test_slowdown_is_inert_and_says_why(self, database):
        session = self.placed_session(database)
        records = session.apply_faults(
            FaultSpec.from_dict(
                {
                    "events": [
                        {
                            "kind": "slowdown",
                            "server": 1,
                            "time_s": 1.0,
                            "duration_s": 10.0,
                            "factor": 2.0,
                        }
                    ]
                }
            )
        )
        assert all(record.applied is False for record in records)
        assert "no execution clock" in records[0].detail

    def test_fault_log_accumulates(self, database):
        session = self.placed_session(database)
        session.apply_faults(self.CRASH0)
        session.apply_faults(self.CRASH0)
        assert len(session.fault_log) == 2
