"""The HTTP front end, driven end-to-end over real sockets.

A :class:`~repro.service.server.BackgroundService` runs the asyncio
server on a private thread with an ephemeral port; every test here is
a genuine HTTP round-trip through the stdlib client.  Covered: the
session lifecycle, coalesced-batch determinism across chunkings (and
against the in-process :class:`~repro.service.session.Session`),
backpressure 429s, validation-message parity with the CLI flags, the
chaos endpoint against a live session, and snapshot/restore.
"""

from __future__ import annotations

import json

import pytest

import repro
from repro.common.validation import parse_alpha
from repro.service import BackgroundService, ServiceConfig
from repro.service.session import Session, SessionConfig

CLASSES = ("cpu", "mem", "io")


def request_doc(i):
    return {
        "schema_version": "1",
        "vm_id": f"vm{i}",
        "workload_class": CLASSES[i % len(CLASSES)],
        "max_exec_time_s": None,
    }


def request_docs(n, start=0):
    return [request_doc(start + i) for i in range(n)]


@pytest.fixture(scope="module")
def svc(database):
    with BackgroundService(database=database) as service:
        yield service


def make_session(svc, **config):
    status, body = svc.request("POST", "/v1/sessions", config)
    assert status == 201, body
    return body["session_id"]


def plans_bytes(svc, sid):
    status, body = svc.request("GET", f"/v1/sessions/{sid}/plans")
    assert status == 200
    return json.dumps(body["batches"], indent=2, sort_keys=True)


class TestLifecycle:
    def test_healthz(self, svc):
        status, body = svc.request("GET", "/v1/healthz")
        assert status == 200
        assert body["schema_version"] == "1"
        assert body["status"] == "ok"
        assert body["version"] == repro.__version__

    def test_create_info_list_delete(self, svc):
        sid = make_session(svc, n_servers=2, coalesce=3)
        status, info = svc.request("GET", f"/v1/sessions/{sid}")
        assert status == 200
        assert info["config"]["n_servers"] == 2
        assert info["config"]["coalesce"] == 3
        assert info["queue_depth"] == 0

        status, listing = svc.request("GET", "/v1/sessions")
        assert status == 200
        assert sid in [entry["session_id"] for entry in listing["sessions"]]

        status, deleted = svc.request("DELETE", f"/v1/sessions/{sid}")
        assert status == 200 and deleted["deleted"] is True
        status, body = svc.request("GET", f"/v1/sessions/{sid}")
        assert status == 404
        assert body["error"]["code"] == "not_found"

    def test_unknown_route_404(self, svc):
        status, body = svc.request("GET", "/v2/anything")
        assert status == 404
        assert body["error"]["code"] == "not_found"

    def test_wrong_method_405(self, svc):
        status, body = svc.request("DELETE", "/v1/healthz")
        assert status == 405
        assert body["error"]["code"] == "method_not_allowed"
        assert "GET" in body["error"]["message"]

    def test_invalid_json_body_400(self, svc):
        import http.client

        connection = http.client.HTTPConnection(
            svc.service.config.host, svc.port, timeout=30
        )
        try:
            connection.request(
                "POST", "/v1/sessions", body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            body = json.loads(response.read())
        finally:
            connection.close()
        assert response.status == 400
        assert body["error"]["code"] == "invalid_json"

    def test_metrics_endpoint(self, svc):
        status, body = svc.request("GET", "/v1/metrics")
        assert status == 200
        assert body["schema_version"] == "1"
        assert body["counters"]["service.http.requests"] >= 1
        assert body["counters"]["service.sessions.created"] >= 1


class TestValidationParity:
    def test_bad_alpha_carries_the_cli_message(self, svc):
        # The service body and the CLI flag route through the same
        # parse_alpha; an HTTP 400 must carry the exact text
        # `repro allocate --alpha 1.5` prints before exiting 2.
        with pytest.raises(ValueError) as excinfo:
            parse_alpha(1.5)
        cli_message = str(excinfo.value)
        status, body = svc.request("POST", "/v1/sessions", {"alpha": 1.5})
        assert status == 400
        assert body["error"]["code"] == "invalid_request"
        assert cli_message in body["error"]["message"]

    def test_unknown_config_key_400(self, svc):
        status, body = svc.request("POST", "/v1/sessions", {"servers": 4})
        assert status == 400
        assert "unknown keys" in body["error"]["message"]

    def test_bad_workload_class_400(self, svc):
        sid = make_session(svc)
        bad = request_doc(0)
        bad["workload_class"] = "gpu"
        status, body = svc.request(
            "POST", f"/v1/sessions/{sid}/requests", {"requests": [bad]}
        )
        assert status == 400
        assert "unknown workload_class 'gpu'" in body["error"]["message"]
        svc.request("DELETE", f"/v1/sessions/{sid}")

    def test_unversioned_request_document_400(self, svc):
        sid = make_session(svc)
        bad = request_doc(0)
        del bad["schema_version"]
        status, body = svc.request(
            "POST", f"/v1/sessions/{sid}/requests", {"requests": [bad]}
        )
        assert status == 400
        assert "missing 'schema_version'" in body["error"]["message"]
        svc.request("DELETE", f"/v1/sessions/{sid}")


class TestAdmissionAndFlush:
    def test_admit_then_flush_returns_plans(self, svc):
        sid = make_session(svc, n_servers=4, coalesce=4)
        status, body = svc.request(
            "POST", f"/v1/sessions/{sid}/requests", {"requests": request_docs(6)}
        )
        assert status == 200
        assert body["admitted"] == 6
        assert body["admitted_total"] == 6
        status, flushed = svc.request("POST", f"/v1/sessions/{sid}/flush")
        assert status == 200
        status, plans = svc.request("GET", f"/v1/sessions/{sid}/plans")
        assert status == 200
        batches = plans["batches"]
        assert [len(batch["vm_ids"]) for batch in batches] == [4, 2]
        assert all(batch["plan"] is not None for batch in batches)
        assert all(batch["error"] is None for batch in batches)
        svc.request("DELETE", f"/v1/sessions/{sid}")

    def test_backpressure_429(self, svc):
        sid = make_session(svc, coalesce=4, max_queue=4)
        status, body = svc.request(
            "POST", f"/v1/sessions/{sid}/requests", {"requests": request_docs(5)}
        )
        assert status == 429
        assert body["error"]["code"] == "backpressure"
        assert "admission queue is full" in body["error"]["message"]
        # All-or-nothing: nothing from the rejected call was admitted.
        status, info = svc.request("GET", f"/v1/sessions/{sid}")
        assert info["admitted_total"] == 0
        svc.request("DELETE", f"/v1/sessions/{sid}")

    def test_session_limit_429(self, database):
        with BackgroundService(
            ServiceConfig(port=0, max_sessions=1), database=database
        ) as small:
            assert small.request("POST", "/v1/sessions", {})[0] == 201
            status, body = small.request("POST", "/v1/sessions", {})
            assert status == 429
            assert body["error"]["code"] == "backpressure"
            assert "session limit reached (1)" in body["error"]["message"]


class TestCoalescedDeterminism:
    TOTAL = 12

    def stream(self, svc, chunks):
        sid = make_session(svc, n_servers=6, coalesce=4)
        start = 0
        for chunk in chunks:
            status, _ = svc.request(
                "POST",
                f"/v1/sessions/{sid}/requests",
                {"requests": request_docs(chunk, start=start)},
            )
            assert status == 200
            start += chunk
        status, _ = svc.request("POST", f"/v1/sessions/{sid}/flush")
        assert status == 200
        rendered = plans_bytes(svc, sid)
        svc.request("DELETE", f"/v1/sessions/{sid}")
        return rendered

    def test_plans_identical_across_chunkings(self, svc):
        assert (
            self.stream(svc, [self.TOTAL])
            == self.stream(svc, [1] * self.TOTAL)
            == self.stream(svc, [5, 1, 3, 3])
        )

    def test_http_plans_match_in_process_session(self, svc, database):
        over_http = self.stream(svc, [3, 3, 3, 3])
        session = Session(
            "ref",
            SessionConfig(n_servers=6, coalesce=4),
            database,
        )
        from repro.core.allocator import VMRequest

        session.admit(
            [
                VMRequest(f"vm{i}", CLASSES[i % len(CLASSES)])
                for i in range(self.TOTAL)
            ]
        )
        session.flush()
        reference = json.dumps(
            [record.to_document() for record in session.batches],
            indent=2,
            sort_keys=True,
        )
        assert over_http == reference


class TestSnapshotRestore:
    def test_state_round_trip_over_http(self, svc):
        sid = make_session(svc, n_servers=2, coalesce=2)
        svc.request(
            "POST", f"/v1/sessions/{sid}/requests", {"requests": request_docs(3)}
        )
        svc.request("POST", f"/v1/sessions/{sid}/flush")
        status, snapshot = svc.request("GET", f"/v1/sessions/{sid}/state")
        assert status == 200
        assert snapshot["schema_version"] == "1"

        other = make_session(svc, n_servers=2, coalesce=2)
        status, info = svc.request("PUT", f"/v1/sessions/{other}/state", snapshot)
        assert status == 200
        assert info["batches_completed"] == 2
        status, restored = svc.request("GET", f"/v1/sessions/{other}/state")
        assert status == 200
        # The snapshot carries the *session's* state, not its identity.
        assert restored["session_id"] == other
        snapshot_sans_id = {k: v for k, v in snapshot.items() if k != "session_id"}
        restored_sans_id = {k: v for k, v in restored.items() if k != "session_id"}
        assert restored_sans_id == snapshot_sans_id
        svc.request("DELETE", f"/v1/sessions/{sid}")
        svc.request("DELETE", f"/v1/sessions/{other}")

    def test_put_state_rejects_future_version(self, svc):
        sid = make_session(svc)
        status, body = svc.request(
            "PUT", f"/v1/sessions/{sid}/state", {"schema_version": "99"}
        )
        assert status == 400
        assert "schema_version '99'" in body["error"]["message"]
        svc.request("DELETE", f"/v1/sessions/{sid}")


class TestChaosEndpoint:
    def test_crash_through_live_session(self, svc):
        sid = make_session(svc, n_servers=2, coalesce=2)
        svc.request(
            "POST", f"/v1/sessions/{sid}/requests", {"requests": request_docs(4)}
        )
        svc.request("POST", f"/v1/sessions/{sid}/flush")
        status, info = svc.request("GET", f"/v1/sessions/{sid}")
        assert info["placements"] == 4

        status, body = svc.request(
            "POST",
            f"/v1/sessions/{sid}/faults",
            {
                "schema_version": "1",
                "events": [{"kind": "server_crash", "server": 0, "time_s": 5.0}],
            },
        )
        assert status == 200
        records = body["records"]
        assert [record["kind"] for record in records] == ["server_crash"]
        assert records[0]["applied"] is True
        evicted = records[0]["vm_ids"]
        assert body["queue_depth"] == len(evicted)

        # The evicted VMs re-plan onto the surviving server only.
        status, flushed = svc.request("POST", f"/v1/sessions/{sid}/flush")
        assert status == 200
        for batch in flushed["batches"]:
            if batch["plan"] is not None:
                assert all(
                    assignment["server_id"] != "s0"
                    for assignment in batch["plan"]["assignments"]
                )
        status, info = svc.request("GET", f"/v1/sessions/{sid}")
        assert info["failed_servers"] == ["s0"]
        assert info["queue_depth"] == 0
        svc.request("DELETE", f"/v1/sessions/{sid}")

    def test_bad_fault_spec_400(self, svc):
        sid = make_session(svc)
        status, body = svc.request(
            "POST",
            f"/v1/sessions/{sid}/faults",
            {"schema_version": "1", "events": [{"kind": "meteor_strike"}]},
        )
        assert status == 400
        assert body["error"]["code"] == "invalid_request"
        svc.request("DELETE", f"/v1/sessions/{sid}")
