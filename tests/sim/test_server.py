"""Unit tests for the per-server runtime."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.server import ServerRuntime
from repro.sim.vm import SimVM
from repro.testbed.benchmarks import WorkloadClass
from repro.testbed.spec import default_server


def make_vm(vm_id="v0", workload_class=WorkloadClass.CPU):
    return SimVM(
        vm_id=vm_id,
        job_id=1,
        workload_class=workload_class,
        submit_time_s=0.0,
    )


@pytest.fixture
def server():
    return ServerRuntime("s0", default_server())


class TestPowerState:
    def test_starts_powered_off(self, server):
        assert not server.powered_on
        assert server.current_power_w() == 0.0

    def test_powers_on_with_first_vm(self, server):
        server.sync(0.0)
        server.add_vm(make_vm(), 0.0)
        assert server.powered_on
        assert server.current_power_w() > 125.0

    def test_powers_off_when_empty(self, server):
        server.sync(0.0)
        vm = make_vm()
        server.add_vm(vm, 0.0)
        finished = server.sync(10_000.0)
        assert finished == [vm]
        assert not server.powered_on

    def test_always_on_policy_accrues_idle_energy(self):
        server = ServerRuntime("s0", default_server(), power_off_when_empty=False)
        server.power_on(0.0)
        vm = make_vm()
        server.sync(0.0)
        server.add_vm(vm, 0.0)
        server.sync(10_000.0)
        energy = server.energy()
        assert energy.idle_j > 0.0  # idle after the VM completed
        assert energy.busy_j > 0.0

    def test_force_power_off_requires_empty(self, server):
        server.sync(0.0)
        server.add_vm(make_vm(), 0.0)
        with pytest.raises(SimulationError):
            server.force_power_off(1.0)


class TestMixKey:
    def test_counts_by_class(self, server):
        server.sync(0.0)
        server.add_vm(make_vm("c0", WorkloadClass.CPU), 0.0)
        server.add_vm(make_vm("m0", WorkloadClass.MEM), 0.0)
        server.add_vm(make_vm("i0", WorkloadClass.IO), 0.0)
        assert server.mix_key() == (1, 1, 1)

    def test_empty_mix(self, server):
        assert server.mix_key() == (0, 0, 0)


class TestSyncSemantics:
    def test_sync_backwards_rejected(self, server):
        server.sync(10.0)
        with pytest.raises(SimulationError):
            server.sync(5.0)

    def test_add_without_sync_rejected(self, server):
        server.sync(0.0)
        with pytest.raises(SimulationError):
            server.add_vm(make_vm(), 50.0)

    def test_completion_time_matches_solo_runtime(self, server):
        vm = make_vm()
        server.sync(0.0)
        server.add_vm(vm, 0.0)
        boundary = server.next_boundary(0.0)
        # First boundary: end of the init phase.
        assert boundary == pytest.approx(vm.benchmark.serial_time_s)
        server.sync(boundary)
        second = server.next_boundary(boundary)
        assert second == pytest.approx(vm.benchmark.t_ref_s)
        finished = server.sync(second)
        assert finished == [vm]

    def test_epoch_increments_on_changes(self, server):
        epoch0 = server.epoch
        server.sync(0.0)
        server.add_vm(make_vm(), 0.0)
        assert server.epoch > epoch0
        epoch1 = server.epoch
        server.sync(10_000.0)  # VM finishes
        assert server.epoch > epoch1

    def test_energy_accrues_during_busy_time(self, server):
        server.sync(0.0)
        server.add_vm(make_vm(), 0.0)
        server.sync(100.0)
        assert server.energy().busy_j > 0.0
        assert server.energy().idle_j == 0.0

    def test_next_boundary_none_when_idle(self, server):
        assert server.next_boundary(0.0) is None

    def test_contention_delays_boundaries(self):
        crowded = ServerRuntime("a", default_server())
        solo = ServerRuntime("b", default_server())
        crowded.sync(0.0)
        solo.sync(0.0)
        for i in range(8):
            crowded.add_vm(make_vm(f"v{i}"), 0.0)
        solo.add_vm(make_vm("solo"), 0.0)
        # Skip both init phases (uncontended) to compare work phases.
        b_crowded = crowded.next_boundary(0.0)
        b_solo = solo.next_boundary(0.0)
        crowded.sync(b_crowded)
        solo.sync(b_solo)
        assert crowded.next_boundary(b_crowded) > solo.next_boundary(b_solo)
