"""Unit tests for simulation metrics."""

import pytest

from repro.sim.metrics import JobOutcome, SimulationMetrics, compute_metrics


def outcome(job_id=1, submit=0.0, complete=100.0, deadline=500.0, n_vms=2):
    return JobOutcome(
        job_id=job_id,
        workload_class="cpu",
        n_vms=n_vms,
        submit_time_s=submit,
        completion_time_s=complete,
        deadline_s=deadline,
    )


class TestJobOutcome:
    def test_response_time(self):
        assert outcome(submit=10.0, complete=110.0).response_time_s == 100.0

    def test_missed_deadline(self):
        assert outcome(complete=600.0, deadline=500.0).missed_deadline
        assert not outcome(complete=400.0, deadline=500.0).missed_deadline


class TestComputeMetrics:
    def test_makespan_definition(self):
        # "the difference between the earliest time of submission of any
        # of the workload tasks, and the latest time of completion of
        # any of its tasks"
        outcomes = [
            outcome(job_id=1, submit=100.0, complete=500.0),
            outcome(job_id=2, submit=50.0, complete=300.0),
        ]
        metrics = compute_metrics(outcomes, 0.0, 0.0, 0)
        assert metrics.makespan_s == 450.0

    def test_sla_violation_percentage(self):
        outcomes = [
            outcome(job_id=1, complete=600.0, deadline=500.0),
            outcome(job_id=2, complete=100.0, deadline=500.0),
            outcome(job_id=3, complete=700.0, deadline=500.0),
            outcome(job_id=4, complete=100.0, deadline=500.0),
        ]
        metrics = compute_metrics(outcomes, 0.0, 0.0, 0)
        assert metrics.sla_violations == 2
        assert metrics.sla_violation_pct == 50.0

    def test_energy_split(self):
        metrics = compute_metrics([outcome()], 900.0, 100.0, 0)
        assert metrics.energy_j == 1000.0
        assert metrics.busy_energy_j == 900.0
        assert metrics.idle_energy_j == 100.0
        assert metrics.energy_kj == 1.0

    def test_vm_totals(self):
        metrics = compute_metrics([outcome(n_vms=3), outcome(job_id=2, n_vms=4)], 0, 0, 5)
        assert metrics.n_vms == 7
        assert metrics.n_jobs == 2
        assert metrics.max_queue_length == 5

    def test_response_statistics(self):
        outcomes = [outcome(job_id=i, complete=100.0 * i) for i in range(1, 11)]
        metrics = compute_metrics(outcomes, 0, 0, 0)
        assert metrics.mean_response_s == pytest.approx(550.0)
        assert metrics.p95_response_s >= metrics.mean_response_s

    def test_empty_outcomes(self):
        metrics = compute_metrics([], 500.0, 100.0, 0)
        assert metrics.makespan_s == 0.0
        assert metrics.energy_j == 600.0
        assert metrics.sla_violation_pct == 0.0

    def test_summary_format(self):
        metrics = compute_metrics([outcome()], 1000.0, 0.0, 0)
        text = metrics.summary()
        assert "makespan" in text and "SLA" in text
