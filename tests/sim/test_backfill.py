"""Tests for the EASY-backfilling queue discipline."""

import pytest

from repro.common.errors import ConfigurationError
from repro.sim.datacenter import DatacenterConfig, DatacenterSimulator
from repro.strategies.firstfit import FirstFitStrategy
from repro.testbed.benchmarks import WorkloadClass
from repro.workloads.assignment import PreparedJob
from repro.workloads.qos import QoSPolicy


def job(job_id, submit=0.0, n_vms=1):
    return PreparedJob(
        job_id=job_id,
        submit_time_s=submit,
        workload_class=WorkloadClass.CPU,
        n_vms=n_vms,
        burst_id=job_id,
    )


class TestConfig:
    def test_negative_window_rejected(self):
        with pytest.raises(ConfigurationError):
            DatacenterConfig(n_servers=1, backfill_window=-1)


class TestBackfilling:
    def _scenario(self):
        """One 4-slot server: a running 2-VM job, then a blocked 4-VM
        job, then a 1-VM job that fits the two remaining slots."""
        return [
            job(1, submit=0.0, n_vms=2),
            job(2, submit=10.0, n_vms=4),  # blocks: needs all 4 slots
            job(3, submit=20.0, n_vms=1),  # fits the remaining slots
        ]

    def test_fcfs_blocks_small_job_behind_big_one(self):
        sim = DatacenterSimulator(DatacenterConfig(n_servers=1, backfill_window=0))
        result = sim.run(self._scenario(), FirstFitStrategy(1), QoSPolicy.unlimited())
        completions = {o.job_id: o.completion_time_s for o in result.outcomes}
        # Strict FCFS: job 3 cannot start until job 2 did.
        assert completions[3] > completions[1]

    def test_backfill_lets_small_job_through(self):
        sim = DatacenterSimulator(DatacenterConfig(n_servers=1, backfill_window=4))
        result = sim.run(self._scenario(), FirstFitStrategy(1), QoSPolicy.unlimited())
        completions = {o.job_id: o.completion_time_s for o in result.outcomes}
        # Job 3 (1 VM) backfills alongside job 1 and finishes well
        # before the 4-VM job 2 even starts.
        assert completions[3] < completions[2]
        assert completions[3] < completions[1] + 700.0

    def test_backfill_improves_mean_response(self):
        jobs = self._scenario()
        unlimited = QoSPolicy.unlimited()
        fcfs = DatacenterSimulator(DatacenterConfig(n_servers=1)).run(
            jobs, FirstFitStrategy(1), unlimited
        )
        easy = DatacenterSimulator(
            DatacenterConfig(n_servers=1, backfill_window=4)
        ).run(jobs, FirstFitStrategy(1), unlimited)
        assert easy.metrics.mean_response_s < fcfs.metrics.mean_response_s

    def test_all_jobs_complete_under_backfill(self):
        jobs = [job(i, submit=i * 5.0, n_vms=1 + i % 4) for i in range(1, 15)]
        sim = DatacenterSimulator(DatacenterConfig(n_servers=2, backfill_window=3))
        result = sim.run(jobs, FirstFitStrategy(2), QoSPolicy.unlimited())
        assert sorted(o.job_id for o in result.outcomes) == [j.job_id for j in jobs]

    def test_window_bounds_scan(self):
        # Window 1: only the first job behind the head is considered.
        jobs = [
            job(1, submit=0.0, n_vms=2),
            job(2, submit=10.0, n_vms=4),  # blocked head
            job(3, submit=20.0, n_vms=3),  # scanned, does not fit (2 slots)
            job(4, submit=30.0, n_vms=1),  # outside window 1: must wait
        ]
        sim = DatacenterSimulator(DatacenterConfig(n_servers=1, backfill_window=1))
        result = sim.run(jobs, FirstFitStrategy(1), QoSPolicy.unlimited())
        completions = {o.job_id: o.completion_time_s for o in result.outcomes}
        assert completions[4] > completions[2]  # no backfill for job 4
