"""Unit tests for the shard plan, job/fault partitioning, and merge."""

import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.faults.schedule import FaultAction, FaultSchedule, ScheduledFault
from repro.sim.datacenter import DatacenterConfig, DatacenterSimulator
from repro.sim.shard import (
    ShardPlan,
    _job_of_vm,
    merge_results,
    partition_jobs,
    partition_schedule,
    shard_config,
)
from repro.strategies.firstfit import FirstFitStrategy
from repro.testbed.benchmarks import WorkloadClass
from repro.workloads.assignment import PreparedJob
from repro.workloads.qos import QoSPolicy


def job(job_id, submit=0.0, n_vms=1):
    return PreparedJob(
        job_id=job_id,
        submit_time_s=submit,
        workload_class=WorkloadClass.CPU,
        n_vms=n_vms,
        burst_id=0,
    )


class TestShardPlan:
    def test_contiguous_split_with_remainder(self):
        plan = ShardPlan(n_servers=10, n_shards=3)
        assert [plan.size(s) for s in range(3)] == [4, 3, 3]
        assert plan.offsets == (0, 4, 7)
        # Concatenating the shards reproduces the global range exactly.
        covered = [
            plan.offset(s) + i for s in range(3) for i in range(plan.size(s))
        ]
        assert covered == list(range(10))

    def test_shard_of_server_inverts_the_split(self):
        plan = ShardPlan(n_servers=11, n_shards=4)
        for server in range(11):
            shard = plan.shard_of_server(server)
            assert plan.offset(shard) <= server < plan.offset(shard) + plan.size(shard)

    def test_invalid_plans_rejected(self):
        with pytest.raises(ConfigurationError, match="n_shards"):
            ShardPlan(n_servers=4, n_shards=0)
        with pytest.raises(ConfigurationError, match="cannot split"):
            ShardPlan(n_servers=2, n_shards=3)
        with pytest.raises(ConfigurationError, match="outside"):
            ShardPlan(n_servers=4, n_shards=2).shard_of_server(4)


class TestPartitionJobs:
    def test_every_job_lands_exactly_once(self):
        jobs = [job(i, submit=float(i % 7), n_vms=1 + i % 4) for i in range(30)]
        plan = ShardPlan(n_servers=9, n_shards=3)
        groups, job_to_shard = partition_jobs(jobs, plan)
        flat = sorted(j.job_id for group in groups for j in group)
        assert flat == sorted(j.job_id for j in jobs)
        for shard, group in enumerate(groups):
            for j in group:
                assert job_to_shard[j.job_id] == shard

    def test_balance_tracks_capacity(self):
        # Shard 0 of a (5, 2) split holds 3 of 5 servers and should
        # absorb proportionally more VMs.
        jobs = [job(i, n_vms=2) for i in range(20)]
        plan = ShardPlan(n_servers=5, n_shards=2)
        groups, _ = partition_jobs(jobs, plan)
        loads = [sum(j.n_vms for j in group) for group in groups]
        ratios = [loads[0] / 3, loads[1] / 2]
        assert abs(ratios[0] - ratios[1]) <= 1.0

    def test_deterministic_regardless_of_input_order(self):
        jobs = [job(i, submit=float(i % 5)) for i in range(17)]
        plan = ShardPlan(n_servers=6, n_shards=3)
        _, forward = partition_jobs(jobs, plan)
        _, reversed_ = partition_jobs(list(reversed(jobs)), plan)
        assert forward == reversed_

    def test_duplicate_job_id_rejected(self):
        with pytest.raises(SimulationError, match="duplicate job id"):
            partition_jobs([job(1), job(1)], ShardPlan(n_servers=2, n_shards=1))


class TestJobOfVm:
    def test_simulator_naming_parses(self):
        assert _job_of_vm("j42-0") == 42
        assert _job_of_vm("j7-13") == 7

    def test_foreign_names_return_none(self):
        assert _job_of_vm("vm-1") is None
        assert _job_of_vm("j-1") is None
        assert _job_of_vm("jx-1") is None
        assert _job_of_vm("nodash") is None


class TestPartitionSchedule:
    def test_server_faults_follow_their_shard_with_local_indices(self):
        plan = ShardPlan(n_servers=6, n_shards=2)
        schedule = FaultSchedule(
            timeline=(
                ScheduledFault(time_s=1.0, action=FaultAction.CRASH, server=0),
                ScheduledFault(time_s=2.0, action=FaultAction.CRASH, server=4),
                ScheduledFault(time_s=3.0, action=FaultAction.RECOVER, server=4),
            )
        )
        shards = partition_schedule(schedule, plan, {})
        assert [f.server for f in shards[0].timeline] == [0]
        assert [f.server for f in shards[1].timeline] == [1, 1]
        assert [f.action for f in shards[1].timeline] == [
            FaultAction.CRASH,
            FaultAction.RECOVER,
        ]

    def test_vm_aborts_follow_the_owning_job(self):
        plan = ShardPlan(n_servers=4, n_shards=2)
        schedule = FaultSchedule(
            timeline=(
                ScheduledFault(time_s=1.0, action=FaultAction.ABORT_VM, vm="j5-0"),
                ScheduledFault(time_s=2.0, action=FaultAction.ABORT_VM, vm="j9-1"),
                ScheduledFault(time_s=3.0, action=FaultAction.ABORT_VM, vm="weird"),
            )
        )
        shards = partition_schedule(schedule, plan, {5: 1, 9: 0})
        assert [f.vm for f in shards[0].timeline] == ["j9-1", "weird"]
        assert [f.vm for f in shards[1].timeline] == ["j5-0"]

    def test_every_entry_lands_exactly_once(self):
        plan = ShardPlan(n_servers=5, n_shards=3)
        timeline = tuple(
            ScheduledFault(time_s=float(i), action=FaultAction.CRASH, server=i % 5)
            for i in range(10)
        )
        shards = partition_schedule(FaultSchedule(timeline=timeline), plan, {})
        assert sum(len(s.timeline) for s in shards) == len(timeline)
        # Remapped indices stay inside each shard's local range.
        for shard_id, shard in enumerate(shards):
            for entry in shard.timeline:
                assert 0 <= entry.server < plan.size(shard_id)


class TestShardConfig:
    def test_offsets_and_slices(self):
        plan = ShardPlan(n_servers=7, n_shards=2)
        config = DatacenterConfig(n_servers=7)
        sliced = shard_config(config, plan, 1)
        assert sliced.n_servers == 3
        assert sliced.server_id_offset == 4
        assert sliced.server_specs is None

    def test_spill_override(self):
        plan = ShardPlan(n_servers=4, n_shards=1)
        config = DatacenterConfig(
            n_servers=4,
            record_chronicles=True,
            chronicle_capacity=2,
            chronicle_spill_path="base.jsonl",
        )
        assert (
            shard_config(config, plan, 0, spill_path="other.jsonl").chronicle_spill_path
            == "other.jsonl"
        )
        assert shard_config(config, plan, 0).chronicle_spill_path == "base.jsonl"

    def test_mismatched_plan_rejected(self):
        with pytest.raises(ConfigurationError, match="plan covers"):
            shard_config(
                DatacenterConfig(n_servers=5), ShardPlan(n_servers=4, n_shards=2), 0
            )


class TestMergeResults:
    def _run(self, jobs, n_servers):
        sim = DatacenterSimulator(DatacenterConfig(n_servers=n_servers))
        return sim.run(jobs, FirstFitStrategy(2), QoSPolicy.unlimited())

    def test_merge_matches_manual_aggregation(self):
        left = self._run([job(1, 0.0, 2), job(2, 50.0, 1)], 2)
        right = self._run([job(3, 10.0, 3)], 3)
        merged = merge_results([left, right])
        assert sorted(o.job_id for o in merged.outcomes) == [1, 2, 3]
        assert merged.n_servers == 5
        assert merged.metrics.busy_energy_j == pytest.approx(
            left.metrics.busy_energy_j + right.metrics.busy_energy_j
        )
        assert merged.per_server_busy_j == (
            left.per_server_busy_j + right.per_server_busy_j
        )
        assert merged.metrics.max_queue_length == max(
            left.metrics.max_queue_length, right.metrics.max_queue_length
        )
        # Outcomes come back in global completion order.
        completions = [o.completion_time_s for o in merged.outcomes]
        assert completions == sorted(completions)

    def test_single_shard_is_identity_modulo_ordering(self):
        result = self._run([job(1, 0.0, 1), job(2, 5.0, 2)], 2)
        merged = merge_results([result])
        assert merged.metrics == result.metrics
        assert sorted(merged.outcomes, key=lambda o: o.job_id) == sorted(
            result.outcomes, key=lambda o: o.job_id
        )

    def test_mixed_strategies_rejected(self):
        a = self._run([job(1)], 1)
        b = self._run([job(2)], 1)
        object.__setattr__(b, "strategy_name", "other")
        with pytest.raises(SimulationError, match="different strategies"):
            merge_results([a, b])

    def test_empty_rejected(self):
        with pytest.raises(SimulationError, match="at least one"):
            merge_results([])
