"""Unit tests for interval chronicles."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.chronicle import Chronicle
from repro.sim.server import ServerRuntime
from repro.sim.vm import SimVM
from repro.testbed.benchmarks import WorkloadClass
from repro.testbed.spec import default_server


class TestChronicleLog:
    def test_records_and_iterates(self):
        chronicle = Chronicle("s0")
        chronicle.record(0.0, 10.0, (1, 0, 0), 150.0, ["a"])
        chronicle.record(10.0, 30.0, (2, 0, 0), 200.0, ["a", "b"])
        assert len(chronicle) == 2
        assert [i.duration_s for i in chronicle] == [10.0, 20.0]

    def test_zero_length_ignored(self):
        chronicle = Chronicle("s0")
        chronicle.record(5.0, 5.0, (1, 0, 0), 150.0, ["a"])
        assert len(chronicle) == 0

    def test_overlap_rejected(self):
        chronicle = Chronicle("s0")
        chronicle.record(0.0, 10.0, (1, 0, 0), 150.0, ["a"])
        with pytest.raises(SimulationError, match="overlaps"):
            chronicle.record(5.0, 15.0, (1, 0, 0), 150.0, ["a"])

    def test_backwards_interval_rejected(self):
        with pytest.raises(SimulationError):
            Chronicle("s0").record(10.0, 5.0, (1, 0, 0), 150.0, ["a"])

    def test_energy_arithmetic(self):
        chronicle = Chronicle("s0")
        chronicle.record(0.0, 10.0, (1, 0, 0), 100.0, ["a"])
        chronicle.record(10.0, 20.0, (0, 0, 0), 125.0, [])
        assert chronicle.busy_energy_j() == pytest.approx(1000.0)
        assert chronicle.idle_energy_j() == pytest.approx(1250.0)
        assert chronicle.total_energy_j() == pytest.approx(2250.0)

    def test_vm_views(self):
        chronicle = Chronicle("s0")
        chronicle.record(0.0, 10.0, (1, 0, 0), 100.0, ["a"])
        chronicle.record(10.0, 30.0, (2, 0, 0), 150.0, ["a", "b"])
        assert chronicle.vm_execution_time_s("a") == pytest.approx(30.0)
        assert chronicle.vm_execution_time_s("b") == pytest.approx(20.0)
        weights = chronicle.interval_weights("a")
        assert [w for w, _ in weights] == pytest.approx([1 / 3, 2 / 3])
        with pytest.raises(KeyError):
            chronicle.vm_execution_time_s("zzz")


class TestServerChronicleIntegration:
    def test_server_records_intervals(self):
        server = ServerRuntime("s0", default_server(), record_chronicle=True)
        assert server.chronicle is not None
        server.sync(0.0)
        vm = SimVM(vm_id="v0", job_id=1, workload_class=WorkloadClass.CPU, submit_time_s=0.0)
        server.add_vm(vm, 0.0)
        boundary = server.next_boundary(0.0)
        server.sync(boundary)
        server.sync(server.next_boundary(boundary))
        # Two stages -> two intervals (init + work).
        assert len(server.chronicle) == 2
        assert server.chronicle.vm_execution_time_s("v0") == pytest.approx(
            vm.benchmark.t_ref_s, rel=1e-6
        )

    def test_chronicle_energy_matches_accounting(self):
        server = ServerRuntime("s0", default_server(), record_chronicle=True)
        server.sync(0.0)
        for i in range(3):
            server.add_vm(
                SimVM(vm_id=f"v{i}", job_id=i, workload_class=WorkloadClass.CPU, submit_time_s=0.0),
                0.0,
            )
        server.sync(10_000.0)
        assert server.chronicle.total_energy_j() == pytest.approx(
            server.energy().total_j, rel=1e-9
        )

    def test_disabled_by_default(self):
        assert ServerRuntime("s0", default_server()).chronicle is None
