"""Unit tests for the Fig. 4 interval-weighted accounting.

The worked example's values are asserted exactly, since the paper
states them numerically.
"""

import pytest

from repro.sim.accounting import (
    IntervalWeights,
    fractions_from_durations,
    weighted_energy,
    weighted_execution_time,
)


class TestPaperWorkedExample:
    def test_exec_time_vm1(self):
        # ExecTime_VM1 = 0.7*1200 + 0.3*1800 = 1380 s
        assert weighted_execution_time([(0.7, 1200.0), (0.3, 1800.0)]) == pytest.approx(1380.0)

    def test_energy(self):
        # Energy = 0.35*15kJ + 0.15*20kJ + 0.5*12kJ = 14.25 kJ
        value = weighted_energy([(0.35, 15_000.0), (0.15, 20_000.0), (0.5, 12_000.0)])
        assert value == pytest.approx(14_250.0)


class TestIntervalWeights:
    def test_single_interval(self):
        assert IntervalWeights(((1.0, 42.0),)).weighted_value == 42.0

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            IntervalWeights(((0.5, 1.0), (0.4, 2.0)))

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            IntervalWeights(((-0.5, 1.0), (1.5, 2.0)))

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            IntervalWeights(((1.0, -1.0),))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            IntervalWeights(())

    def test_zero_weight_interval_contributes_nothing(self):
        value = IntervalWeights(((1.0, 10.0), (0.0, 1e9))).weighted_value
        assert value == 10.0


class TestFractionsFromDurations:
    def test_normalizes(self):
        assert fractions_from_durations([700.0, 300.0]) == [0.7, 0.3]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fractions_from_durations([])

    def test_zero_total_rejected(self):
        with pytest.raises(ValueError):
            fractions_from_durations([0.0, 0.0])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            fractions_from_durations([1.0, -1.0])

    def test_composes_with_weighting(self):
        weights = fractions_from_durations([840.0, 360.0])  # 0.7 / 0.3
        value = weighted_execution_time(list(zip(weights, [1200.0, 1800.0])))
        assert value == pytest.approx(1380.0)
