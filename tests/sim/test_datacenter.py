"""Unit tests for the datacenter simulation driver."""

import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.sim.datacenter import DatacenterConfig, DatacenterSimulator
from repro.strategies import FirstFitStrategy, ProactiveStrategy
from repro.strategies.base import AllocationStrategy
from repro.testbed.benchmarks import WorkloadClass
from repro.workloads.assignment import PreparedJob
from repro.workloads.qos import QoSPolicy


def job(job_id=1, submit=0.0, workload_class=WorkloadClass.CPU, n_vms=1, burst=0):
    return PreparedJob(
        job_id=job_id,
        submit_time_s=submit,
        workload_class=workload_class,
        n_vms=n_vms,
        burst_id=burst,
    )


@pytest.fixture
def sim():
    return DatacenterSimulator(DatacenterConfig(n_servers=3))


class TestConfig:
    def test_n_servers_positive(self):
        with pytest.raises(ConfigurationError):
            DatacenterConfig(n_servers=0)


class TestSingleJob:
    def test_solo_job_runs_at_reference_time(self, sim):
        result = sim.run([job()], FirstFitStrategy(1), QoSPolicy.unlimited())
        assert result.metrics.n_jobs == 1
        # Solo fftw VM: 600 s reference runtime.
        assert result.metrics.makespan_s == pytest.approx(600.0, rel=1e-6)

    def test_multi_vm_job_completes_when_last_vm_does(self, sim):
        result = sim.run([job(n_vms=4)], FirstFitStrategy(1), QoSPolicy.unlimited())
        outcome = result.outcomes[0]
        assert outcome.n_vms == 4
        # 4 co-located fftw VMs contend mildly.
        assert outcome.completion_time_s > 600.0

    def test_delayed_submission(self, sim):
        result = sim.run([job(submit=100.0)], FirstFitStrategy(1), QoSPolicy.unlimited())
        outcome = result.outcomes[0]
        assert outcome.submit_time_s == 100.0
        assert outcome.completion_time_s == pytest.approx(700.0, rel=1e-6)


class TestQueueing:
    def test_overload_queues_fcfs(self):
        # One server, one CPU slot per VM: 3 jobs of 4 VMs each must
        # serialize under FF (4 slots).
        sim = DatacenterSimulator(DatacenterConfig(n_servers=1))
        jobs = [job(job_id=i, n_vms=4) for i in range(1, 4)]
        result = sim.run(jobs, FirstFitStrategy(1), QoSPolicy.unlimited())
        completions = sorted(o.completion_time_s for o in result.outcomes)
        assert completions[1] > completions[0] * 1.8
        assert result.metrics.max_queue_length >= 2

    def test_unplaceable_job_fails_loudly(self):
        sim = DatacenterSimulator(DatacenterConfig(n_servers=1))

        class RejectAll(AllocationStrategy):
            name = "REJECT"

            def place(self, vms, servers):
                return None

        with pytest.raises(SimulationError, match="never"):
            sim.run([job()], RejectAll(), QoSPolicy.unlimited())

    def test_partial_placement_fails_loudly(self, sim):
        class Partial(AllocationStrategy):
            name = "PARTIAL"

            def place(self, vms, servers):
                return {vms[0].vm_id: servers[0].server_id}

        with pytest.raises(SimulationError, match="partial"):
            sim.run([job(n_vms=2)], Partial(), QoSPolicy.unlimited())


class TestEnergyAccounting:
    def test_energy_positive_and_split(self, sim):
        result = sim.run([job(n_vms=2)], FirstFitStrategy(1), QoSPolicy.unlimited())
        assert result.metrics.busy_energy_j > 0
        # Power-off-when-empty: no idle energy for a single job.
        assert result.metrics.idle_energy_j == 0.0

    def test_per_server_energy_matches_total(self, sim):
        jobs = [job(job_id=i, n_vms=2, submit=i * 50.0) for i in range(1, 5)]
        result = sim.run(jobs, FirstFitStrategy(2), QoSPolicy.unlimited())
        assert sum(result.per_server_busy_j) == pytest.approx(result.metrics.busy_energy_j)

    def test_consolidation_uses_fewer_servers(self, sim, database):
        # 6 single-VM jobs: FF (4 CPU slots) needs two servers, while
        # PA-1 can consolidate all six below the OSC grid bound.
        jobs = [job(job_id=i, n_vms=1, submit=0.0) for i in range(1, 7)]
        spread = sim.run(jobs, FirstFitStrategy(1), QoSPolicy.unlimited())
        packed = sim.run(jobs, ProactiveStrategy(database, alpha=1.0), QoSPolicy.unlimited())
        servers_spread = sum(1 for e in spread.per_server_busy_j if e > 0)
        servers_packed = sum(1 for e in packed.per_server_busy_j if e > 0)
        assert servers_packed < servers_spread
        assert packed.energy_j < spread.energy_j


class TestDeterminism:
    def test_same_inputs_same_outputs(self, sim):
        jobs = [job(job_id=i, submit=i * 10.0, n_vms=2) for i in range(1, 8)]
        a = sim.run(jobs, FirstFitStrategy(2), QoSPolicy.unlimited())
        b = sim.run(jobs, FirstFitStrategy(2), QoSPolicy.unlimited())
        assert a.metrics.makespan_s == b.metrics.makespan_s
        assert a.metrics.energy_j == b.metrics.energy_j


class TestSLAAccounting:
    def test_violations_counted(self, campaign):
        # One server, tight QoS, heavy backlog: later jobs must violate.
        sim = DatacenterSimulator(DatacenterConfig(n_servers=1))
        qos = QoSPolicy.from_optima(campaign.optima, factor=1.5)
        jobs = [job(job_id=i, n_vms=4) for i in range(1, 6)]
        result = sim.run(jobs, FirstFitStrategy(1), qos)
        assert result.metrics.sla_violations >= 3
