"""Unit tests for the simulated VM lifecycle."""

import math

import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.sim.vm import SimVM, VMState
from repro.testbed.benchmarks import WorkloadClass, get_benchmark


def make_vm(**kwargs):
    defaults = dict(
        vm_id="v0",
        job_id=1,
        workload_class=WorkloadClass.CPU,
        submit_time_s=0.0,
    )
    defaults.update(kwargs)
    return SimVM(**defaults)


class TestConstruction:
    def test_defaults_to_canonical_benchmark(self):
        vm = make_vm()
        assert vm.benchmark is not None
        assert vm.benchmark.name == "fftw"

    def test_explicit_benchmark(self):
        vm = make_vm(benchmark=get_benchmark("hpl"))
        assert vm.benchmark.name == "hpl"

    def test_stage_initialized(self):
        vm = make_vm()
        assert vm.stage == 0
        assert vm.remaining[0] == pytest.approx(vm.benchmark.serial_time_s)

    def test_no_serial_phase_skips_stage_zero(self):
        vm = make_vm(workload_class=WorkloadClass.MEM)
        assert vm.stage == 0  # sysbench has a small but nonzero init

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_vm(vm_id="")
        with pytest.raises(ConfigurationError):
            make_vm(submit_time_s=-1.0)


class TestLifecycle:
    def test_place_and_finish(self):
        vm = make_vm()
        vm.place("s0", 10.0)
        assert vm.state is VMState.RUNNING
        assert vm.server_id == "s0"
        vm.finish(100.0)
        assert vm.state is VMState.FINISHED
        assert vm.exec_time_s == pytest.approx(90.0)
        assert vm.response_time_s == pytest.approx(100.0)

    def test_double_place_rejected(self):
        vm = make_vm()
        vm.place("s0", 0.0)
        with pytest.raises(SimulationError):
            vm.place("s1", 1.0)

    def test_finish_before_place_rejected(self):
        with pytest.raises(SimulationError):
            make_vm().finish(1.0)

    def test_deadline_check(self):
        vm = make_vm(deadline_s=50.0)
        vm.place("s0", 0.0)
        vm.finish(60.0)
        assert vm.missed_deadline

    def test_no_deadline_never_missed(self):
        vm = make_vm()
        vm.place("s0", 0.0)
        vm.finish(1e9)
        assert not vm.missed_deadline


class TestProgress:
    def test_advance_through_stages(self):
        vm = make_vm()
        serial = vm.benchmark.serial_time_s
        work = vm.benchmark.work_time_s
        vm.advance(serial, 1.0)
        assert vm.stage == 1
        vm.advance(work, 1.0)
        assert vm.done

    def test_slowdown_scales_progress(self):
        vm = make_vm()
        vm.advance(vm.benchmark.serial_time_s * 2, 2.0)  # half rate
        assert vm.stage == 1

    def test_advance_after_done_rejected(self):
        # advance() is per-stage by design (rates differ across stages);
        # step through both stages explicitly.
        vm = make_vm()
        vm.advance(vm.benchmark.serial_time_s, 1.0)
        vm.advance(vm.benchmark.work_time_s, 1.0)
        assert vm.done
        with pytest.raises(SimulationError):
            vm.advance(1.0, 1.0)

    def test_active_view_reflects_stage(self):
        vm = make_vm()
        init_view = vm.active_view()
        assert not init_view.contended
        assert init_view.demand_scale == vm.benchmark.init_demand_scale
        vm.advance(vm.benchmark.serial_time_s, 1.0)
        work_view = vm.active_view()
        assert work_view.contended
        assert work_view.demand_scale == 1.0

    def test_placed_at_nan_until_placed(self):
        assert math.isnan(make_vm().placed_at_s)
