"""Tests for bounded (ring + spill) chronicles and spill replay."""

import pickle

import pytest

from repro.common.errors import SimulationError
from repro.sim.chronicle import Chronicle, ChronicleSpill, iter_spilled


def fill(chronicle, n, vms=("a",)):
    for k in range(n):
        mix = (1, 0, 0) if vms else (0, 0, 0)
        chronicle.record(10.0 * k, 10.0 * (k + 1), mix, 100.0 + k, list(vms))


class TestBoundedChronicle:
    def test_capacity_bounds_residency(self):
        chronicle = Chronicle("s0", capacity=3)
        fill(chronicle, 10)
        assert len(chronicle) == 3
        assert chronicle.n_recorded == 10
        assert chronicle.n_evicted == 7
        # The resident window is the newest three intervals.
        assert [i.t0_s for i in chronicle] == [70.0, 80.0, 90.0]

    def test_bad_capacity_rejected(self):
        with pytest.raises(SimulationError, match="capacity"):
            Chronicle("s0", capacity=0)

    def test_aggregates_survive_eviction(self):
        bounded = Chronicle("s0", capacity=2)
        unbounded = Chronicle("s0")
        fill(bounded, 8)
        fill(unbounded, 8)
        # Running aggregates fold in at record time in chronological
        # order -- the exact operand order of a naive sum over the full
        # log -- so equality here is exact, not approximate.
        assert bounded.total_energy_j() == unbounded.total_energy_j()
        assert bounded.busy_energy_j() == unbounded.busy_energy_j()
        assert bounded.idle_energy_j() == unbounded.idle_energy_j()
        assert unbounded.total_energy_j() == sum(
            i.energy_j for i in unbounded.iter_all()
        )

    def test_residency_replay_matches_running_map(self, tmp_path):
        # A bounded ring keeps no per-VM residency map (it would grow
        # with every VM the server ever hosted); queries replay the
        # spill and must return the unbounded map's exact float.
        unbounded = Chronicle("s0")
        fill(unbounded, 8)
        with ChronicleSpill(str(tmp_path / "spill.jsonl")) as spill:
            bounded = Chronicle("s0", capacity=2, spill=spill)
            fill(bounded, 8)
        assert bounded.vm_execution_time_s("a") == unbounded.vm_execution_time_s("a")
        with pytest.raises(KeyError, match="never appeared"):
            bounded.vm_execution_time_s("ghost")

    def test_residency_without_eviction_needs_no_spill(self):
        chronicle = Chronicle("s0", capacity=8)
        fill(chronicle, 3)
        assert chronicle.vm_execution_time_s("a") == pytest.approx(30.0)
        with pytest.raises(KeyError, match="never appeared"):
            chronicle.vm_execution_time_s("ghost")

    def test_eviction_without_spill_blocks_interval_audit(self):
        chronicle = Chronicle("s0", capacity=2)
        fill(chronicle, 5)
        with pytest.raises(SimulationError, match="evicted without a spill"):
            list(chronicle.iter_all())
        # Residency is an interval-level query on a bounded ring, so it
        # needs the spill too ...
        with pytest.raises(SimulationError, match="evicted without a spill"):
            chronicle.vm_execution_time_s("a")
        # ... while the energy aggregates stay available.
        assert chronicle.total_energy_j() > 0


class TestChronicleSpill:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "spill.jsonl")
        with ChronicleSpill(path) as spill:
            a = Chronicle("s0000", capacity=1, spill=spill)
            b = Chronicle("s0001", capacity=1, spill=spill)
            fill(a, 4)
            fill(b, 2, vms=())
            assert spill.n_written == 3 + 1
        rows = list(iter_spilled(path))
        assert [(server, i.t0_s) for server, i in rows] == [
            ("s0000", 0.0),
            ("s0000", 10.0),
            ("s0000", 20.0),
            ("s0001", 0.0),
        ]
        only_b = list(iter_spilled(path, "s0001"))
        assert len(only_b) == 1 and only_b[0][1].vm_ids == ()

    def test_iter_all_replays_spill_then_residents(self, tmp_path):
        path = str(tmp_path / "spill.jsonl")
        with ChronicleSpill(path) as spill:
            chronicle = Chronicle("s0", capacity=2, spill=spill)
            fill(chronicle, 6)
        replayed = list(chronicle.iter_all())
        assert [i.t0_s for i in replayed] == [0.0, 10.0, 20.0, 30.0, 40.0, 50.0]
        # Replay reconstructs the exact interval values.
        assert replayed[0].power_w == 100.0
        assert replayed[0].vm_ids == ("a",)
        assert chronicle.vm_intervals("a") == replayed

    def test_pickle_drops_writer_keeps_path(self, tmp_path):
        path = str(tmp_path / "spill.jsonl")
        with ChronicleSpill(path) as spill:
            chronicle = Chronicle("s0", capacity=1, spill=spill)
            fill(chronicle, 3)
        clone = pickle.loads(pickle.dumps(chronicle))
        assert clone.spill_path == path
        assert [i.t0_s for i in clone.iter_all()] == [0.0, 10.0, 20.0]
        assert clone.total_energy_j() == chronicle.total_energy_j()
