"""Unit tests for the incremental cluster indexes (repro.sim.index)."""

import json

import pytest

from repro.obs.runtime import Observability
from repro.sim.datacenter import DatacenterConfig, DatacenterSimulator
from repro.sim.index import ClusterIndex, ServerViews, _BLOCK
from repro.strategies.base import ServerView
from repro.strategies.firstfit import FirstFitStrategy
from repro.testbed.benchmarks import WorkloadClass
from repro.testbed.spec import default_server
from repro.workloads.assignment import PreparedJob
from repro.workloads.qos import QoSPolicy


def view(i, ncpu=0, nmem=0, nio=0, powered=True, cpu_slots=2, max_vms=12):
    return ServerView(
        server_id=f"s{i:04d}",
        mix=(ncpu, nmem, nio),
        max_vms=max_vms,
        cpu_slots=cpu_slots,
        powered_on=powered,
    )


class TestClusterIndex:
    def test_starts_empty_and_stale(self):
        index = ClusterIndex(4)
        assert (index.powered, index.active_vms, index.failed) == (0, 0, 0)
        assert index.members_stale
        assert index.dirty == set()

    def test_counters_track_mutations(self):
        index = ClusterIndex(3)
        index.on_power(0, True)
        index.on_host(0)
        index.on_host(0)
        index.on_power(1, True)
        index.on_host(1)
        assert (index.powered, index.active_vms) == (2, 3)
        index.on_unhost(0)
        index.on_power(1, False)
        assert (index.powered, index.active_vms) == (1, 2)
        assert index.dirty == {0, 1}

    def test_failure_flips_membership(self):
        index = ClusterIndex(2)
        index.members_stale = False
        index.on_failure(1, True)
        assert index.failed == 1
        assert index.members_stale
        index.members_stale = False
        index.on_failure(1, False)
        assert index.failed == 0
        assert index.members_stale

    def test_adopt_folds_existing_state(self):
        index = ClusterIndex(2)
        index.adopt(0, powered=True, n_vms=3, failed=False)
        index.adopt(1, powered=False, n_vms=0, failed=True)
        assert (index.powered, index.active_vms, index.failed) == (1, 3, 1)

    def test_audit_reports_drift(self):
        class Stub:
            def __init__(self, powered_on, n_vms, failed):
                self.powered_on = powered_on
                self.n_vms = n_vms
                self.failed = failed

        index = ClusterIndex(2)
        servers = [Stub(True, 2, False), Stub(False, 0, True)]
        assert index.audit(servers)  # all three counters are off
        index.adopt(0, powered=True, n_vms=2, failed=False)
        index.adopt(1, powered=False, n_vms=0, failed=True)
        assert index.audit(servers) == []
        index.on_host(0)  # drift injected: no VM actually appeared
        problems = index.audit(servers)
        assert len(problems) == 1 and "active_vms" in problems[0]


class TestServerViews:
    def test_free_candidates_skips_full_servers(self):
        views = ServerViews()
        views.append(view(0, ncpu=4))  # budget 4 under multiplex 2: full
        views.append(view(1, ncpu=1))
        views.append(view(2))
        got = list(views.free_candidates(2))
        assert [(v.server_id, slots) for v, slots in got] == [
            ("s0001", 3),
            ("s0002", 4),
        ]

    def test_refresh_propagates_to_every_level(self):
        views = ServerViews()
        views.append(view(0))
        views.append(view(1))
        assert [s for _, s in views.free_candidates(1)] == [2, 2]
        assert [s for _, s in views.free_candidates(3)] == [6, 6]
        views[0] = view(0, ncpu=2)
        views.refresh(0)
        assert [s for _, s in views.free_candidates(1)] == [2]
        assert [s for _, s in views.free_candidates(3)] == [4, 6]

    def test_reset_forgets_views_and_levels(self):
        views = ServerViews()
        views.append(view(0))
        list(views.free_candidates(1))
        views.reset()
        assert len(views) == 0
        assert views._levels == {}

    def test_block_skipping_preserves_list_order(self):
        # Spread candidates across several 64-view blocks, with the
        # first block entirely full, and check the iterator still
        # yields exactly the feasible views in list order.
        views = ServerViews()
        n = _BLOCK * 2 + 7
        for i in range(n):
            full = i < _BLOCK or i % 5 == 0
            views.append(view(i, ncpu=2 if full else 1, cpu_slots=1, max_vms=2))
        expected = [f"s{i:04d}" for i in range(n) if not (i < _BLOCK or i % 5 == 0)]
        got = [v.server_id for v, slots in views.free_candidates(2)]
        assert got == expected
        assert all(s == 1 for _, s in views.free_candidates(2))

    def test_refresh_keeps_block_occupancy_consistent(self):
        views = ServerViews()
        for i in range(3):
            views.append(view(i, cpu_slots=1, max_vms=2))
        assert len(list(views.free_candidates(1))) == 3
        # Fill server 1 completely, then drain it again.
        views[1] = view(1, ncpu=1, cpu_slots=1, max_vms=2)
        views.refresh(1)
        assert [v.server_id for v, _ in views.free_candidates(1)] == ["s0000", "s0002"]
        views[1] = view(1, cpu_slots=1, max_vms=2)
        views.refresh(1)
        assert len(list(views.free_candidates(1))) == 3


def _jobs():
    jobs = []
    classes = list(WorkloadClass)
    for i in range(9):
        jobs.append(
            PreparedJob(
                job_id=i + 1,
                submit_time_s=40.0 * i,
                workload_class=classes[i % len(classes)],
                n_vms=1 + (i % 3),
                burst_id=i // 3,
            )
        )
    return jobs


class TestIndexedRunEquivalence:
    def test_indexed_and_naive_snapshots_byte_identical(self):
        # The powered-servers gauge is fed from the O(1) counter on the
        # indexed path and a full scan on the naive path; the metrics
        # snapshots (values, min/max, update counts) must still match
        # byte for byte.
        snapshots = []
        for indexed in (False, True):
            obs = Observability()
            sim = DatacenterSimulator(
                DatacenterConfig(n_servers=4, indexed=indexed), obs=obs
            )
            result = sim.run(_jobs(), FirstFitStrategy(2), QoSPolicy.unlimited())
            snapshots.append(
                (result, json.dumps(obs.snapshot(), sort_keys=True))
            )
        (naive_result, naive_snap), (indexed_result, indexed_snap) = snapshots
        assert indexed_result == naive_result
        assert indexed_result.per_server_busy_j == naive_result.per_server_busy_j
        assert indexed_snap == naive_snap
