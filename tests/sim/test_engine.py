"""Unit tests for the event queue."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.engine import EventQueue


class TestEventQueue:
    def test_pops_in_time_order(self):
        q: EventQueue[str] = EventQueue()
        q.schedule(5.0, "b")
        q.schedule(1.0, "a")
        q.schedule(9.0, "c")
        assert [q.pop()[1] for _ in range(3)] == ["a", "b", "c"]

    def test_fifo_among_simultaneous(self):
        q: EventQueue[str] = EventQueue()
        q.schedule(1.0, "first")
        q.schedule(1.0, "second")
        assert q.pop()[1] == "first"
        assert q.pop()[1] == "second"

    def test_clock_advances(self):
        q: EventQueue[str] = EventQueue()
        q.schedule(3.0, "x")
        assert q.now == 0.0
        q.pop()
        assert q.now == 3.0

    def test_scheduling_in_past_rejected(self):
        q: EventQueue[str] = EventQueue()
        q.schedule(5.0, "x")
        q.pop()
        with pytest.raises(SimulationError):
            q.schedule(4.0, "y")

    def test_tiny_past_clamped(self):
        q: EventQueue[str] = EventQueue()
        q.schedule(5.0, "x")
        q.pop()
        q.schedule(5.0 - 1e-12, "y")  # float residue is tolerated
        assert q.pop()[0] >= 5.0

    def test_pop_empty_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_peek_time(self):
        q: EventQueue[str] = EventQueue()
        assert q.peek_time() is None
        q.schedule(2.0, "x")
        assert q.peek_time() == 2.0
        assert len(q) == 1  # peek does not consume

    def test_bool_and_len(self):
        q: EventQueue[str] = EventQueue()
        assert not q
        q.schedule(1.0, "x")
        assert q
        assert len(q) == 1

    def test_drain(self):
        q: EventQueue[str] = EventQueue()
        seen = []
        for t in (3.0, 1.0, 2.0):
            q.schedule(t, f"e{t}")
        count = q.drain(lambda t, p: seen.append((t, p)))
        assert count == 3
        assert seen == [(1.0, "e1.0"), (2.0, "e2.0"), (3.0, "e3.0")]

    def test_drain_handles_reentrancy(self):
        q: EventQueue[str] = EventQueue()
        seen = []

        def handler(t, payload):
            seen.append(payload)
            if payload == "a":
                q.schedule(t + 1.0, "b")

        q.schedule(1.0, "a")
        q.drain(handler)
        assert seen == ["a", "b"]
