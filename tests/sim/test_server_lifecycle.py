"""Additional ServerRuntime lifecycle edge cases (migration support)."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.server import ServerRuntime
from repro.sim.vm import SimVM
from repro.testbed.benchmarks import WorkloadClass
from repro.testbed.spec import default_server


def make_vm(vm_id="v0"):
    return SimVM(vm_id=vm_id, job_id=0, workload_class=WorkloadClass.CPU, submit_time_s=0.0)


@pytest.fixture
def server():
    runtime = ServerRuntime("s0", default_server())
    runtime.sync(0.0)
    return runtime


class TestDetach:
    def test_detach_returns_vm_with_state(self, server):
        vm = make_vm()
        server.add_vm(vm, 0.0)
        server.sync(100.0)
        detached = server.detach_vm(vm, 100.0)
        assert detached is vm
        assert server.n_vms == 0
        # Progress persisted: the init phase is partially consumed.
        assert vm.remaining[vm.stage] < vm.benchmark.t_ref_s

    def test_detach_unknown_vm_rejected(self, server):
        server.add_vm(make_vm("a"), 0.0)
        with pytest.raises(SimulationError, match="not hosted"):
            server.detach_vm(make_vm("b"), 0.0)

    def test_detach_without_sync_rejected(self, server):
        vm = make_vm()
        server.add_vm(vm, 0.0)
        with pytest.raises(SimulationError, match="without sync"):
            server.detach_vm(vm, 500.0)

    def test_detach_powers_off_empty_server(self, server):
        vm = make_vm()
        server.add_vm(vm, 0.0)
        server.sync(10.0)
        server.detach_vm(vm, 10.0)
        assert not server.powered_on


class TestAttach:
    def test_attach_preserves_progress(self, server):
        origin = ServerRuntime("origin", default_server())
        origin.sync(0.0)
        vm = make_vm()
        origin.add_vm(vm, 0.0)
        origin.sync(150.0)
        origin.detach_vm(vm, 150.0)

        server.sync(150.0)
        server.attach_vm(vm, 150.0)
        assert vm.server_id == "s0"
        assert server.n_vms == 1
        # Continue to completion on the new host.
        now = 150.0
        while server.next_boundary(now) is not None:
            now = server.next_boundary(now)
            server.sync(now)
        assert vm.done

    def test_attach_without_sync_rejected(self, server):
        with pytest.raises(SimulationError, match="without sync"):
            server.attach_vm(make_vm(), 500.0)

    def test_attach_powers_on(self, server):
        assert not server.powered_on
        vm = make_vm()
        vm.place("elsewhere", 0.0)  # already running elsewhere
        server.attach_vm(vm, 0.0)
        assert server.powered_on


class TestPowerOn:
    def test_power_on_idempotent(self, server):
        server.power_on(0.0)
        server.power_on(0.0)
        assert server.powered_on

    def test_power_on_accrues_idle_until_off(self):
        runtime = ServerRuntime("s0", default_server(), power_off_when_empty=False)
        runtime.power_on(0.0)
        runtime.sync(100.0)
        assert runtime.energy().idle_j == pytest.approx(
            100.0 * default_server().power.idle_w
        )
