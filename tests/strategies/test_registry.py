"""Unit tests for the strategy registry."""

import pytest

from repro.common.errors import ConfigurationError
from repro.strategies.registry import STRATEGY_BUILDERS, make_strategy, paper_strategies
from repro.strategies.firstfit import FirstFitStrategy
from repro.strategies.proactive import ProactiveStrategy


class TestMakeStrategy:
    @pytest.mark.parametrize("name", sorted(STRATEGY_BUILDERS))
    def test_builders_resolve(self, name):
        strategy = make_strategy(name)
        assert strategy.name == name

    def test_proactive_requires_database(self):
        with pytest.raises(ConfigurationError, match="database"):
            make_strategy("PA-0.5")

    def test_proactive_with_database(self, database):
        strategy = make_strategy("PA-0.5", database=database)
        assert isinstance(strategy, ProactiveStrategy)
        assert strategy.alpha == 0.5

    def test_random_fit(self):
        strategy = make_strategy("RAND-2", rng=1)
        assert strategy.name == "RAND-2"

    def test_bad_proactive_alpha(self, database):
        with pytest.raises(ConfigurationError):
            make_strategy("PA-x", database=database)

    def test_unknown_name_lists_known(self):
        with pytest.raises(ConfigurationError, match="FF"):
            make_strategy("MAGIC")


class TestPaperStrategies:
    def test_lineup(self, database):
        lineup = paper_strategies(database)
        assert [s.name for s in lineup] == ["FF", "FF-2", "FF-3", "PA-1", "PA-0", "PA-0.5"]

    def test_ff_multiplex_levels(self, database):
        lineup = paper_strategies(database)
        ffs = [s for s in lineup if isinstance(s, FirstFitStrategy)]
        assert [s.multiplex for s in ffs] == [1, 2, 3]
