"""Unit tests for the BEST-FIT / WORST-FIT / RANDOM-FIT baselines."""

import pytest

from repro.common.errors import ConfigurationError
from repro.strategies.base import ServerView, VMDescriptor
from repro.strategies.bestfit import BestFitStrategy
from repro.strategies.random_fit import RandomFitStrategy
from repro.strategies.worstfit import WorstFitStrategy
from repro.testbed.benchmarks import WorkloadClass


def view(server_id, mix=(0, 0, 0)):
    return ServerView(server_id=server_id, mix=mix, max_vms=24, cpu_slots=4, powered_on=True)


def one_vm():
    return [VMDescriptor("v0", WorkloadClass.CPU)]


class TestBestFit:
    def test_prefers_tightest_server(self):
        servers = [view("empty"), view("busy", mix=(3, 0, 0))]
        placement = BestFitStrategy(1).place(one_vm(), servers)
        assert placement["v0"] == "busy"

    def test_none_when_full(self):
        assert BestFitStrategy(1).place(one_vm(), [view("s", mix=(4, 0, 0))]) is None

    def test_name(self):
        assert BestFitStrategy(2).name == "BF-2"

    def test_invalid_multiplex(self):
        with pytest.raises(ConfigurationError):
            BestFitStrategy(0)


class TestWorstFit:
    def test_prefers_emptiest_server(self):
        servers = [view("busy", mix=(3, 0, 0)), view("empty")]
        placement = WorstFitStrategy(1).place(one_vm(), servers)
        assert placement["v0"] == "empty"

    def test_spreads_batch(self):
        servers = [view("a"), view("b")]
        batch = [VMDescriptor(f"v{i}", WorkloadClass.CPU) for i in range(2)]
        placement = WorstFitStrategy(1).place(batch, servers)
        assert set(placement.values()) == {"a", "b"}

    def test_name(self):
        assert WorstFitStrategy(1).name == "WF"


class TestRandomFit:
    def test_deterministic_with_seed(self):
        servers = [view(f"s{i}") for i in range(10)]
        batch = [VMDescriptor(f"v{i}", WorkloadClass.CPU) for i in range(5)]
        a = RandomFitStrategy(1, rng=42).place(batch, servers)
        b = RandomFitStrategy(1, rng=42).place(batch, servers)
        assert a == b

    def test_only_feasible_servers_used(self):
        servers = [view("full", mix=(4, 0, 0)), view("open")]
        placement = RandomFitStrategy(1, rng=1).place(one_vm(), servers)
        assert placement["v0"] == "open"

    def test_none_when_everything_full(self):
        assert RandomFitStrategy(1, rng=1).place(one_vm(), [view("s", mix=(4, 0, 0))]) is None

    def test_name(self):
        assert RandomFitStrategy(3).name == "RAND-3"
