"""Unit tests for the strategy interface primitives."""

import pytest

from repro.strategies.base import ServerView, VMDescriptor, spread_by_class
from repro.testbed.benchmarks import WorkloadClass


class TestServerView:
    def view(self, mix=(0, 0, 0), max_vms=24, cpu_slots=4):
        return ServerView(
            server_id="s0", mix=mix, max_vms=max_vms, cpu_slots=cpu_slots, powered_on=True
        )

    def test_n_vms(self):
        assert self.view(mix=(2, 1, 3)).n_vms == 6

    def test_free_slots_multiplex_one(self):
        assert self.view(mix=(3, 0, 0)).free_slots(1) == 1

    def test_free_slots_multiplex_three(self):
        assert self.view(mix=(3, 0, 0)).free_slots(3) == 9

    def test_free_slots_capped_by_max_vms(self):
        view = self.view(mix=(0, 0, 0), max_vms=5, cpu_slots=4)
        assert view.free_slots(3) == 5  # min(12, 5)

    def test_free_slots_never_negative(self):
        view = self.view(mix=(6, 0, 0))
        assert view.free_slots(1) == 0

    def test_mixed_classes_consume_slots(self):
        # FF's slot budget is class-blind: mem/io VMs consume slots too.
        assert self.view(mix=(1, 1, 1)).free_slots(1) == 1


class TestSpreadByClass:
    def test_counts(self):
        vms = [
            VMDescriptor("a", WorkloadClass.CPU),
            VMDescriptor("b", WorkloadClass.MEM),
            VMDescriptor("c", WorkloadClass.CPU),
            VMDescriptor("d", WorkloadClass.IO),
        ]
        assert spread_by_class(vms) == (2, 1, 1)

    def test_empty(self):
        assert spread_by_class([]) == (0, 0, 0)


class TestVMDescriptor:
    def test_defaults(self):
        vm = VMDescriptor("x", WorkloadClass.IO)
        assert vm.remaining_deadline_s is None

    def test_frozen(self):
        vm = VMDescriptor("x", WorkloadClass.IO)
        with pytest.raises(AttributeError):
            vm.vm_id = "y"  # type: ignore[misc]
