"""Unit tests for the FIRST-FIT family."""

import pytest

from repro.common.errors import ConfigurationError
from repro.strategies.base import ServerView, VMDescriptor
from repro.strategies.firstfit import FirstFitStrategy
from repro.testbed.benchmarks import WorkloadClass


def view(server_id="s0", mix=(0, 0, 0), max_vms=24, cpu_slots=4):
    return ServerView(
        server_id=server_id, mix=mix, max_vms=max_vms, cpu_slots=cpu_slots, powered_on=True
    )


def vms(n, workload_class=WorkloadClass.CPU):
    return [VMDescriptor(f"v{i}", workload_class) for i in range(n)]


class TestNames:
    def test_paper_naming(self):
        assert FirstFitStrategy(1).name == "FF"
        assert FirstFitStrategy(2).name == "FF-2"
        assert FirstFitStrategy(3).name == "FF-3"

    def test_invalid_multiplex(self):
        with pytest.raises(ConfigurationError):
            FirstFitStrategy(0)


class TestPlacement:
    def test_fills_first_server_first(self):
        placement = FirstFitStrategy(1).place(vms(2), [view("s0"), view("s1")])
        assert set(placement.values()) == {"s0"}

    def test_respects_cpu_slots(self):
        # FF: one VM per CPU; a 6-VM job overflows a 4-core server.
        placement = FirstFitStrategy(1).place(vms(6), [view("s0"), view("s1")])
        assert sum(1 for s in placement.values() if s == "s0") == 4
        assert sum(1 for s in placement.values() if s == "s1") == 2

    def test_multiplex_expands_slots(self):
        placement = FirstFitStrategy(2).place(vms(8), [view("s0"), view("s1")])
        assert set(placement.values()) == {"s0"}

    def test_multiplex_three(self):
        placement = FirstFitStrategy(3).place(vms(12), [view("s0")])
        assert placement is not None
        assert len(placement) == 12

    def test_accounts_existing_vms(self):
        placement = FirstFitStrategy(1).place(vms(2), [view("s0", mix=(3, 0, 0)), view("s1")])
        assert placement["v0"] == "s0"  # one free slot
        assert placement["v1"] == "s1"

    def test_returns_none_when_full(self):
        full = view("s0", mix=(4, 0, 0))
        assert FirstFitStrategy(1).place(vms(1), [full]) is None

    def test_max_vms_caps_budget(self):
        tight = view("s0", max_vms=2, cpu_slots=4)
        placement = FirstFitStrategy(3).place(vms(3), [tight])
        assert placement is None  # budget = min(12, 2)

    def test_class_blind(self):
        # FF ignores workload classes entirely: mem VMs pack like CPU.
        placement = FirstFitStrategy(1).place(vms(4, WorkloadClass.MEM), [view("s0")])
        assert set(placement.values()) == {"s0"}

    def test_all_vms_covered(self):
        batch = vms(5)
        placement = FirstFitStrategy(2).place(batch, [view("s0"), view("s1")])
        assert set(placement) == {vm.vm_id for vm in batch}
