"""Unit tests for the PROACTIVE strategy wrapper."""

import pytest

from repro.strategies.base import ServerView, VMDescriptor
from repro.strategies.proactive import ProactiveStrategy
from repro.testbed.benchmarks import WorkloadClass


def view(server_id="s0", mix=(0, 0, 0), max_vms=24):
    return ServerView(server_id=server_id, mix=mix, max_vms=max_vms, cpu_slots=4, powered_on=True)


def vms(n, workload_class=WorkloadClass.CPU, deadline=None):
    return [VMDescriptor(f"v{i}", workload_class, deadline) for i in range(n)]


class TestNaming:
    def test_paper_names(self, database):
        assert ProactiveStrategy(database, alpha=1.0).name == "PA-1"
        assert ProactiveStrategy(database, alpha=0.0).name == "PA-0"
        assert ProactiveStrategy(database, alpha=0.5).name == "PA-0.5"


class TestPlacement:
    def test_places_all_vms(self, database):
        placement = ProactiveStrategy(database).place(vms(4), [view("s0"), view("s1")])
        assert placement is not None
        assert len(placement) == 4

    def test_respects_grid_bounds(self, database):
        osm = database.grid_bounds[1]
        # More MEM VMs than one server's bound: must use both servers.
        placement = ProactiveStrategy(database).place(
            vms(osm + 1, WorkloadClass.MEM), [view("s0"), view("s1")]
        )
        assert len(set(placement.values())) == 2

    def test_none_when_grid_exhausted(self, database):
        osc, osm, osi = database.grid_bounds
        full = view("s0", mix=(osc, osm, osi))
        assert ProactiveStrategy(database).place(vms(1), [full]) is None


class TestQoSAdmission:
    def test_waits_when_deadline_cannot_be_met_now(self, database):
        tc = database.reference_time(WorkloadClass.CPU)
        osc = database.grid_bounds[0]
        # Both servers loaded enough that adding 2 VMs breaks a modest
        # deadline, but the deadline itself is feasible on an idle box.
        busy = [view("s0", mix=(osc - 1, 0, 0)), view("s1", mix=(osc - 1, 0, 0))]
        strategy = ProactiveStrategy(database, alpha=0.0)
        placement = strategy.place(vms(2, deadline=tc * 1.05), busy)
        assert placement is None  # wait for drain

    def test_places_when_deadline_hopeless(self, database):
        tc = database.reference_time(WorkloadClass.CPU)
        strategy = ProactiveStrategy(database, alpha=0.0)
        # Remaining budget below the solo runtime: can never comply;
        # best-effort placement instead of waiting forever.
        placement = strategy.place(vms(2, deadline=tc * 0.5), [view("s0")])
        assert placement is not None

    def test_no_qos_mode_always_places(self, database):
        strategy = ProactiveStrategy(database, use_qos=False)
        placement = strategy.place(vms(2, deadline=0.001), [view("s0")])
        assert placement is not None

    def test_compliant_placement_taken_when_available(self, database):
        tc = database.reference_time(WorkloadClass.CPU)
        strategy = ProactiveStrategy(database, alpha=0.0)
        placement = strategy.place(vms(2, deadline=tc * 3), [view("s0")])
        assert placement is not None


class TestGoalBehaviour:
    def test_energy_goal_consolidates_batch(self, database):
        placement = ProactiveStrategy(database, alpha=1.0).place(
            vms(4), [view(f"s{i}") for i in range(4)]
        )
        assert len(set(placement.values())) == 1

    def test_accessors(self, database):
        strategy = ProactiveStrategy(database, alpha=0.5)
        assert strategy.alpha == 0.5
        assert strategy.database is database


class TestSearchTelemetry:
    def test_last_plan_carries_search_provenance(self, database):
        strategy = ProactiveStrategy(database)
        assert strategy.last_plan is None
        strategy.place(vms(3), [view("s0"), view("s1")])
        assert strategy.last_plan is not None
        provenance = strategy.last_plan.search_provenance
        assert provenance is not None
        assert provenance.partitions_enumerated == 3

    def test_metrics_counters_accumulate(self, database):
        strategy = ProactiveStrategy(database)
        strategy.place(vms(2), [view("s0")])
        strategy.place(vms(3), [view("s0"), view("s1")])
        name = strategy.name
        registry = strategy.metrics
        assert registry.counter("strategy.plans", strategy=name).value == 2
        assert (
            registry.counter("strategy.partitions_enumerated", strategy=name).value
            == 2 + 3  # p(2) + p(3)
        )
        assert registry.counter("strategy.grid_hits", strategy=name).value > 0

    def test_instances_do_not_share_counters(self, database):
        first = ProactiveStrategy(database)
        second = ProactiveStrategy(database)
        first.place(vms(2), [view("s0")])
        assert second.metrics.counter("strategy.plans", strategy=second.name).value == 0

    def test_last_provenance_deprecated_but_working(self, database):
        strategy = ProactiveStrategy(database)
        with pytest.warns(DeprecationWarning, match="last_provenance"):
            assert strategy.last_provenance is None
        strategy.place(vms(3), [view("s0"), view("s1")])
        with pytest.warns(DeprecationWarning):
            provenance = strategy.last_provenance
        assert provenance is not None
        assert provenance.partitions_enumerated == 3

    def test_search_totals_deprecated_but_working(self, database):
        strategy = ProactiveStrategy(database)
        strategy.place(vms(2), [view("s0")])
        with pytest.warns(DeprecationWarning, match="search_totals"):
            totals = strategy.search_totals
        assert totals["plans"] == 1
        assert totals["grid_hits"] > 0

    def test_search_totals_returns_copy(self, database):
        strategy = ProactiveStrategy(database)
        with pytest.warns(DeprecationWarning):
            strategy.search_totals["plans"] = 99
        with pytest.warns(DeprecationWarning):
            assert strategy.search_totals["plans"] == 0
