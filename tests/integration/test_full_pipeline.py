"""Integration tests: the complete paper pipeline end to end.

profiling -> campaign -> CSV database on disk -> allocator ->
trace generation -> cleaning -> assignment -> simulation -> metrics.
"""

import pytest

from repro.campaign.platformrunner import run_campaign
from repro.core.allocator import ProactiveAllocator, ServerState, VMRequest
from repro.core.model import ModelDatabase
from repro.profiling.profiler import ApplicationProfiler
from repro.sim.datacenter import DatacenterConfig, DatacenterSimulator
from repro.strategies.proactive import ProactiveStrategy
from repro.strategies.firstfit import FirstFitStrategy
from repro.testbed.benchmarks import BENCHMARKS, canonical_benchmark
from repro.workloads.assignment import assign_profiles_and_vms, truncate_to_vm_budget
from repro.workloads.cleaning import clean_trace
from repro.workloads.qos import QoSPolicy
from repro.workloads.synthetic import EGEETraceConfig, generate_egee_like_trace


class TestFullPipeline:
    def test_profile_campaign_allocate_simulate(self, tmp_path):
        # 1. Profile the benchmark suite; classes must match the suite's
        #    declared labels (the allocator consumes these).
        profiler = ApplicationProfiler()
        for spec in BENCHMARKS.values():
            report = profiler.profile(spec)
            assert report.workload_class is spec.workload_class

        # 2. Run the campaign and persist the model as the paper does.
        campaign = run_campaign()
        db_path, aux_path = campaign.save(tmp_path)

        # 3. Reload from the plain-text files.
        database = ModelDatabase.from_files(db_path, aux_path)
        assert len(database) == len(campaign.records)

        # 4. Allocate a mixed batch through the reloaded model.
        requests = [
            VMRequest("c0", "cpu"),
            VMRequest("c1", "cpu"),
            VMRequest("m0", "mem"),
            VMRequest("i0", "io"),
        ]
        plan = ProactiveAllocator(database, alpha=0.5).allocate(
            requests, [ServerState("s0"), ServerState("s1")]
        )
        assert plan.n_vms == 4

        # 5. Generate, clean and complete a small trace.
        raw = generate_egee_like_trace(EGEETraceConfig(n_jobs=300), rng=11)
        cleaned, report = clean_trace(raw)
        assert report.removed > 0
        jobs = truncate_to_vm_budget(assign_profiles_and_vms(cleaned, rng=12), 400)

        # 6. Simulate with both a baseline and the proactive strategy
        #    on a lightly loaded cluster, where consolidation's energy
        #    advantage is unambiguous.
        sim = DatacenterSimulator(DatacenterConfig(n_servers=10))
        qos = QoSPolicy.from_optima(campaign.optima, factor=4.0)
        ff = sim.run(jobs, FirstFitStrategy(1), qos)
        pa = sim.run(jobs, ProactiveStrategy(database, alpha=1.0), qos)

        assert ff.metrics.n_jobs == pa.metrics.n_jobs == len(jobs)
        # The headline direction: proactive saves energy.
        assert pa.metrics.energy_j < ff.metrics.energy_j

    def test_database_drives_consistent_estimates(self, database):
        # The simulator's physics and the DB estimates must agree on
        # solo runs (the DB was built from the same physics).
        for workload_class in ("cpu", "mem", "io"):
            benchmark = canonical_benchmark(workload_class)
            key = {
                "cpu": (1, 0, 0),
                "mem": (0, 1, 0),
                "io": (0, 0, 1),
            }[workload_class]
            estimate = database.estimate(key)
            assert estimate.time_s == pytest.approx(benchmark.t_ref_s, rel=1e-6)
