"""Integration: database records vs simulator replays agree."""

import pytest

from repro.experiments.crosscheck import crosscheck_database


class TestCrossCheck:
    def test_sampled_mixes_agree(self, database):
        sample = [r.key for r in database.records[:: max(1, len(database) // 40)]]
        report = crosscheck_database(database, sample=sample)
        # Two independent code paths over the same physics: tight
        # agreement expected (float-integration noise only).
        assert report.max_time_deviation < 1e-6, report.summary()
        assert report.max_energy_deviation < 1e-6, report.summary()

    def test_extreme_corners_agree(self, database):
        osc, osm, osi = database.grid_bounds
        corners = [(osc, 0, 0), (0, osm, 0), (0, 0, osi), (osc, osm, osi), (1, 1, 1)]
        report = crosscheck_database(database, sample=corners)
        assert report.max_time_deviation < 1e-6
        assert report.max_energy_deviation < 1e-6

    def test_report_summary(self, database):
        report = crosscheck_database(database, sample=[(1, 0, 0)])
        assert "1 mixes" in report.summary()
        assert len(report.rows) == 1
