"""Smoke tests: every example script runs to completion.

The fast examples run as subprocesses exactly the way a user would run
them; the two slow ones (full trace replay, heterogeneous cloud with
its two campaigns) are exercised at reduced scale elsewhere
(tests/experiments, tests/ext) and only checked for importability
here.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *args, timeout=240):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestFastExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "alpha=1.0" in out and "QoS satisfied: True" in out

    def test_profile_applications(self):
        out = run_example("profile_applications.py", "fftw", "b_eff_io")
        assert "class=cpu" in out and "class=io" in out

    def test_campaign_pipeline(self, tmp_path):
        out = run_example("campaign_pipeline.py", str(tmp_path))
        assert "Table I" in out
        assert (tmp_path / "model_database.csv").exists()

    def test_whatif_frontier(self):
        out = run_example("whatif_frontier.py")
        assert "Pareto" in out

    def test_migration_rescue(self):
        out = run_example("migration_rescue.py")
        assert "reactive migrations" in out
        assert "proactive placement" in out


class TestSlowExamplesAtLeastParse:
    @pytest.mark.parametrize(
        "name",
        ["trace_replay.py", "thermal_datacenter.py", "heterogeneous_cloud.py"],
    )
    def test_compiles(self, name):
        source = (EXAMPLES / name).read_text()
        compile(source, name, "exec")
