"""Integration: the simulator's outcomes equal the Fig. 4 arithmetic
recomputed from recorded interval chronicles.

This is the reproduction's strongest internal consistency check: the
event-driven simulation and the paper's weighted-interval accounting
are two views of the same quantity, and they must agree exactly.
"""

import pytest

from repro.sim.server import ServerRuntime
from repro.sim.vm import SimVM
from repro.testbed.benchmarks import WorkloadClass
from repro.testbed.spec import default_server


def drive(server, vms_with_offsets, horizon=1e6):
    """Minimal event loop: add VMs at their offsets, sync at boundaries."""
    events = sorted({offset for _, offset in vms_with_offsets})
    now = 0.0
    pending = sorted(vms_with_offsets, key=lambda p: p[1])
    finished = []
    for _ in range(100_000):
        next_arrival = pending[0][1] if pending else None
        boundary = server.next_boundary(now)
        candidates = [c for c in (next_arrival, boundary) if c is not None]
        if not candidates:
            break
        now = min(candidates)
        for vm in server.sync(now):
            vm.finish(now)
            finished.append(vm)
        while pending and pending[0][1] <= now + 1e-9:
            vm, _ = pending.pop(0)
            server.add_vm(vm, now)
    return finished, now


def make_vm(vm_id, workload_class):
    return SimVM(vm_id=vm_id, job_id=0, workload_class=workload_class, submit_time_s=0.0)


class TestChronicleConsistency:
    @pytest.fixture
    def run(self):
        server = ServerRuntime("s0", default_server(), record_chronicle=True)
        server.sync(0.0)
        batch = [
            (make_vm("c0", WorkloadClass.CPU), 0.0),
            (make_vm("c1", WorkloadClass.CPU), 0.0),
            (make_vm("m0", WorkloadClass.MEM), 120.0),
            (make_vm("i0", WorkloadClass.IO), 300.0),
        ]
        finished, end = drive(server, batch)
        return server, {vm.vm_id: vm for vm in finished}, end

    def test_all_vms_finish(self, run):
        _, finished, _ = run
        assert set(finished) == {"c0", "c1", "m0", "i0"}

    def test_exec_times_match_interval_sums(self, run):
        server, finished, _ = run
        for vm_id, vm in finished.items():
            recomputed = server.chronicle.vm_execution_time_s(vm_id)
            assert recomputed == pytest.approx(vm.exec_time_s, rel=1e-9), vm_id

    def test_interval_weights_are_a_partition(self, run):
        server, finished, _ = run
        for vm_id in finished:
            weights = server.chronicle.interval_weights(vm_id)
            assert sum(w for w, _ in weights) == pytest.approx(1.0)
            # Mix changes between consecutive intervals (that is what
            # defines an interval boundary)... except across another
            # VM's stage transition, where counts stay equal; at least
            # the sequence must contain the VM itself throughout.
            for _, mix in weights:
                assert sum(mix) >= 1

    def test_energy_matches_accounting(self, run):
        server, _, _ = run
        assert server.chronicle.total_energy_j() == pytest.approx(
            server.energy().total_j, rel=1e-9
        )

    def test_worked_example_shape(self, run):
        """A VM spanning several allocations: its execution time equals
        the weighted average of full-span estimates, i.e. the sum of
        interval durations -- the Fig. 4 formula with measured weights."""
        server, finished, _ = run
        vm = finished["c0"]
        weights = server.chronicle.interval_weights("c0")
        span = vm.exec_time_s
        weighted = sum(w * span for w, _ in weights)
        assert weighted == pytest.approx(span)
        assert len(weights) >= 3  # several distinct allocations seen
