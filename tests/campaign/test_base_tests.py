"""Unit tests for the base-test sweeps."""

import pytest

from repro.campaign.base_tests import run_base_tests
from repro.common.errors import ConfigurationError
from repro.testbed.benchmarks import WORKLOAD_CLASSES, WorkloadClass
from repro.testbed.meter import PowerMeter
from repro.testbed.spec import default_server


@pytest.fixture(scope="module")
def small_curves():
    return run_base_tests(default_server(), max_vms=4)


class TestRunBaseTests:
    def test_all_classes_swept(self, small_curves):
        assert set(small_curves) == set(WORKLOAD_CLASSES)

    def test_curve_covers_range(self, small_curves):
        for curve in small_curves.values():
            assert [p.n_vms for p in curve] == [1, 2, 3, 4]

    def test_keys_are_single_class(self, small_curves):
        for workload_class, curve in small_curves.items():
            for point in curve:
                key = point.record.key
                assert sum(1 for v in key if v > 0) == 1
                assert sum(key) == point.n_vms

    def test_avg_time_definition(self, small_curves):
        for curve in small_curves.values():
            for point in curve:
                assert point.avg_time_vm_s == pytest.approx(
                    point.record.time_s / point.n_vms
                )

    def test_progress_callback_invoked(self):
        calls = []
        run_base_tests(
            default_server(),
            max_vms=2,
            classes=[WorkloadClass.CPU],
            progress=lambda c, n: calls.append((c, n)),
        )
        assert calls == [(WorkloadClass.CPU, 1), (WorkloadClass.CPU, 2)]

    def test_meter_noise_changes_energy(self):
        exact = run_base_tests(default_server(), max_vms=1, classes=[WorkloadClass.CPU])
        noisy = run_base_tests(
            default_server(),
            max_vms=1,
            classes=[WorkloadClass.CPU],
            meter=PowerMeter(accuracy=0.015, rng=3),
        )
        e_exact = exact[WorkloadClass.CPU][0].record.energy_j
        e_noisy = noisy[WorkloadClass.CPU][0].record.energy_j
        assert e_noisy != e_exact
        assert e_noisy == pytest.approx(e_exact, rel=0.02)

    def test_zero_max_vms_rejected(self):
        with pytest.raises(ConfigurationError):
            run_base_tests(default_server(), max_vms=0)

    def test_beyond_server_limit_rejected(self):
        server = default_server()
        with pytest.raises(ConfigurationError):
            run_base_tests(server, max_vms=server.max_vms + 1)
