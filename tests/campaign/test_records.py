"""Unit tests for Table II records."""

import pytest

from repro.campaign.records import (
    BenchmarkRecord,
    key_for_classes,
    key_of_counts,
    total_vms,
)
from repro.common.errors import ConfigurationError
from repro.testbed.benchmarks import WorkloadClass


class TestKeys:
    def test_total_vms(self):
        assert total_vms((2, 3, 4)) == 9

    def test_key_of_counts_valid(self):
        assert key_of_counts(1, 0, 2) == (1, 0, 2)

    def test_key_of_counts_rejects_empty(self):
        with pytest.raises(ValueError):
            key_of_counts(0, 0, 0)

    def test_key_of_counts_rejects_negative(self):
        with pytest.raises(ValueError):
            key_of_counts(-1, 0, 1)

    def test_key_of_counts_rejects_bool(self):
        with pytest.raises(TypeError):
            key_of_counts(True, 0, 1)

    def test_key_for_classes(self):
        classes = [WorkloadClass.CPU, WorkloadClass.CPU, WorkloadClass.IO]
        assert key_for_classes(classes) == (2, 0, 1)


class TestBenchmarkRecord:
    def test_from_measurement_derives_columns(self):
        record = BenchmarkRecord.from_measurement((2, 1, 1), 400.0, 80_000.0, 220.0)
        assert record.avg_time_vm_s == pytest.approx(100.0)
        assert record.edp == pytest.approx(80_000.0 * 400.0)
        assert record.n_vms == 4

    def test_avg_power(self):
        record = BenchmarkRecord.from_measurement((1, 0, 0), 100.0, 20_000.0, 250.0)
        assert record.avg_power_w == pytest.approx(200.0)

    def test_key_property(self):
        record = BenchmarkRecord.from_measurement((3, 2, 1), 10.0, 10.0, 10.0)
        assert record.key == (3, 2, 1)

    def test_ordering_by_key(self):
        a = BenchmarkRecord.from_measurement((1, 0, 0), 10.0, 10.0, 10.0)
        b = BenchmarkRecord.from_measurement((0, 1, 0), 99.0, 99.0, 99.0)
        assert b < a  # (0,1,0) < (1,0,0)

    def test_negative_values_rejected(self):
        with pytest.raises(ConfigurationError):
            BenchmarkRecord(
                ncpu=1, nmem=0, nio=0,
                time_s=-5.0, avg_time_vm_s=1.0, energy_j=1.0, max_power_w=1.0, edp=1.0,
            )

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            BenchmarkRecord.from_measurement((0, 0, 0), 1.0, 1.0, 1.0)
