"""Unit tests for Table I extraction."""

import pytest

from repro.campaign.base_tests import BaseTestPoint
from repro.campaign.optimal import ClassOptima, OptimalScenarios, extract_optima
from repro.campaign.records import BenchmarkRecord
from repro.common.errors import ConfigurationError
from repro.testbed.benchmarks import WORKLOAD_CLASSES, WorkloadClass


def point(workload_class, n, time_s, energy_j):
    key = {
        WorkloadClass.CPU: (n, 0, 0),
        WorkloadClass.MEM: (0, n, 0),
        WorkloadClass.IO: (0, 0, n),
    }[workload_class]
    record = BenchmarkRecord.from_measurement(key, time_s, energy_j, 200.0)
    return BaseTestPoint(workload_class, n, record)


def synthetic_curves():
    """CPU: time-optimal at 3, energy-optimal at 2."""
    curves = {}
    cpu = [
        point(WorkloadClass.CPU, 1, 100.0, 15_000.0),
        point(WorkloadClass.CPU, 2, 140.0, 16_000.0),  # E/VM = 8000 (min)
        point(WorkloadClass.CPU, 3, 150.0, 27_000.0),  # avg = 50 (min)
        point(WorkloadClass.CPU, 4, 400.0, 60_000.0),
    ]
    curves[WorkloadClass.CPU] = cpu
    for workload_class in (WorkloadClass.MEM, WorkloadClass.IO):
        curves[workload_class] = [
            point(workload_class, 1, 100.0, 10_000.0),
            point(workload_class, 2, 150.0, 18_000.0),
        ]
    return curves


class TestExtractOptima:
    def test_osp_minimizes_avg_time(self):
        optima = extract_optima(synthetic_curves())
        assert optima.optima(WorkloadClass.CPU).osp == 3

    def test_ose_minimizes_energy_per_vm(self):
        optima = extract_optima(synthetic_curves())
        assert optima.optima(WorkloadClass.CPU).ose == 2

    def test_os_bound_is_max(self):
        optima = extract_optima(synthetic_curves())
        assert optima.osc == 3

    def test_reference_time_is_solo_run(self):
        optima = extract_optima(synthetic_curves())
        assert optima.tc == 100.0

    def test_tie_breaks_to_smaller_n(self):
        curves = synthetic_curves()
        # Make n=4 tie n=3's avg time: 4 * 50 = 200.
        curves[WorkloadClass.CPU][3] = point(WorkloadClass.CPU, 4, 200.0, 60_000.0)
        optima = extract_optima(curves)
        assert optima.optima(WorkloadClass.CPU).osp == 3

    def test_empty_curve_rejected(self):
        curves = synthetic_curves()
        curves[WorkloadClass.MEM] = []
        with pytest.raises(ConfigurationError):
            extract_optima(curves)

    def test_missing_n1_rejected(self):
        curves = synthetic_curves()
        curves[WorkloadClass.IO] = [point(WorkloadClass.IO, 2, 100.0, 100.0)]
        with pytest.raises(ConfigurationError, match="n=1"):
            extract_optima(curves)

    def test_grid_bounds_tuple(self):
        optima = extract_optima(synthetic_curves())
        assert optima.grid_bounds == (optima.osc, optima.osm, optima.osi)

    def test_table_rows_order(self):
        optima = extract_optima(synthetic_curves())
        rows = optima.table_rows()
        assert [r[0] for r in rows] == ["cpu", "mem", "io"]


class TestRealCampaignOptima:
    def test_paper_fftw_optimum(self, campaign):
        # Fig. 2: FFTW's performance-optimal scenario is 9 VMs.
        assert campaign.optima.optima(WorkloadClass.CPU).osp == 9

    def test_reference_times_match_benchmarks(self, campaign):
        assert campaign.optima.tc == pytest.approx(600.0, rel=1e-6)
        assert campaign.optima.tm == pytest.approx(700.0, rel=1e-6)
        assert campaign.optima.ti == pytest.approx(800.0, rel=1e-6)

    def test_all_classes_present(self, campaign):
        for workload_class in WORKLOAD_CLASSES:
            entry = campaign.optima.optima(workload_class)
            assert entry.osp >= 1
            assert entry.ose >= 1


class TestClassOptimaValidation:
    def test_invalid_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            ClassOptima(WorkloadClass.CPU, osp=0, ose=1, t_single_s=10.0)

    def test_invalid_time_rejected(self):
        with pytest.raises(ConfigurationError):
            ClassOptima(WorkloadClass.CPU, osp=1, ose=1, t_single_s=0.0)

    def test_missing_class_rejected(self):
        entry = ClassOptima(WorkloadClass.CPU, osp=1, ose=1, t_single_s=10.0)
        with pytest.raises(ConfigurationError):
            OptimalScenarios(per_class={WorkloadClass.CPU: entry})
