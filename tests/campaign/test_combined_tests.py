"""Unit tests for the combined-test grid."""

import pytest

from repro.campaign.combined_tests import (
    build_mix_instances,
    combination_grid,
    expected_combination_count,
    run_combined_tests,
)
from repro.campaign.optimal import ClassOptima, OptimalScenarios
from repro.common.errors import ConfigurationError
from repro.testbed.benchmarks import WorkloadClass
from repro.testbed.spec import default_server


def optima(osc=2, osm=2, osi=2):
    def entry(workload_class, bound):
        return ClassOptima(workload_class, osp=bound, ose=1, t_single_s=100.0)

    return OptimalScenarios(
        per_class={
            WorkloadClass.CPU: entry(WorkloadClass.CPU, osc),
            WorkloadClass.MEM: entry(WorkloadClass.MEM, osm),
            WorkloadClass.IO: entry(WorkloadClass.IO, osi),
        }
    )


class TestCountFormula:
    @pytest.mark.parametrize(
        "osc,osm,osi",
        [(1, 1, 1), (2, 2, 2), (9, 7, 7), (3, 1, 2), (0, 0, 0)],
    )
    def test_grid_matches_paper_formula(self, osc, osm, osi):
        keys = list(combination_grid(osc, osm, osi))
        assert len(keys) == expected_combination_count(osc, osm, osi)

    def test_formula_value(self):
        # The paper's expression evaluated by hand for (2,2,2):
        # 3*3*3 - (1+2+2+2) = 27 - 7 = 20.
        assert expected_combination_count(2, 2, 2) == 20

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            expected_combination_count(-1, 0, 0)


class TestGridContents:
    def test_excludes_base_and_empty(self):
        keys = set(combination_grid(2, 2, 2))
        assert (0, 0, 0) not in keys
        assert (1, 0, 0) not in keys  # base test
        assert (0, 2, 0) not in keys  # base test
        assert (1, 1, 0) in keys
        assert (2, 2, 2) in keys

    def test_sorted_ascending(self):
        keys = list(combination_grid(3, 2, 2))
        assert keys == sorted(keys)


class TestBuildMixInstances:
    def test_counts_match_key(self):
        instances = build_mix_instances((2, 1, 1))
        assert len(instances) == 4
        names = [vm.benchmark.name for vm in instances]
        assert names.count("fftw") == 2
        assert names.count("sysbench") == 1
        assert names.count("b_eff_io") == 1

    def test_unique_ids(self):
        instances = build_mix_instances((3, 2, 1))
        ids = [vm.vm_id for vm in instances]
        assert len(set(ids)) == len(ids)


class TestRunCombinedTests:
    def test_produces_expected_records(self):
        records = run_combined_tests(default_server(), optima(1, 1, 1))
        assert len(records) == expected_combination_count(1, 1, 1)
        keys = [r.key for r in records]
        assert keys == sorted(keys)

    def test_progress_called_per_mix(self):
        seen = []
        run_combined_tests(default_server(), optima(1, 1, 1), progress=seen.append)
        assert len(seen) == expected_combination_count(1, 1, 1)

    def test_oversized_corner_rejected(self):
        server = default_server()
        big = (server.max_vms, server.max_vms, server.max_vms)
        with pytest.raises(ConfigurationError, match="corner"):
            run_combined_tests(server, optima(*big))
