"""Unit tests for the CSV database and auxiliary file."""

import pytest

from repro.campaign.csvdb import (
    parse_records_text,
    read_auxiliary_file,
    read_records_csv,
    records_to_rows,
    write_auxiliary_file,
    write_records_csv,
)
from repro.campaign.optimal import ClassOptima, OptimalScenarios
from repro.campaign.records import BenchmarkRecord
from repro.common.errors import TraceFormatError
from repro.testbed.benchmarks import WorkloadClass


def record(key, time_s=100.0):
    return BenchmarkRecord.from_measurement(key, time_s, 20_000.0, 230.0)


def sample_optima():
    return OptimalScenarios(
        per_class={
            WorkloadClass.CPU: ClassOptima(WorkloadClass.CPU, 9, 5, 600.0),
            WorkloadClass.MEM: ClassOptima(WorkloadClass.MEM, 3, 2, 700.0),
            WorkloadClass.IO: ClassOptima(WorkloadClass.IO, 2, 2, 800.0),
        }
    )


class TestRecordsRoundTrip:
    def test_roundtrip(self, tmp_path):
        records = [record((1, 0, 0)), record((0, 1, 0)), record((1, 1, 1))]
        path = tmp_path / "db.csv"
        write_records_csv(records, path)
        loaded = read_records_csv(path)
        assert [r.key for r in loaded] == [r.key for r in sorted(records)]
        for got, want in zip(loaded, sorted(records)):
            # The CSV stores 6 decimal places; values survive to that
            # precision, not bit-exactly.
            assert got.time_s == pytest.approx(want.time_s, abs=1e-6)
            assert got.avg_time_vm_s == pytest.approx(want.avg_time_vm_s, abs=1e-6)
            assert got.energy_j == pytest.approx(want.energy_j, abs=1e-6)
            assert got.edp == pytest.approx(want.edp, abs=1e-6)

    def test_writer_sorts(self, tmp_path):
        path = tmp_path / "db.csv"
        write_records_csv([record((2, 0, 0)), record((1, 0, 0))], path)
        loaded = read_records_csv(path)
        assert [r.key for r in loaded] == [(1, 0, 0), (2, 0, 0)]

    def test_duplicate_keys_rejected_on_write(self, tmp_path):
        with pytest.raises(ValueError, match="duplicate"):
            write_records_csv([record((1, 0, 0)), record((1, 0, 0))], tmp_path / "x.csv")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(TraceFormatError, match="empty"):
            read_records_csv(path)

    def test_wrong_header_rejected(self):
        with pytest.raises(TraceFormatError, match="header"):
            parse_records_text("a,b,c\n")

    def test_malformed_row_rejected(self):
        text = "Ncpu,Nmem,Nio,Time,avgTimeVM,Energy,MaxPower,EDP\n1,0,0,ten,1,1,1,1\n"
        with pytest.raises(TraceFormatError, match="line 2"):
            parse_records_text(text)

    def test_wrong_column_count_rejected(self):
        text = "Ncpu,Nmem,Nio,Time,avgTimeVM,Energy,MaxPower,EDP\n1,0,0\n"
        with pytest.raises(TraceFormatError, match="columns"):
            parse_records_text(text)

    def test_unsorted_file_rejected(self):
        header = "Ncpu,Nmem,Nio,Time,avgTimeVM,Energy,MaxPower,EDP"
        rows = "2,0,0,10,5,100,200,1000\n1,0,0,10,10,100,200,1000"
        with pytest.raises(TraceFormatError, match="sorted"):
            parse_records_text(f"{header}\n{rows}\n")

    def test_blank_lines_skipped(self):
        header = "Ncpu,Nmem,Nio,Time,avgTimeVM,Energy,MaxPower,EDP"
        text = f"{header}\n\n1,0,0,10,10,100,200,1000\n\n"
        assert len(parse_records_text(text)) == 1


class TestAuxiliaryFile:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "aux.csv"
        optima = sample_optima()
        write_auxiliary_file(optima, path)
        loaded = read_auxiliary_file(path)
        assert loaded.grid_bounds == optima.grid_bounds
        assert loaded.tc == optima.tc
        assert loaded.optima(WorkloadClass.MEM).ose == 2

    def test_inconsistent_os_rejected(self, tmp_path):
        path = tmp_path / "aux.csv"
        write_auxiliary_file(sample_optima(), path)
        text = path.read_text().replace("OSC,9", "OSC,4")
        path.write_text(text)
        with pytest.raises(TraceFormatError, match="inconsistent"):
            read_auxiliary_file(path)

    def test_missing_parameter_rejected(self, tmp_path):
        path = tmp_path / "aux.csv"
        path.write_text("Parameter,Value\nOSPC,9\n")
        with pytest.raises(TraceFormatError, match="missing"):
            read_auxiliary_file(path)

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "aux.csv"
        path.write_text("")
        with pytest.raises(TraceFormatError):
            read_auxiliary_file(path)


class TestDisplayRows:
    def test_header_and_rows(self):
        rows = records_to_rows([record((1, 0, 0))])
        assert rows[0][0] == "Ncpu"
        assert len(rows) == 2
