"""Unit tests for the campaign automation platform."""

import pytest

from repro.campaign.combined_tests import expected_combination_count
from repro.campaign.csvdb import read_auxiliary_file, read_records_csv
from repro.campaign.platformrunner import run_campaign
from repro.testbed.benchmarks import WorkloadClass


class TestRunCampaign:
    def test_record_count(self, campaign):
        """DB rows = combined grid + base tests clipped to the bounds."""
        osc, osm, osi = campaign.optima.grid_bounds
        expected = expected_combination_count(osc, osm, osi) + osc + osm + osi
        assert len(campaign.records) == expected

    def test_records_sorted_and_unique(self, campaign):
        keys = [r.key for r in campaign.records]
        assert keys == sorted(keys)
        assert len(set(keys)) == len(keys)

    def test_base_rows_present_in_db(self, campaign):
        keys = {r.key for r in campaign.records}
        assert (1, 0, 0) in keys
        assert (0, 1, 0) in keys
        assert (0, 0, 1) in keys

    def test_base_rows_beyond_bounds_excluded(self, campaign):
        osc = campaign.optima.osc
        keys = {r.key for r in campaign.records}
        assert (osc, 0, 0) in keys
        assert (osc + 1, 0, 0) not in keys

    def test_save_and_reload(self, campaign, tmp_path):
        db_path, aux_path = campaign.save(tmp_path)
        records = read_records_csv(db_path)
        optima = read_auxiliary_file(aux_path)
        assert len(records) == len(campaign.records)
        assert optima.grid_bounds == campaign.optima.grid_bounds

    def test_progress_messages(self):
        messages = []
        run_campaign(max_base_vms=2, progress=messages.append)
        assert any("base tests" in m for m in messages)
        assert any("combined tests" in m for m in messages)
        assert any("complete" in m for m in messages)

    def test_deterministic(self, campaign):
        again = run_campaign()
        assert [r.key for r in again.records] == [r.key for r in campaign.records]
        assert [r.time_s for r in again.records] == [r.time_s for r in campaign.records]

    def test_meter_noise_perturbs_but_preserves_keys(self, campaign):
        noisy = run_campaign(meter_accuracy=0.015, meter_rng=11)
        assert [r.key for r in noisy.records] == [r.key for r in campaign.records]
        assert any(
            a.energy_j != b.energy_j
            for a, b in zip(noisy.records, campaign.records)
        )

    def test_base_curve_counts(self, campaign):
        assert campaign.n_base_tests == 3 * 16
