"""Property-based tests for the allocator's QoS contract."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import AllocationError
from repro.core.allocator import ProactiveAllocator, ServerState, VMRequest
from repro.testbed.benchmarks import WorkloadClass

classes = st.sampled_from(list(WorkloadClass))
alphas = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
deadline_factors = st.floats(min_value=1.1, max_value=20.0, allow_nan=False)


class TestQoSContract:
    @given(
        batch=st.lists(classes, min_size=1, max_size=5),
        alpha=alphas,
        factor=deadline_factors,
    )
    @settings(max_examples=40, deadline=None)
    def test_satisfied_plans_respect_deadlines(self, database, batch, alpha, factor):
        """Whenever the allocator claims QoS satisfaction, every block's
        estimated completion fits the tightest relevant deadline."""
        deadlines = {
            workload_class: factor * database.reference_time(workload_class)
            for workload_class in WorkloadClass
        }
        requests = [
            VMRequest(f"v{i}", c, max_exec_time_s=deadlines[c])
            for i, c in enumerate(batch)
        ]
        servers = [ServerState(f"s{i}") for i in range(4)]
        try:
            plan = ProactiveAllocator(database, alpha=alpha, strict_qos=True).allocate(
                requests, servers
            )
        except AllocationError:
            return  # infeasible under this deadline: nothing to check
        assert plan.qos_satisfied
        for assignment in plan.assignments:
            block_classes = [
                workload_class
                for index, workload_class in enumerate(
                    (WorkloadClass.CPU, WorkloadClass.MEM, WorkloadClass.IO)
                )
                if assignment.block[index] > 0
            ]
            tightest = min(deadlines[c] for c in block_classes)
            assert assignment.estimate.time_s <= tightest + 1e-9

    @given(batch=st.lists(classes, min_size=1, max_size=4), alpha=alphas)
    @settings(max_examples=30, deadline=None)
    def test_relaxed_mode_always_places(self, database, batch, alpha):
        """Relaxed QoS never refuses a capacity-feasible batch, however
        absurd the deadline."""
        requests = [
            VMRequest(f"v{i}", c, max_exec_time_s=0.5) for i, c in enumerate(batch)
        ]
        servers = [ServerState(f"s{i}") for i in range(4)]
        plan = ProactiveAllocator(database, alpha=alpha, strict_qos=False).allocate(
            requests, servers
        )
        assert len(plan.placements()) == len(batch)
        assert not plan.qos_satisfied

    @given(
        batch=st.lists(classes, min_size=1, max_size=4),
        alpha=alphas,
        factor=deadline_factors,
    )
    @settings(max_examples=30, deadline=None)
    def test_strict_never_beats_relaxed_score_dishonestly(
        self, database, batch, alpha, factor
    ):
        """A strict-QoS plan is also producible by relaxed mode: the
        relaxed optimum can only be at least as good on the blended
        objective (compliance is a constraint, not a bonus)."""
        requests = [
            VMRequest(
                f"v{i}", c, max_exec_time_s=factor * database.reference_time(c)
            )
            for i, c in enumerate(batch)
        ]
        servers = [ServerState(f"s{i}") for i in range(3)]
        relaxed = ProactiveAllocator(database, alpha=alpha, strict_qos=False).allocate(
            requests, servers
        )
        try:
            strict = ProactiveAllocator(database, alpha=alpha, strict_qos=True).allocate(
                requests, servers
            )
        except AllocationError:
            return
        if relaxed.qos_satisfied:
            # Same candidate pool: identical outcomes expected.
            assert strict.score == relaxed.score
