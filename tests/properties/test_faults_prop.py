"""Property-based chaos tests for the fault-injection subsystem.

Randomized seeded fault schedules against small simulated clusters,
pinned to the invariants the subsystem promises: materialization is a
pure function of (spec, n_servers); every timeline entry is logged
exactly once; lost work is only ever attributed to applied evictions;
faulted runs are deterministic; schedules that cannot produce a
simulator fault leave the run bit-identical to a fault-free one; and
capacity-removing faults can only add SLA violations, never remove
them (the corpus is fixed via ``derandomize`` -- this is an invariant
of the generated schedules, exercised broadly rather than proven).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    FaultEvent,
    FaultKind,
    FaultSpec,
    RandomFaults,
    materialize,
)
from repro.sim.datacenter import DatacenterConfig, DatacenterSimulator
from repro.strategies import FirstFitStrategy
from repro.testbed.benchmarks import WorkloadClass
from repro.workloads.assignment import PreparedJob
from repro.workloads.qos import QoSPolicy

N_SERVERS = 2

times = st.floats(min_value=0.0, max_value=1500.0, allow_nan=False)


@st.composite
def fault_specs(draw):
    """Arbitrary *valid* specs (any kind, any target), for pure-data laws."""
    events = []
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        kind = draw(st.sampled_from(list(FaultKind)))
        if kind in (FaultKind.SERVER_CRASH, FaultKind.SERVER_RECOVER):
            events.append(
                FaultEvent(
                    kind=kind,
                    time_s=draw(times),
                    server=draw(st.integers(min_value=0, max_value=N_SERVERS - 1)),
                )
            )
        elif kind is FaultKind.SLOWDOWN:
            events.append(
                FaultEvent(
                    kind=kind,
                    time_s=draw(times),
                    server=draw(st.integers(min_value=0, max_value=N_SERVERS - 1)),
                    duration_s=draw(st.floats(min_value=1.0, max_value=400.0)),
                    factor=draw(st.floats(min_value=1.0, max_value=4.0)),
                )
            )
        elif kind is FaultKind.VM_ABORT:
            events.append(
                FaultEvent(
                    kind=kind,
                    time_s=draw(times),
                    vm=f"j{draw(st.integers(min_value=1, max_value=5))}-0",
                )
            )
        else:
            events.append(
                FaultEvent(
                    kind=kind,
                    task=draw(st.integers(min_value=0, max_value=10)),
                    times=draw(st.integers(min_value=1, max_value=4)),
                )
            )
    random = None
    if draw(st.booleans()):
        random = RandomFaults(
            crash_rate_per_1000s=draw(st.floats(min_value=0.0, max_value=10.0)),
            window_t1_s=draw(st.floats(min_value=100.0, max_value=2000.0)),
            recover_after_s=draw(
                st.one_of(st.none(), st.floats(min_value=1.0, max_value=300.0))
            ),
        )
    return FaultSpec(
        events=tuple(events),
        random=random,
        seed=draw(st.integers(min_value=0, max_value=2**31)),
    )


@st.composite
def feasible_chaos(draw):
    """Schedules the 2-server cluster always survives: server 0 never
    crashes and every crash of server 1 is followed by a recovery."""
    events = []
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        crash_t = draw(times)
        events.append(
            FaultEvent(kind=FaultKind.SERVER_CRASH, time_s=crash_t, server=1)
        )
        events.append(
            FaultEvent(
                kind=FaultKind.SERVER_RECOVER,
                time_s=crash_t + draw(st.floats(min_value=1.0, max_value=300.0)),
                server=1,
            )
        )
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        events.append(
            FaultEvent(
                kind=FaultKind.SLOWDOWN,
                time_s=draw(times),
                server=draw(st.integers(min_value=0, max_value=1)),
                duration_s=draw(st.floats(min_value=1.0, max_value=300.0)),
                factor=draw(st.floats(min_value=1.0, max_value=3.0)),
            )
        )
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        events.append(
            FaultEvent(
                kind=FaultKind.VM_ABORT,
                time_s=draw(times),
                vm=f"j{draw(st.integers(min_value=1, max_value=4))}-0",
            )
        )
    return FaultSpec(events=tuple(events))


@st.composite
def workloads(draw):
    jobs = []
    for i in range(draw(st.integers(min_value=1, max_value=4))):
        jobs.append(
            PreparedJob(
                job_id=i + 1,
                submit_time_s=draw(st.floats(min_value=0.0, max_value=400.0)),
                workload_class=draw(st.sampled_from(list(WorkloadClass))),
                n_vms=draw(st.integers(min_value=1, max_value=3)),
                burst_id=i,
            )
        )
    return jobs


def run(jobs, spec=None):
    simulator = DatacenterSimulator(DatacenterConfig(n_servers=N_SERVERS))
    schedule = materialize(spec, N_SERVERS) if spec is not None else None
    return simulator.run(
        jobs,
        FirstFitStrategy(1),
        QoSPolicy(max_response_s={wc: 1500.0 for wc in WorkloadClass}),
        faults=schedule,
    )


class TestSpecDataLaws:
    @given(fault_specs())
    @settings(max_examples=60, derandomize=True)
    def test_dict_round_trip(self, spec):
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    @given(fault_specs())
    @settings(max_examples=40, derandomize=True)
    def test_materialization_is_pure(self, spec):
        assert materialize(spec, N_SERVERS) == materialize(spec, N_SERVERS)

    @given(fault_specs())
    @settings(max_examples=40, derandomize=True)
    def test_timeline_sorted_and_in_range(self, spec):
        schedule = materialize(spec, N_SERVERS)
        timestamps = [entry.time_s for entry in schedule.timeline]
        assert timestamps == sorted(timestamps)
        assert all(
            entry.server is None or 0 <= entry.server < N_SERVERS
            for entry in schedule.timeline
        )

    @given(fault_specs())
    @settings(max_examples=40, derandomize=True)
    def test_worker_plan_matches_spec(self, spec):
        schedule = materialize(spec, N_SERVERS)
        assert dict(schedule.worker_plan.failures) == dict(spec.worker_failures)


class TestChaosInvariants:
    @given(workloads(), feasible_chaos())
    @settings(max_examples=12, derandomize=True, deadline=None)
    def test_every_job_completes_and_log_covers_timeline(self, jobs, spec):
        schedule = materialize(spec, N_SERVERS)
        result = run(jobs, spec)
        assert result.metrics.n_jobs == len(jobs)
        assert len(result.fault_log) == len(schedule.timeline)

    @given(workloads(), feasible_chaos())
    @settings(max_examples=12, derandomize=True, deadline=None)
    def test_lost_work_only_from_applied_evictions(self, jobs, spec):
        known = {f"j{job.job_id}-{k}" for job in jobs for k in range(job.n_vms)}
        result = run(jobs, spec)
        for record in result.fault_log:
            assert record.lost_work_s >= 0.0
            assert set(record.vm_ids) <= known
            if record.lost_work_s > 0.0:
                assert record.applied
                assert record.vm_ids
            if not record.applied:
                assert record.vm_ids == ()
                assert record.detail  # every no-op explains itself

    @given(workloads(), feasible_chaos())
    @settings(max_examples=10, derandomize=True, deadline=None)
    def test_faulted_run_is_deterministic(self, jobs, spec):
        first = run(jobs, spec)
        second = run(jobs, spec)
        assert first.outcomes == second.outcomes
        assert first.metrics == second.metrics
        assert first.fault_log == second.fault_log

    @given(workloads(), feasible_chaos())
    @settings(max_examples=12, derandomize=True, deadline=None)
    def test_faults_never_remove_sla_violations(self, jobs, spec):
        plain = run(jobs)
        faulted = run(jobs, spec)
        assert faulted.metrics.sla_violations >= plain.metrics.sla_violations

    @given(workloads(), st.integers(min_value=0, max_value=10))
    @settings(max_examples=12, derandomize=True, deadline=None)
    def test_worker_failure_only_specs_are_sim_inert(self, jobs, task):
        plain = run(jobs)
        inert = run(
            jobs,
            FaultSpec(
                events=(FaultEvent(kind=FaultKind.WORKER_FAILURE, task=task, times=2),)
            ),
        )
        assert inert == plain
        assert inert.fault_log == ()
