"""Property suite for the carbon temporal-signal layer.

Pins the contracts DESIGN.md states for the carbon scenario:

* piecewise integration is *exact* against closed forms (rectangles and
  trapezoids on dyadic breakpoints admit bit-exact expectations);
* the periodic extension is translation-invariant: shifting a span by
  whole periods reuses the identical operands, so the integral is
  bit-identical, not merely close;
* carbon/cost accounting is conserved across sharding and is
  bit-identical at any worker count, and the chronicle recomputation
  reproduces the per-server totals exactly;
* ``alpha_carbon = 0`` is a byte-identity: same plan object, same wire
  document, same simulation metrics as a run that never heard of
  carbon;
* temporal shifting never worsens its own objective on any job, leaves
  no-slack workloads untouched, and emits the canonical job order.
"""

import json
import math
import random
from dataclasses import replace

import pytest

from repro.common.errors import ConfigurationError
from repro.core.allocator import ProactiveAllocator, ServerState, VMRequest
from repro.core.scoring import CarbonContext, ScoreWeights, carbon_axis
from repro.exec.sharded import run_sharded
from repro.ext.carbon.signal import (
    DAY_S,
    J_PER_KWH,
    TemporalSignal,
    TemporalSignals,
    daily_carbon_signal,
    double_peak_price_signal,
    load_signal,
    parse_carbon_signal,
    parse_price_signal,
    signal_from_document,
)
from repro.ext.carbon.shifting import shift_deferrable
from repro.service import schema
from repro.sim.datacenter import DatacenterConfig
from repro.strategies.firstfit import FirstFitStrategy
from repro.testbed.benchmarks import WorkloadClass
from repro.workloads.assignment import PreparedJob
from repro.workloads.qos import QoSPolicy

STEP = TemporalSignal(
    times_s=(0.0, 25.0, 50.0),
    values=(2.0, 4.0, 1.0),
    period_s=100.0,
    kind="step",
)
RAMP = TemporalSignal(
    times_s=(0.0, 50.0),
    values=(0.0, 10.0),
    period_s=100.0,
    kind="linear",
)


def make_jobs(n):
    classes = list(WorkloadClass)
    return [
        PreparedJob(
            job_id=i + 1,
            submit_time_s=900.0 * i,
            workload_class=classes[i % len(classes)],
            n_vms=1 + i % 3,
            burst_id=i // 4,
        )
        for i in range(n)
    ]


def signals_pair(seed=7):
    return TemporalSignals(
        carbon=daily_carbon_signal(seed), price=double_peak_price_signal(seed)
    )


def run(jobs=None, *, shards=1, workers=1, signals=None, chronicles=False):
    config = DatacenterConfig(
        n_servers=6,
        record_chronicles=chronicles,
        signals=signals,
    )
    return run_sharded(
        jobs if jobs is not None else make_jobs(24),
        FirstFitStrategy(2),
        QoSPolicy.unlimited(),
        config,
        shards=shards,
        workers=workers,
    )


class TestIntegrationExactness:
    """Closed forms on dyadic breakpoints must match to the last bit."""

    def test_step_full_period(self):
        # 2*25 + 4*25 + 1*50 rectangles.
        assert STEP.period_integral == 200.0

    def test_step_partial_spans(self):
        assert STEP.integrate(10.0, 30.0) == 2.0 * 15.0 + 4.0 * 5.0
        assert STEP.integrate(0.0, 25.0) == 50.0
        assert STEP.integrate(50.0, 100.0) == 50.0
        assert STEP.integrate(30.0, 30.0) == 0.0

    def test_linear_full_period(self):
        # Two trapezoids: 0->10 over 50s, then the wrap 10->0 over 50s.
        assert RAMP.period_integral == 500.0

    def test_linear_partial_spans(self):
        # value_at(25) = 5, value_at(75) = 5 on the wrapped ramp.
        assert RAMP.value_at(25.0) == 5.0
        assert RAMP.value_at(75.0) == 5.0
        assert RAMP.integrate(25.0, 75.0) == 0.5 * (5.0 + 10.0) * 25.0 * 2.0
        assert RAMP.integrate(0.0, 50.0) == 250.0

    def test_whole_periods_scale_exactly(self):
        for signal in (STEP, RAMP, daily_carbon_signal(3)):
            for k in (1.0, 2.0, 7.0, 31.0):
                assert signal.integrate(0.0, k * signal.period_s) == (
                    k * signal.period_integral
                )

    def test_empty_span_mean_is_point_value(self):
        for signal in (STEP, RAMP):
            for t in (0.0, 10.0, 62.5, 99.0, 150.0):
                assert signal.mean(t, t) == signal.value_at(t)

    def test_accounting_units(self):
        # 1 kW over one 100 s period of STEP: (1000/3.6e6) * 200 gCO2.
        pair = TemporalSignals(carbon=STEP)
        assert pair.carbon_of(1000.0, 0.0, 100.0) == (1000.0 / J_PER_KWH) * 200.0
        assert pair.cost_of(1000.0, 0.0, 100.0) == 0.0
        assert pair.carbon_of(1000.0, 50.0, 50.0) == 0.0
        # Spending E joules uniformly over a window uses the mean value.
        assert pair.carbon_mass_g(J_PER_KWH, 0.0, 100.0) == STEP.period_mean


class TestTranslationInvariance:
    """integrate(t0 + k*P, t1 + k*P) is bit-identical to integrate(t0, t1)."""

    @pytest.mark.parametrize(
        "signal",
        [STEP, RAMP, daily_carbon_signal(11), double_peak_price_signal(11)],
        ids=["step", "ramp", "carbon", "price"],
    )
    def test_whole_period_translation(self, signal):
        rng = random.Random(42)
        period = signal.period_s
        for _ in range(50):
            t0 = float(rng.randrange(0, int(period)))
            t1 = t0 + float(rng.randrange(0, int(3 * period)))
            base = signal.integrate(t0, t1)
            for k in (1, 2, 10, 365):
                shift = k * period
                assert signal.integrate(t0 + shift, t1 + shift) == base

    def test_value_at_is_periodic(self):
        for signal in (STEP, RAMP):
            for t in (0.0, 12.5, 25.0, 75.0, 99.0):
                assert signal.value_at(t + signal.period_s) == signal.value_at(t)
                assert signal.value_at(t + 17 * signal.period_s) == signal.value_at(t)

    def test_breakpoints_between_covers_span(self):
        points = STEP.breakpoints_between(30.0, 230.0)
        assert points == [50.0, 100.0, 125.0, 150.0, 200.0, 225.0]


class TestValidation:
    """Every malformation raises ValueError with a pointed message."""

    def test_breakpoints_must_start_at_zero(self):
        with pytest.raises(ValueError, match="start at 0.0"):
            TemporalSignal(times_s=(1.0,), values=(1.0,), period_s=10.0)

    def test_breakpoints_strictly_increasing(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            TemporalSignal(
                times_s=(0.0, 5.0, 5.0), values=(1.0, 1.0, 1.0), period_s=10.0
            )

    def test_breakpoints_below_period(self):
        with pytest.raises(ValueError, match="below the period"):
            TemporalSignal(times_s=(0.0, 10.0), values=(1.0, 1.0), period_s=10.0)

    def test_values_finite_non_negative(self):
        with pytest.raises(ValueError, match="finite and >= 0"):
            TemporalSignal(times_s=(0.0,), values=(-1.0,), period_s=10.0)
        with pytest.raises(ValueError, match="finite and >= 0"):
            TemporalSignal(times_s=(0.0,), values=(math.nan,), period_s=10.0)

    def test_kind_and_arity(self):
        with pytest.raises(ValueError, match="kind"):
            TemporalSignal(times_s=(0.0,), values=(1.0,), period_s=10.0, kind="cubic")
        with pytest.raises(ValueError, match="breakpoints but"):
            TemporalSignal(times_s=(0.0,), values=(1.0, 2.0), period_s=10.0)
        with pytest.raises(ValueError, match="at least one"):
            TemporalSignal(times_s=(), values=(), period_s=10.0)

    def test_document_malformations(self):
        with pytest.raises(ValueError, match="JSON object"):
            signal_from_document([1, 2])
        with pytest.raises(ValueError, match="missing key"):
            signal_from_document({"kind": "step", "period_s": 10.0})
        with pytest.raises(ValueError, match="number pair"):
            signal_from_document(
                {"kind": "step", "period_s": 10.0, "points": [[0.0, "x"]]}
            )
        with pytest.raises(ValueError, match="non-empty array"):
            signal_from_document({"kind": "step", "period_s": 10.0, "points": []})

    def test_load_signal_errors(self, signal_file):
        with pytest.raises(ValueError, match="cannot read"):
            load_signal("/does/not/exist.json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_signal(signal_file(None, raw="{not json"))

    def test_signal_file_round_trip(self, signal_file):
        path = signal_file(STEP.document())
        assert load_signal(path) == STEP
        assert parse_carbon_signal(path) == STEP

    def test_synthetic_specs(self):
        assert parse_carbon_signal("synthetic:5") == daily_carbon_signal(5)
        assert parse_price_signal("synthetic:5") == double_peak_price_signal(5)
        with pytest.raises(ValueError, match="integer"):
            parse_carbon_signal("synthetic:xyz")
        with pytest.raises(ValueError, match="empty"):
            parse_price_signal("  ")

    def test_signals_pair_needs_one(self):
        with pytest.raises(ValueError, match="carbon or a price"):
            TemporalSignals()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            STEP.integrate(-1.0, 5.0)
        with pytest.raises(ValueError, match=">= 0"):
            STEP.value_at(-1.0)
        with pytest.raises(ValueError, match="ends before"):
            STEP.integrate(5.0, 1.0)
        with pytest.raises(ValueError, match="ends before"):
            STEP.breakpoints_between(5.0, 1.0)

    def test_period_must_be_number(self):
        with pytest.raises(ValueError, match="'period_s' must be a number"):
            signal_from_document(
                {"kind": "step", "period_s": "ten", "points": [[0.0, 1.0]]}
            )

    def test_absent_signal_contributes_zero(self):
        carbon_only = TemporalSignals(carbon=STEP)
        price_only = TemporalSignals(price=STEP)
        assert carbon_only.energy_cost(1.0e6, 0.0, 50.0) == 0.0
        assert price_only.carbon_mass_g(1.0e6, 0.0, 50.0) == 0.0


class TestCarbonOptions:
    def test_signals_type_checked(self):
        from repro.ext.carbon.options import CarbonOptions

        with pytest.raises(ValueError, match="TemporalSignals"):
            CarbonOptions(signals=STEP)

    def test_allocator_context_gating(self):
        from repro.ext.carbon.options import CarbonOptions

        pair = signals_pair()
        assert CarbonOptions(signals=pair).allocator_context() is None
        context = CarbonOptions(signals=pair, alpha_carbon=0.5).allocator_context()
        assert isinstance(context, CarbonContext)
        assert context.alpha_carbon == 0.5

    def test_apply_shift_identity_when_off(self):
        from repro.ext.carbon.options import CarbonOptions

        jobs = make_jobs(5)
        qos = QoSPolicy({cls: 10_000.0 for cls in WorkloadClass})
        refs = {cls: 100.0 for cls in WorkloadClass}
        shifted, moved = CarbonOptions(signals=signals_pair()).apply_shift(
            jobs, qos, refs
        )
        assert moved == 0
        assert shifted == list(jobs)


class TestAccountingConservation:
    """Carbon mass and cost survive sharding, pooling, and recomputation."""

    def test_bit_identical_at_any_worker_count(self):
        serial = run(shards=3, workers=1, signals=signals_pair())
        pooled = run(shards=3, workers=3, signals=signals_pair())
        assert pooled.metrics.carbon_g == serial.metrics.carbon_g
        assert pooled.metrics.cost == serial.metrics.cost
        assert pooled.per_server_carbon_g == serial.per_server_carbon_g
        assert pooled.per_server_cost == serial.per_server_cost

    def test_totals_are_per_server_sums(self):
        result = run(shards=1, signals=signals_pair())
        assert result.metrics.carbon_g == sum(result.per_server_carbon_g)
        assert result.metrics.cost == sum(result.per_server_cost)
        assert result.metrics.carbon_g > 0.0
        assert result.metrics.cost > 0.0

    def test_sharded_totals_conserve_shard_sums(self):
        # Merging folds the per-shard totals in shard order; the
        # concatenated per-server tuples must account for every gram.
        result = run(shards=3, signals=signals_pair())
        assert len(result.per_server_carbon_g) == result.n_servers
        assert result.metrics.carbon_g == pytest.approx(
            math.fsum(result.per_server_carbon_g), rel=1e-12
        )
        assert result.metrics.cost == pytest.approx(
            math.fsum(result.per_server_cost), rel=1e-12
        )

    def test_chronicle_recomputation_is_exact(self):
        pair = signals_pair()
        result = run(shards=1, signals=pair, chronicles=True)
        assert len(result.chronicles) == result.n_servers
        for chronicle, expected in zip(result.chronicles, result.per_server_carbon_g):
            assert chronicle.carbon_g() == expected
            # Re-integrating the recorded intervals in order replays the
            # identical float fold.
            recomputed = 0.0
            for interval in chronicle.iter_all():
                recomputed += pair.carbon_of(
                    interval.power_w, interval.t0_s, interval.t1_s
                )
            assert recomputed == expected
        for chronicle, expected in zip(result.chronicles, result.per_server_cost):
            assert chronicle.cost() == expected

    def test_carbon_only_and_price_only(self):
        carbon_only = run(signals=TemporalSignals(carbon=daily_carbon_signal(7)))
        price_only = run(signals=TemporalSignals(price=double_peak_price_signal(7)))
        assert carbon_only.metrics.carbon_g > 0.0
        assert carbon_only.metrics.cost == 0.0
        assert price_only.metrics.carbon_g == 0.0
        assert price_only.metrics.cost > 0.0

    def test_fused_accrue_matches_unfused_pair_bitwise(self):
        # The simulator's hot path calls the fused accrue(); its fast
        # branches must reproduce carbon_of/cost_of bit for bit on
        # every span shape (within-segment, cross-segment, cross-period,
        # empty), for shared-period and mixed-period signal pairs.
        shifted_price = replace(double_peak_price_signal(7), period_s=2.0 * DAY_S)
        pairs = [
            signals_pair(),
            TemporalSignals(carbon=STEP, price=RAMP),
            TemporalSignals(carbon=STEP, price=replace(STEP, values=(0.3, 0.05, 0.2))),
            TemporalSignals(carbon=daily_carbon_signal(7), price=shifted_price),
            TemporalSignals(carbon=daily_carbon_signal(7)),
            TemporalSignals(price=double_peak_price_signal(7)),
        ]
        rng = random.Random(2026)
        for pair in pairs:
            period = max(
                signal.period_s
                for signal in (pair.carbon, pair.price)
                if signal is not None
            )
            for _ in range(400):
                t0 = rng.uniform(0.0, 3.0 * period)
                t1 = t0 + rng.uniform(0.0, 1.5 * period) * rng.choice((0.0, 0.001, 1.0))
                assert pair.accrue(450.0, t0, t1) == (
                    pair.carbon_of(450.0, t0, t1),
                    pair.cost_of(450.0, t0, t1),
                )

    def test_residue_exact_at_float_edges(self):
        # The decomposition uses ``math.fmod``, whose residue is exact
        # -- unlike ``t - (t // P) * P``, which at these searched-for
        # inputs lands outside [0, P) (raw residues -0.5 and +1.0
        # after the product rounds).  The periodic extension must
        # report in-range values even where the float grid is coarser
        # than the period, empty spans must integrate to zero, and the
        # fused pair must agree with the unfused calls bitwise.
        triggers = (
            (4144245188391053.5, 1.0 / 3.0, (0.0, 0.2)),
            (5931837303800576.0, 0.07, (0.0, 0.03)),
            (997550047562.7, 0.3, (0.0, 0.2)),
        )
        for t, period, times in triggers:
            step = TemporalSignal(
                times_s=times, values=(2.0, 4.0), period_s=period, kind="step"
            )
            ramp = TemporalSignal(
                times_s=times, values=(1.0, 3.0), period_s=period, kind="linear"
            )
            for signal in (step, ramp):
                assert min(signal.values) <= signal.value_at(t) <= max(signal.values)
                assert signal.integrate(t, t) == 0.0
                assert signal.integrate(t, t + 1.0) >= 0.0
            pair = TemporalSignals(carbon=step, price=replace(step, values=(0.3, 0.1)))
            assert pair.accrue(450.0, t, t + 1.0) == (
                pair.carbon_of(450.0, t, t + 1.0),
                pair.cost_of(450.0, t, t + 1.0),
            )


class TestAlphaCarbonZeroIdentity:
    """Signals without steering must not move a single bit elsewhere."""

    def test_simulation_metrics_identical(self):
        plain = run()
        accounted = run(signals=signals_pair())
        p, a = plain.metrics, accounted.metrics
        assert a.makespan_s == p.makespan_s
        assert a.energy_j == p.energy_j
        assert a.busy_energy_j == p.busy_energy_j
        assert a.idle_energy_j == p.idle_energy_j
        assert a.sla_violations == p.sla_violations
        assert a.mean_response_s == p.mean_response_s
        assert plain.metrics.carbon_g == 0.0
        assert plain.per_server_carbon_g == ()
        assert accounted.outcomes == plain.outcomes

    def test_score_weights_alpha_carbon_zero_exact(self):
        for alpha in (0.0, 0.25, 0.5, 0.75, 1.0, 0.1234567):
            base = ScoreWeights(alpha=alpha)
            carbon = ScoreWeights(alpha=alpha, alpha_carbon=0.0)
            assert carbon.energy_weight == base.energy_weight == alpha
            assert carbon.time_weight == base.time_weight
            assert carbon.carbon_weight == 0.0
            assert carbon.describe() == base.describe()

    def test_plan_and_wire_document_byte_identical(self, database):
        requests = [
            VMRequest(f"vm-{i}", cls)
            for i, cls in enumerate(
                [WorkloadClass.CPU] * 3 + [WorkloadClass.MEM] * 2 + [WorkloadClass.IO]
            )
        ]
        servers = lambda: [ServerState(f"s{i}") for i in range(3)]  # noqa: E731
        plain = ProactiveAllocator(database, alpha=0.5)
        inert = ProactiveAllocator(
            database,
            alpha=0.5,
            carbon=CarbonContext(signals=signals_pair(), alpha_carbon=0.0),
        )
        plan_a = plain.allocate(requests, servers())
        plan_b = inert.allocate(requests, servers())
        assert plan_a == plan_b
        bytes_a = json.dumps(schema.plan_document(plan_a), sort_keys=True)
        bytes_b = json.dumps(schema.plan_document(plan_b), sort_keys=True)
        assert bytes_a == bytes_b
        assert '"alpha_carbon"' not in bytes_a


class TestThreeWayScoring:
    def test_carbon_plan_carries_estimates(self, database):
        requests = [VMRequest("vm-0", WorkloadClass.CPU), VMRequest("vm-1", WorkloadClass.MEM)]
        allocator = ProactiveAllocator(
            database,
            alpha=0.5,
            carbon=CarbonContext(signals=signals_pair(), alpha_carbon=0.4),
        )
        plan = allocator.allocate(requests, [ServerState("s0"), ServerState("s1")])
        assert plan.alpha_carbon == 0.4
        assert plan.estimated_carbon_g is not None and plan.estimated_carbon_g > 0.0
        assert plan.estimated_cost is not None and plan.estimated_cost > 0.0
        document = schema.plan_document(plan)
        assert document["alpha_carbon"] == 0.4
        decoded = schema.decode_plan(document)
        assert decoded.alpha_carbon == 0.4
        assert decoded.estimated_carbon_g == plan.estimated_carbon_g
        assert decoded.estimated_cost == plan.estimated_cost

    def test_carbon_rejects_forced_anytime(self, database):
        with pytest.raises(ConfigurationError, match="anytime"):
            ProactiveAllocator(
                database,
                alpha=0.5,
                time_budget_s=1.0,
                carbon=CarbonContext(signals=signals_pair(), alpha_carbon=0.5),
            )

    def test_carbon_rejects_reference_oracle(self, database):
        allocator = ProactiveAllocator(
            database,
            alpha=0.5,
            carbon=CarbonContext(signals=signals_pair(), alpha_carbon=0.5),
        )
        with pytest.raises(ConfigurationError, match="2-way"):
            allocator.allocate_reference(
                [VMRequest("vm-0", WorkloadClass.CPU)], [ServerState("s0")]
            )

    def test_carbon_axis_normalizes_per_dimension(self):
        impacts = [(10.0, 0.2), (5.0, 0.4), (0.0, 0.0)]
        axis = carbon_axis(impacts)
        assert axis[0] == 0.5 * (10.0 / 10.0 + 0.2 / 0.4)
        assert axis[2] == 0.0
        assert carbon_axis([(0.0, 0.0)]) == [0.0]


class TestShifting:
    CHEAP_WINDOW = TemporalSignal(
        # Expensive all day except a cheap 6h block starting at 21600s.
        times_s=(0.0, 21_600.0, 43_200.0),
        values=(10.0, 1.0, 10.0),
        period_s=DAY_S,
        kind="step",
    )

    def make_peak_jobs(self, n=12, reference=3_600.0):
        # All submitted inside the expensive morning band.
        return [
            PreparedJob(
                job_id=i + 1,
                submit_time_s=600.0 * i,
                workload_class=WorkloadClass.CPU,
                n_vms=1,
                burst_id=0,
            )
            for i in range(n)
        ]

    def shift(self, jobs, slack_factor=10.0, margin=1.25, reference=3_600.0):
        signals = TemporalSignals(price=self.CHEAP_WINDOW)
        qos = QoSPolicy({cls: slack_factor * reference for cls in WorkloadClass})
        refs = {cls: reference for cls in WorkloadClass}
        return (
            shift_deferrable(jobs, signals, qos, refs, margin=margin),
            signals,
            reference,
        )

    def test_objective_never_increases(self):
        jobs = self.make_peak_jobs()
        (shifted, moved), signals, reference = self.shift(jobs)
        assert moved > 0
        by_id = {job.job_id: job for job in shifted}
        for before in jobs:
            after = by_id[before.job_id]
            assert after.submit_time_s >= before.submit_time_s
            load_before = signals.price.integrate(
                before.submit_time_s, before.submit_time_s + reference
            )
            load_after = signals.price.integrate(
                after.submit_time_s, after.submit_time_s + reference
            )
            assert load_after <= load_before

    def test_moved_jobs_land_in_cheap_window(self):
        jobs = self.make_peak_jobs(n=4)
        (shifted, moved), signals, reference = self.shift(jobs)
        assert moved == 4
        for job in shifted:
            assert signals.price.mean(
                job.submit_time_s, job.submit_time_s + reference
            ) == 1.0

    def test_no_slack_is_identity(self):
        jobs = self.make_peak_jobs()
        (shifted, moved), _, _ = self.shift(jobs, slack_factor=1.25, margin=1.25)
        assert moved == 0
        assert shifted == list(jobs)

    def test_deterministic_and_canonically_ordered(self):
        jobs = self.make_peak_jobs()
        (first, moved_a), _, _ = self.shift(jobs)
        (second, moved_b), _, _ = self.shift(jobs)
        assert first == second
        assert moved_a == moved_b
        keys = [(job.submit_time_s, job.job_id) for job in first]
        assert keys == sorted(keys)

    def test_shifted_campaign_costs_less(self):
        jobs = self.make_peak_jobs()
        (shifted, moved), signals, _ = self.shift(jobs)
        assert moved > 0
        base = run(jobs, signals=signals)
        better = run(shifted, signals=signals)
        assert better.metrics.cost < base.metrics.cost
