"""Property-based tests for the heterogeneous allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ext.hetero import HeteroProactiveStrategy, build_class_databases, default_classes
from repro.strategies.base import ServerView, VMDescriptor
from repro.testbed.benchmarks import WorkloadClass

classes = st.sampled_from(list(WorkloadClass))
alphas = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@pytest.fixture(scope="module")
def databases():
    return build_class_databases(default_classes())


def views(labels):
    return [
        ServerView(
            server_id=f"s{i}",
            mix=(0, 0, 0),
            max_vms=40 if label == "modern" else 24,
            cpu_slots=8 if label == "modern" else 4,
            powered_on=False,
        )
        for i, label in enumerate(labels)
    ]


class TestHeteroPlacementProperties:
    @given(
        batch=st.lists(classes, min_size=1, max_size=5),
        alpha=alphas,
        layout=st.lists(st.sampled_from(["legacy", "modern"]), min_size=1, max_size=3),
    )
    @settings(max_examples=25, deadline=None)
    def test_every_vm_placed_within_class_bounds(self, databases, batch, alpha, layout):
        strategy = HeteroProactiveStrategy(
            databases,
            {f"s{i}": label for i, label in enumerate(layout)},
            alpha=alpha,
        )
        descriptors = [VMDescriptor(f"v{i}", c) for i, c in enumerate(batch)]
        placement = strategy.place(descriptors, views(layout))
        assert placement is not None
        assert sorted(placement) == sorted(d.vm_id for d in descriptors)
        # Per-server mixes stay inside the *server's own class* bounds.
        per_server: dict[str, list[WorkloadClass]] = {}
        for descriptor in descriptors:
            per_server.setdefault(placement[descriptor.vm_id], []).append(
                descriptor.workload_class
            )
        for server_id, members in per_server.items():
            db = strategy.database_for(server_id)
            key = (
                sum(1 for c in members if c is WorkloadClass.CPU),
                sum(1 for c in members if c is WorkloadClass.MEM),
                sum(1 for c in members if c is WorkloadClass.IO),
            )
            assert db.within_bounds(key), (server_id, key)

    @given(batch=st.lists(classes, min_size=1, max_size=4))
    @settings(max_examples=15, deadline=None)
    def test_deterministic(self, databases, batch):
        layout = ["legacy", "modern"]
        strategy = HeteroProactiveStrategy(
            databases, {f"s{i}": label for i, label in enumerate(layout)}, alpha=0.5
        )
        descriptors = [VMDescriptor(f"v{i}", c) for i, c in enumerate(batch)]
        assert strategy.place(descriptors, views(layout)) == strategy.place(
            descriptors, views(layout)
        )
