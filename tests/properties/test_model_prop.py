"""Property-based tests for model-database and allocator invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocator import ProactiveAllocator, ServerState, VMRequest
from repro.core.scoring import ScoreWeights, score_candidates
from repro.testbed.benchmarks import WorkloadClass


classes = st.sampled_from(list(WorkloadClass))
alphas = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestDatabaseProperties:
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_lookup_matches_linear_scan(self, database, data):
        record = data.draw(st.sampled_from(list(database.records)))
        assert database.lookup(record.key) == record

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_estimates_positive_within_grid(self, database, data):
        osc, osm, osi = database.grid_bounds
        key = (
            data.draw(st.integers(0, osc)),
            data.draw(st.integers(0, osm)),
            data.draw(st.integers(0, osi)),
        )
        if sum(key) == 0:
            return
        estimate = database.estimate(key)
        assert estimate.time_s > 0
        assert estimate.energy_j > 0
        assert estimate.avg_power_w > 100.0  # at least near idle draw


class TestAllocatorProperties:
    @given(
        batch=st.lists(classes, min_size=1, max_size=5),
        alpha=alphas,
        n_servers=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_vm_placed_exactly_once(self, database, batch, alpha, n_servers):
        requests = [VMRequest(f"v{i}", c) for i, c in enumerate(batch)]
        servers = [ServerState(f"s{i}") for i in range(n_servers)]
        plan = ProactiveAllocator(database, alpha=alpha).allocate(requests, servers)
        placements = plan.placements()
        assert sorted(placements) == sorted(r.vm_id for r in requests)
        for assignment in plan.assignments:
            assert database.within_bounds(assignment.combined_key)

    @given(batch=st.lists(classes, min_size=1, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_alpha_extremes_order_objectives(self, database, batch):
        requests = [VMRequest(f"v{i}", c) for i, c in enumerate(batch)]
        servers = [ServerState(f"s{i}") for i in range(3)]
        fast = ProactiveAllocator(database, alpha=0.0).allocate(requests, servers)
        frugal = ProactiveAllocator(database, alpha=1.0).allocate(requests, servers)
        assert fast.estimated_makespan_s <= frugal.estimated_makespan_s + 1e-9
        assert frugal.estimated_energy_j <= fast.estimated_energy_j + 1e-9


class TestScoringProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1e6),
                st.floats(min_value=0.0, max_value=1e9),
            ),
            min_size=1,
            max_size=20,
        ),
        alphas,
    )
    @settings(max_examples=60)
    def test_scores_in_unit_interval(self, candidates, alpha):
        scores = score_candidates(candidates, ScoreWeights(alpha))
        assert all(-1e-9 <= s <= 1.0 + 1e-9 for s in scores)

    @given(alphas)
    @settings(max_examples=30)
    def test_dominated_candidate_never_wins(self, alpha):
        candidates = [(100.0, 100.0), (200.0, 200.0)]
        scores = score_candidates(candidates, ScoreWeights(alpha))
        assert scores[0] <= scores[1]
