"""Equivalence oracle: the streamed, branch-and-bound-pruned allocator
must return the *bit-identical* plan of the retained naive reference.

Every optimization in :meth:`ProactiveAllocator.allocate` (dense-grid
lookups, Pareto-streaming retention, subtree pruning, mid-assignment
aborts) claims exactness.  These tests hammer that claim with seeded
random worlds: partial model databases, busy servers with VM caps,
deadlines, all three paper alphas plus random ones, strict and relaxed
QoS, a forced branch-and-bound regime (``bnb_min_vms=0``), and the
thermal :class:`PowerCappedDatabase` duck-type whose ``within_bounds``
veto is stricter than the grid box.

Equality uses ``AllocationPlan.__eq__``, which compares assignments,
alpha, score, and the QoS flag (provenance is excluded by design); when
the reference raises, the optimized path must raise the same exception
type.
"""

import random

import pytest

from repro.campaign.optimal import ClassOptima, OptimalScenarios
from repro.campaign.records import BenchmarkRecord
from repro.common.errors import AllocationError, ConfigurationError
from repro.core.allocator import ProactiveAllocator, ServerState, VMRequest
from repro.core.model import ModelDatabase
from repro.ext.thermal import PowerCappedDatabase
from repro.testbed.benchmarks import WorkloadClass

CASES_PER_SEED = 24
SEEDS = range(10)  # 10 x 24 = 240 cases


def random_database(rng: random.Random) -> ModelDatabase:
    """A small model database over random bounds with random coverage."""
    osc = rng.randint(1, 3)
    osm = rng.randint(1, 2)
    osi = rng.randint(1, 2)
    optima = OptimalScenarios(
        per_class={
            WorkloadClass.CPU: ClassOptima(
                WorkloadClass.CPU, osc, 1, rng.uniform(80.0, 120.0)
            ),
            WorkloadClass.MEM: ClassOptima(
                WorkloadClass.MEM, osm, 1, rng.uniform(120.0, 180.0)
            ),
            WorkloadClass.IO: ClassOptima(
                WorkloadClass.IO, osi, 1, rng.uniform(160.0, 240.0)
            ),
        }
    )
    include_p = rng.uniform(0.55, 1.0)
    records = []
    for ncpu in range(osc + 1):
        for nmem in range(osm + 1):
            for nio in range(osi + 1):
                n = ncpu + nmem + nio
                if n == 0 or rng.random() > include_p:
                    continue
                time_s = rng.uniform(50.0, 400.0) * (1.0 + 0.3 * n)
                energy_j = rng.uniform(5_000.0, 60_000.0) * (1.0 + 0.2 * n)
                records.append(
                    BenchmarkRecord.from_measurement(
                        (ncpu, nmem, nio), time_s, energy_j, 250.0
                    )
                )
    if not records:
        records.append(
            BenchmarkRecord.from_measurement((1, 0, 0), 100.0, 15_000.0, 250.0)
        )
    return ModelDatabase(records, optima)


def random_servers(rng: random.Random, bounds) -> list[ServerState]:
    osc, osm, osi = bounds
    servers = []
    for index in range(rng.randint(1, 6)):
        roll = rng.random()
        if roll < 0.45:
            mix = (0, 0, 0)
        elif roll < 0.55:
            # Off-grid residual: the server can never host anything.
            mix = (osc + 1, rng.randint(0, osm), 0)
        else:
            mix = (
                rng.randint(0, osc),
                rng.randint(0, osm),
                rng.randint(0, osi),
            )
        max_vms = rng.choice([None, None, rng.randint(1, osc + osm + osi)])
        servers.append(
            ServerState(server_id=f"s{index}", allocated=mix, max_vms=max_vms)
        )
    return servers


def random_requests(rng: random.Random, database: ModelDatabase) -> list[VMRequest]:
    classes = list(WorkloadClass)
    batch = [rng.choice(classes) for _ in range(rng.randint(1, 7))]
    with_deadlines = rng.random() < 0.5
    requests = []
    for index, workload_class in enumerate(batch):
        deadline = None
        if with_deadlines and rng.random() < 0.7:
            deadline = database.reference_time(workload_class) * rng.uniform(0.8, 8.0)
        requests.append(
            VMRequest(
                vm_id=f"v{index}",
                workload_class=workload_class,
                max_exec_time_s=deadline,
            )
        )
    return requests


def random_allocator(rng: random.Random, database) -> ProactiveAllocator:
    alpha = rng.choice([0.0, 0.5, 1.0, round(rng.random(), 3)])
    strict = rng.random() < 0.5
    # Half the cases force branch-and-bound on regardless of batch size
    # so warm start, bound tables, and pruning run even for tiny inputs.
    bnb_min_vms = rng.choice([0, 9])
    return ProactiveAllocator(
        database, alpha=alpha, strict_qos=strict, bnb_min_vms=bnb_min_vms
    )


def run_both(allocator, requests, servers):
    try:
        reference = allocator.allocate_reference(requests, servers)
        reference_error = None
    except (AllocationError, ConfigurationError) as error:
        reference = None
        reference_error = error
    try:
        optimized = allocator.allocate(requests, servers)
        optimized_error = None
    except (AllocationError, ConfigurationError) as error:
        optimized = None
        optimized_error = error
    return reference, reference_error, optimized, optimized_error


def assert_equivalent(case, allocator, requests, servers):
    reference, reference_error, optimized, optimized_error = run_both(
        allocator, requests, servers
    )
    if reference_error is not None:
        assert optimized_error is not None, (
            f"{case}: reference raised {type(reference_error).__name__} "
            f"but optimized returned a plan"
        )
        assert type(optimized_error) is type(reference_error), (
            f"{case}: {type(reference_error).__name__} != "
            f"{type(optimized_error).__name__}"
        )
        return
    assert optimized_error is None, (
        f"{case}: optimized raised {type(optimized_error).__name__} "
        f"({optimized_error}) but reference returned a plan"
    )
    assert optimized == reference, (
        f"{case}: plans differ\n  reference={reference}\n  optimized={optimized}"
    )
    assert optimized.search_provenance is not None


class TestRandomWorlds:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_streamed_equals_reference(self, seed):
        rng = random.Random(0xA110C + seed)
        for case_index in range(CASES_PER_SEED):
            database = random_database(rng)
            allocator = random_allocator(rng, database)
            servers = random_servers(rng, database.grid_bounds)
            requests = random_requests(rng, database)
            assert_equivalent(
                f"seed={seed} case={case_index}", allocator, requests, servers
            )


class TestPowerCappedDuckType:
    @pytest.mark.parametrize("seed", range(4))
    def test_streamed_equals_reference_under_cap(self, seed):
        rng = random.Random(0xCA9 + seed)
        for case_index in range(12):
            database = random_database(rng)
            powers = [record.avg_power_w for record in database.records]
            cap = rng.uniform(min(powers), max(powers) * 1.2)
            capped = PowerCappedDatabase(database, cap)
            allocator = random_allocator(rng, capped)
            servers = random_servers(rng, database.grid_bounds)
            requests = random_requests(rng, database)
            assert_equivalent(
                f"cap-seed={seed} case={case_index}", allocator, requests, servers
            )


class TestCampaignDatabase:
    """Small batches against the real (full) campaign database."""

    @pytest.mark.parametrize("alpha", [0.0, 0.5, 1.0])
    def test_streamed_equals_reference(self, database, alpha):
        rng = random.Random(hash(alpha) & 0xFFFF)
        for case_index in range(4):
            allocator = ProactiveAllocator(
                database, alpha=alpha, strict_qos=rng.random() < 0.5, bnb_min_vms=0
            )
            servers = random_servers(rng, (4, 3, 3))
            requests = random_requests(rng, database)
            assert_equivalent(
                f"campaign alpha={alpha} case={case_index}",
                allocator,
                requests,
                servers,
            )
