"""Property-based tests for interval-weighted accounting and power
integration."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.common.quantities import integrate_power_samples
from repro.sim.accounting import (
    fractions_from_durations,
    weighted_energy,
    weighted_execution_time,
)

values = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
durations = st.lists(
    st.floats(min_value=0.01, max_value=1e5, allow_nan=False), min_size=1, max_size=10
)


class TestWeightedAverages:
    @given(durations, st.data())
    @settings(max_examples=60)
    def test_result_bounded_by_extremes(self, durs, data):
        weights = fractions_from_durations(durs)
        vals = data.draw(
            st.lists(values, min_size=len(weights), max_size=len(weights))
        )
        result = weighted_execution_time(list(zip(weights, vals)))
        assert min(vals) - 1e-6 <= result <= max(vals) + 1e-6

    @given(durations, values)
    @settings(max_examples=60)
    def test_constant_value_is_identity(self, durs, value):
        weights = fractions_from_durations(durs)
        result = weighted_energy([(w, value) for w in weights])
        assert abs(result - value) < max(1e-6, value * 1e-9)

    @given(durations)
    @settings(max_examples=60)
    def test_fractions_sum_to_one(self, durs):
        assert abs(sum(fractions_from_durations(durs)) - 1.0) < 1e-9

    @given(durations, st.data())
    @settings(max_examples=60)
    def test_scaling_values_scales_result(self, durs, data):
        weights = fractions_from_durations(durs)
        vals = data.draw(st.lists(values, min_size=len(weights), max_size=len(weights)))
        base = weighted_execution_time(list(zip(weights, vals)))
        doubled = weighted_execution_time([(w, 2 * v) for w, v in zip(weights, vals)])
        assert abs(doubled - 2 * base) < max(1e-6, base * 1e-9)


class TestPowerIntegration:
    @given(st.lists(st.floats(min_value=0, max_value=500), min_size=2, max_size=100))
    @settings(max_examples=60)
    def test_energy_bounded_by_peak_power(self, samples):
        duration = len(samples) - 1
        energy = integrate_power_samples(samples, 1.0)
        assert 0 <= energy <= max(samples) * duration + 1e-9

    @given(
        st.lists(st.floats(min_value=0, max_value=500), min_size=2, max_size=50),
        st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=60)
    def test_linear_in_period(self, samples, period):
        base = integrate_power_samples(samples, 1.0)
        scaled = integrate_power_samples(samples, period)
        assert abs(scaled - base * period) < 1e-6 * max(1.0, base)
