"""Property-based tests for the event queue."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import EventQueue

times = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=0, max_size=100
)


class TestEventQueueProperties:
    @given(times)
    @settings(max_examples=60)
    def test_pops_sorted(self, schedule_times):
        q: EventQueue[int] = EventQueue()
        for i, t in enumerate(schedule_times):
            q.schedule(t, i)
        popped = [q.pop()[0] for _ in range(len(schedule_times))]
        assert popped == sorted(popped)

    @given(times)
    @settings(max_examples=60)
    def test_all_payloads_delivered_once(self, schedule_times):
        q: EventQueue[int] = EventQueue()
        for i, t in enumerate(schedule_times):
            q.schedule(t, i)
        payloads = [q.pop()[1] for _ in range(len(schedule_times))]
        assert sorted(payloads) == list(range(len(schedule_times)))

    @given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), min_size=1, max_size=50))
    @settings(max_examples=60)
    def test_fifo_among_equal_times(self, batch):
        q: EventQueue[int] = EventQueue()
        t = 5.0
        for i in range(len(batch)):
            q.schedule(t, i)
        assert [q.pop()[1] for _ in batch] == list(range(len(batch)))

    @given(times)
    @settings(max_examples=40)
    def test_drain_equals_manual_pops(self, schedule_times):
        q1: EventQueue[int] = EventQueue()
        q2: EventQueue[int] = EventQueue()
        for i, t in enumerate(schedule_times):
            q1.schedule(t, i)
            q2.schedule(t, i)
        manual = []
        while q1:
            manual.append(q1.pop())
        drained = []
        q2.drain(lambda t, p: drained.append((t, p)))
        assert manual == drained
