"""Property-based tests for partition generation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partitions import bell_number, set_partitions, type_partitions


@st.composite
def small_counts(draw):
    return (
        draw(st.integers(min_value=0, max_value=4)),
        draw(st.integers(min_value=0, max_value=3)),
        draw(st.integers(min_value=0, max_value=3)),
    )


class TestSetPartitionProperties:
    @given(st.integers(min_value=0, max_value=7))
    def test_count_is_bell_number(self, n):
        assert sum(1 for _ in set_partitions(list(range(n)))) == bell_number(n)

    @given(st.lists(st.integers(), min_size=0, max_size=6, unique=True))
    def test_every_partition_is_exact_cover(self, items):
        for partition in set_partitions(items):
            flat = [x for block in partition for x in block]
            assert sorted(flat) == sorted(items)
            assert all(block for block in partition)

    @given(st.integers(min_value=1, max_value=6))
    def test_first_is_single_block_last_is_singletons(self, n):
        partitions = list(set_partitions(list(range(n))))
        assert len(partitions[0]) == 1  # all items together
        assert len(partitions[-1]) == n  # all singletons


class TestTypePartitionProperties:
    @given(small_counts())
    @settings(max_examples=40)
    def test_blocks_sum_to_counts(self, counts):
        for partition in type_partitions(counts):
            for dim in range(3):
                assert sum(block[dim] for block in partition) == counts[dim]

    @given(small_counts())
    @settings(max_examples=40)
    def test_canonical_and_unique(self, counts):
        seen = set()
        for partition in type_partitions(counts):
            assert list(partition) == sorted(partition, reverse=True)
            assert partition not in seen
            seen.add(partition)

    @given(
        st.tuples(
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=0, max_value=2),
            st.integers(min_value=0, max_value=2),
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_collapsed_set_partitions(self, counts):
        items = ["c"] * counts[0] + ["m"] * counts[1] + ["i"] * counts[2]

        def collapse(partition):
            keys = [
                (
                    sum(1 for x in block if x == "c"),
                    sum(1 for x in block if x == "m"),
                    sum(1 for x in block if x == "i"),
                )
                for block in partition
            ]
            return tuple(sorted(keys, reverse=True))

        expected = {collapse(p) for p in set_partitions(items)}
        got = set(type_partitions(counts))
        assert got == expected

    @given(small_counts(), st.integers(min_value=1, max_value=3))
    @settings(max_examples=40)
    def test_bounds_are_respected_and_complete(self, counts, bound):
        bounds = (bound, bound, bound)
        bounded = set(type_partitions(counts, bounds))
        unbounded = set(type_partitions(counts))
        filtered = {
            p
            for p in unbounded
            if all(b[0] <= bound and b[1] <= bound and b[2] <= bound for b in p)
        }
        assert bounded == filtered
