"""Property tests for the anytime allocation mode.

Three seeded claims:

* **Quality** -- on exact-affordable random worlds (batches <= 12) the
  forced-anytime plan scores within 5% of the exact optimum under the
  shared :func:`plan_objective`, and raises the same exception type
  whenever the exact path raises (strict and relaxed QoS alike).
* **Exactness below threshold** -- automatic mode selection returns
  plans bit-identical to a forced-exact allocator whenever the mode
  check decides exact, including batches past the VM-count floor whose
  partition space is still small.
* **Parallel determinism** -- ``run_evaluation`` with a (generous)
  ``time_budget_s`` stays bit-identical between ``jobs=1`` and
  ``jobs=2``: the deterministic search caps bind before the deadline,
  so the wall clock never influences the result.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.common.errors import AllocationError, ConfigurationError
from repro.core.allocator import ProactiveAllocator, VMRequest, plan_objective
from repro.experiments.config import SMALLER
from repro.experiments.evaluation import run_evaluation
from repro.obs.runtime import observed
from repro.testbed.benchmarks import WorkloadClass

from properties.test_allocator_equivalence_prop import (
    random_database,
    random_requests,
    random_servers,
)

#: The satellite's quality bound: anytime within 5% of exact.
QUALITY_BOUND = 1.05


def sized_requests(rng: random.Random, database, max_batch: int):
    """Like the equivalence suite's requests, but up to ``max_batch``."""
    classes = list(WorkloadClass)
    batch = [rng.choice(classes) for _ in range(rng.randint(1, max_batch))]
    with_deadlines = rng.random() < 0.5
    requests = []
    for index, workload_class in enumerate(batch):
        deadline = None
        if with_deadlines and rng.random() < 0.7:
            deadline = database.reference_time(workload_class) * rng.uniform(0.8, 8.0)
        requests.append(
            VMRequest(
                vm_id=f"v{index}",
                workload_class=workload_class,
                max_exec_time_s=deadline,
            )
        )
    return requests


def run_one(allocator, requests, servers):
    try:
        return allocator.allocate(requests, list(servers)), None
    except (AllocationError, ConfigurationError) as error:
        return None, error


def assert_quality(case, database, requests, servers, alpha, strict):
    exact = ProactiveAllocator(
        database, alpha=alpha, strict_qos=strict, anytime=False
    )
    anytime = ProactiveAllocator(
        database, alpha=alpha, strict_qos=strict, anytime=True
    )
    exact_plan, exact_error = run_one(exact, requests, servers)
    anytime_plan, anytime_error = run_one(anytime, requests, servers)
    if exact_error is not None:
        assert anytime_error is not None, (
            f"{case}: exact raised {type(exact_error).__name__} "
            f"but anytime returned a plan"
        )
        assert type(anytime_error) is type(exact_error), (
            f"{case}: {type(exact_error).__name__} != "
            f"{type(anytime_error).__name__}"
        )
        return
    assert anytime_error is None, (
        f"{case}: anytime raised {type(anytime_error).__name__} "
        f"({anytime_error}) but exact returned a plan"
    )
    exact_score = plan_objective(exact_plan, servers, database)
    anytime_score = plan_objective(anytime_plan, servers, database)
    assert anytime_score <= exact_score * QUALITY_BOUND + 1e-9, (
        f"{case}: anytime score {anytime_score:.6f} worse than "
        f"{QUALITY_BOUND}x exact {exact_score:.6f}"
    )


class TestAnytimeQuality:
    @pytest.mark.parametrize("seed", range(3))
    def test_relaxed_within_bound_of_exact(self, seed):
        rng = random.Random(0xBEA3 + seed)
        for case_index in range(8):
            database = random_database(rng)
            servers = random_servers(rng, database.grid_bounds)
            requests = sized_requests(rng, database, max_batch=12)
            alpha = rng.choice([0.0, 0.5, 1.0, round(rng.random(), 3)])
            assert_quality(
                f"seed={seed} case={case_index}",
                database,
                requests,
                servers,
                alpha,
                strict=False,
            )

    @pytest.mark.parametrize("seed", range(3))
    def test_strict_parity_and_quality(self, seed):
        rng = random.Random(0x57C1C7 + seed)
        for case_index in range(8):
            database = random_database(rng)
            servers = random_servers(rng, database.grid_bounds)
            requests = sized_requests(rng, database, max_batch=10)
            alpha = rng.choice([0.0, 0.5, 1.0])
            assert_quality(
                f"strict seed={seed} case={case_index}",
                database,
                requests,
                servers,
                alpha,
                strict=True,
            )


class TestExactBelowThreshold:
    @pytest.mark.parametrize("seed", range(3))
    def test_auto_mode_bit_identical_to_exact(self, seed):
        rng = random.Random(0xE8AC7 + seed)
        for case_index in range(8):
            database = random_database(rng)
            servers = random_servers(rng, database.grid_bounds)
            requests = random_requests(rng, database)  # batches 1..7
            alpha = rng.choice([0.0, 0.5, 1.0])
            auto = ProactiveAllocator(database, alpha=alpha, strict_qos=False)
            exact = ProactiveAllocator(
                database, alpha=alpha, strict_qos=False, anytime=False
            )
            auto_plan, auto_error = run_one(auto, requests, servers)
            exact_plan, exact_error = run_one(exact, requests, servers)
            case = f"seed={seed} case={case_index}"
            if exact_error is not None:
                assert auto_error is not None and type(auto_error) is type(
                    exact_error
                ), case
                continue
            assert auto_error is None, case
            assert auto_plan == exact_plan, case
            assert auto_plan.search_provenance.mode == "exact", case

    @pytest.mark.parametrize("seed", range(3))
    def test_mode_check_batches_stay_exact_when_affordable(self, seed):
        # Single-class batches past the VM-count floor: the partition
        # space stays tiny under the small random bounds, so the mode
        # check must decide exact and the plans must stay bit-identical.
        rng = random.Random(0x13F100 + seed)
        for case_index in range(4):
            database = random_database(rng)
            workload_class = rng.choice(list(WorkloadClass))
            n = rng.randint(13, 16)
            requests = [
                VMRequest(f"v{i}", workload_class) for i in range(n)
            ]
            servers = [
                server
                for server in random_servers(rng, database.grid_bounds)
            ] + random_servers(rng, database.grid_bounds)
            with observed() as bundle:
                auto = ProactiveAllocator(database, strict_qos=False)
                auto_plan, auto_error = run_one(auto, requests, servers)
                counters = bundle.snapshot()["counters"]
            exact = ProactiveAllocator(
                database, strict_qos=False, anytime=False
            )
            exact_plan, exact_error = run_one(exact, requests, servers)
            case = f"seed={seed} case={case_index} n={n}"
            if exact_error is not None:
                assert auto_error is not None and type(auto_error) is type(
                    exact_error
                ), case
                continue
            assert auto_error is None, case
            # The floor was crossed, so the check ran (and decided exact).
            assert (
                counters.get('allocator.mode_checks{outcome="computed"}', 0)
                == 1
            ), case
            assert auto_plan == exact_plan, case
            assert auto_plan.search_provenance.mode == "exact", case


class TestParallelDeterminismWithBudget:
    def run_once(self, campaign, config, jobs):
        with observed() as bundle:
            result = run_evaluation(
                configs=[config],
                campaign=campaign,
                jobs=jobs,
                time_budget_s=30.0,
            )
            snapshot = bundle.snapshot()
        return result, snapshot

    def test_jobs_identity_under_time_budget(self, campaign):
        config = SMALLER.scaled(300)
        serial, serial_snapshot = self.run_once(campaign, config, jobs=1)
        parallel, parallel_snapshot = self.run_once(campaign, config, jobs=2)
        assert serial.outcomes == parallel.outcomes
        assert serial == parallel
        assert json.dumps(serial_snapshot, sort_keys=True) == json.dumps(
            parallel_snapshot, sort_keys=True
        )
