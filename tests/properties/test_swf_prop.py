"""Property-based tests for SWF round-trips and cleaning invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.cleaning import clean_trace
from repro.workloads.swf import JobStatus, SWFRecord, merge_swf, read_swf, write_swf


field = st.integers(min_value=-1, max_value=10_000_000)
status = st.sampled_from([0, 1, 2, 3, 5, -1])


@st.composite
def swf_records(draw):
    return SWFRecord(
        job_number=draw(st.integers(min_value=1, max_value=10_000)),
        submit_time=draw(st.integers(min_value=0, max_value=1_000_000)),
        wait_time=draw(field),
        run_time=draw(field),
        allocated_procs=draw(st.integers(min_value=-1, max_value=128)),
        status=draw(status),
        user_id=draw(field),
    )


class TestSWFRoundTrip:
    @given(records=st.lists(swf_records(), max_size=30))
    @settings(max_examples=30)
    def test_file_roundtrip_identity(self, tmp_path_factory, records):
        path = tmp_path_factory.mktemp("swf") / "trace.swf"
        write_swf(records, path)
        _, loaded = read_swf(path)
        assert loaded == records

    @given(swf_records())
    def test_fields_roundtrip(self, record):
        assert SWFRecord.from_fields(record.as_fields()) == record


class TestMergeProperties:
    @given(st.lists(st.lists(swf_records(), max_size=10), max_size=4))
    @settings(max_examples=30)
    def test_merge_preserves_multiset_of_submits(self, traces):
        merged = merge_swf(traces)
        all_submits = sorted(r.submit_time for t in traces for r in t)
        assert sorted(r.submit_time for r in merged) == all_submits

    @given(st.lists(st.lists(swf_records(), max_size=10), max_size=4))
    @settings(max_examples=30)
    def test_merge_sorted_and_densely_numbered(self, traces):
        merged = merge_swf(traces)
        submits = [r.submit_time for r in merged]
        assert submits == sorted(submits)
        assert [r.job_number for r in merged] == list(range(1, len(merged) + 1))


class TestCleaningProperties:
    @given(st.lists(swf_records(), max_size=50))
    @settings(max_examples=50)
    def test_report_partitions_the_input(self, records):
        kept, report = clean_trace(records)
        assert report.total == len(records)
        assert report.kept == len(kept)
        assert report.kept + report.failed + report.cancelled + report.anomalies == report.total

    @given(st.lists(swf_records(), max_size=50))
    @settings(max_examples=50)
    def test_survivors_are_sound(self, records):
        kept, _ = clean_trace(records)
        for record in kept:
            assert record.job_status is JobStatus.COMPLETED
            assert record.run_time > 0
            assert record.submit_time >= 0
            assert record.allocated_procs != 0

    @given(st.lists(swf_records(), max_size=50))
    @settings(max_examples=50)
    def test_idempotent(self, records):
        once, _ = clean_trace(records)
        twice, report = clean_trace(once)
        assert twice == once
        assert report.removed == 0
