"""Property tests for the scaled simulation core (PR 9).

Three families of randomized evidence:

* the indexed event loop (cached views, O(1) counters, free-capacity
  candidates) is *bit-identical* to the retained naive reference on
  random worlds, including under random fault schedules;
* the chronicles' incremental aggregates equal a naive recomputation
  over the full interval log, exactly (same operand order);
* the cluster index never drifts from ground truth under random
  event storms driven through the real ServerRuntime mutation API.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SimulationError
from repro.faults import random_crash_spec, materialize
from repro.sim.datacenter import DatacenterConfig, DatacenterSimulator
from repro.sim.index import ClusterIndex
from repro.sim.server import ServerRuntime
from repro.sim.shard import ShardPlan, partition_jobs, partition_schedule
from repro.sim.vm import SimVM
from repro.strategies.bestfit import BestFitStrategy
from repro.strategies.firstfit import FirstFitStrategy
from repro.strategies.worstfit import WorstFitStrategy
from repro.testbed.benchmarks import WorkloadClass
from repro.testbed.spec import default_server
from repro.workloads.assignment import PreparedJob
from repro.workloads.qos import QoSPolicy

STRATEGIES = {
    "FF": FirstFitStrategy,
    "BF": BestFitStrategy,
    "WF": WorstFitStrategy,
}


@st.composite
def job_batches(draw, max_jobs=10):
    n = draw(st.integers(min_value=1, max_value=max_jobs))
    jobs = []
    t = 0.0
    for i in range(n):
        t += draw(st.floats(min_value=0.0, max_value=500.0))
        jobs.append(
            PreparedJob(
                job_id=i + 1,
                submit_time_s=t,
                workload_class=draw(st.sampled_from(list(WorkloadClass))),
                n_vms=draw(st.integers(min_value=1, max_value=4)),
                burst_id=i,
            )
        )
    return jobs


def run(jobs, *, indexed, n_servers, strategy, faults=None, chronicles=False):
    config = DatacenterConfig(
        n_servers=n_servers, indexed=indexed, record_chronicles=chronicles
    )
    schedule = materialize(faults, n_servers) if faults is not None else None
    sim = DatacenterSimulator(config)
    return sim.run(jobs, strategy, QoSPolicy.unlimited(), faults=schedule)


class TestIndexedBitIdentity:
    @given(
        job_batches(),
        st.integers(min_value=1, max_value=6),
        st.sampled_from(sorted(STRATEGIES)),
        st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=30, deadline=None)
    def test_indexed_equals_naive(self, jobs, n_servers, name, multiplex):
        strategy = STRATEGIES[name](multiplex)
        naive = run(jobs, indexed=False, n_servers=n_servers, strategy=strategy)
        fast = run(jobs, indexed=True, n_servers=n_servers, strategy=strategy)
        assert fast == naive  # outcomes, metrics, energies: exact

    @given(
        job_batches(max_jobs=8),
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=2**31 - 1),
        st.floats(min_value=0.5, max_value=8.0),
        st.sampled_from([None, 60.0, 600.0]),
    )
    @settings(max_examples=20, deadline=None)
    def test_indexed_equals_naive_under_faults(
        self, jobs, n_servers, seed, rate, recover
    ):
        spec = random_crash_spec(
            seed=seed,
            crash_rate_per_1000s=rate,
            window_s=(0.0, 5000.0),
            recover_after_s=recover,
        )
        results = []
        for indexed in (False, True):
            # Unrecovered crashes can strand jobs forever; both modes
            # must then refuse identically.
            try:
                outcome = run(
                    jobs,
                    indexed=indexed,
                    n_servers=n_servers,
                    strategy=FirstFitStrategy(2),
                    faults=spec,
                )
            except SimulationError as error:
                outcome = ("error", str(error))
            results.append(outcome)
        assert results[0] == results[1]
        if not isinstance(results[0], tuple):
            assert results[0].fault_log == results[1].fault_log


class TestIncrementalAccounting:
    @given(
        job_batches(max_jobs=8),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=20, deadline=None)
    def test_running_aggregates_equal_naive_recomputation(self, jobs, n_servers):
        result = run(
            jobs,
            indexed=True,
            n_servers=n_servers,
            strategy=FirstFitStrategy(2),
            chronicles=True,
        )
        for chronicle in result.chronicles:
            intervals = list(chronicle.iter_all())
            # Exact equality: the running sums fold the same operands
            # in the same order as these recomputations.
            assert chronicle.total_energy_j() == sum(i.energy_j for i in intervals)
            assert chronicle.busy_energy_j() == sum(
                i.energy_j for i in intervals if i.vm_ids
            )
            assert chronicle.idle_energy_j() == sum(
                i.energy_j for i in intervals if not i.vm_ids
            )
            vms = {vm for i in intervals for vm in i.vm_ids}
            for vm in vms:
                assert chronicle.vm_execution_time_s(vm) == sum(
                    i.duration_s for i in intervals if vm in i.vm_ids
                )


class TestIndexDriftStorm:
    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_audit_clean_after_random_event_storm(self, data):
        n = data.draw(st.integers(min_value=1, max_value=5))
        servers = [
            ServerRuntime(f"s{i:04d}", default_server()) for i in range(n)
        ]
        cluster = ClusterIndex(n)
        for slot, server in enumerate(servers):
            server.bind_index(cluster, slot)
        now = 0.0
        counter = 0
        for _ in range(data.draw(st.integers(min_value=1, max_value=40))):
            now += data.draw(st.floats(min_value=0.1, max_value=50.0))
            slot = data.draw(st.integers(min_value=0, max_value=n - 1))
            server = servers[slot]
            op = data.draw(st.sampled_from(["add", "sync", "fail", "recover", "power"]))
            server.sync(now)  # the driver's pre-mutation contract
            if op == "add" and not server.failed and server.n_vms < 8:
                counter += 1
                vm = SimVM(
                    vm_id=f"v{counter}",
                    job_id=counter,
                    workload_class=data.draw(st.sampled_from(list(WorkloadClass))),
                    submit_time_s=now,
                )
                server.add_vm(vm, now)
            elif op == "fail" and not server.failed:
                server.fail(now)
            elif op == "recover" and server.failed:
                server.recover(now)
            elif op == "power" and not server.failed and server.n_vms == 0:
                server.power_on(now)
            assert cluster.audit(servers) == []
        assert cluster.active_vms == sum(s.n_vms for s in servers)


class TestShardPartitionLaws:
    @given(
        job_batches(max_jobs=12),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_jobs_partition_exactly(self, jobs, n_shards, extra_servers):
        n_servers = n_shards + extra_servers - 1
        plan = ShardPlan(n_servers=n_servers, n_shards=n_shards)
        groups, job_to_shard = partition_jobs(jobs, plan)
        # Every job appears exactly once, on the shard the map names.
        seen = sorted(j.job_id for group in groups for j in group)
        assert seen == sorted(j.job_id for j in jobs)
        for shard, group in enumerate(groups):
            assert all(job_to_shard[j.job_id] == shard for j in group)
        # The server ranges partition the cluster.
        covered = [
            plan.offset(s) + i for s in range(n_shards) for i in range(plan.size(s))
        ]
        assert covered == list(range(n_servers))

    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=2, max_value=12),
        st.integers(min_value=1, max_value=4),
        st.floats(min_value=0.5, max_value=10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_fault_timeline_partitions_exactly(self, seed, n_servers, n_shards, rate):
        if n_shards > n_servers:
            n_shards = n_servers
        spec = random_crash_spec(
            seed=seed, crash_rate_per_1000s=rate, recover_after_s=60.0
        )
        schedule = materialize(spec, n_servers)
        plan = ShardPlan(n_servers=n_servers, n_shards=n_shards)
        shards = partition_schedule(schedule, plan, {})
        assert sum(len(s.timeline) for s in shards) == len(schedule.timeline)
        rebuilt = []
        for shard_id, shard in enumerate(shards):
            for entry in shard.timeline:
                assert 0 <= entry.server < plan.size(shard_id)
                rebuilt.append(
                    (entry.time_s, entry.action, entry.server + plan.offset(shard_id))
                )
        original = [(e.time_s, e.action, e.server) for e in schedule.timeline]
        assert sorted(rebuilt) == sorted(original)
