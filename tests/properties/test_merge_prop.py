"""Order-independence properties of cross-process registry merging.

``merge_state`` is what makes a fanned-out run end bit-identical to a
serial one, so its algebra matters: counters and histogram tallies are
commutative (any permutation of worker dumps merges to the same
state), while gauge *values* are documented last-writer -- merging in
task order reproduces the serial outcome -- with permutation-invariant
extrema and update counts.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.registry import MetricsRegistry

NAMES = ["a.count", "b.count", "c.gauge", "d.hist"]

op = st.one_of(
    st.tuples(
        st.just("counter"),
        st.sampled_from(NAMES[:2]),
        st.integers(min_value=1, max_value=100),
    ),
    st.tuples(
        st.just("gauge"),
        st.just(NAMES[2]),
        st.integers(min_value=-50, max_value=50),
    ),
    st.tuples(
        st.just("histogram"),
        st.just(NAMES[3]),
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    ),
)

#: Each worker is a short program of instrument updates.
worker_programs = st.lists(
    st.lists(op, min_size=0, max_size=8), min_size=1, max_size=6
)


def run_program(program):
    registry = MetricsRegistry()
    for kind, name, value in program:
        if kind == "counter":
            registry.counter(name).inc(value)
        elif kind == "gauge":
            registry.gauge(name).set(value)
        else:
            registry.histogram(name, unit="s").observe(value)
    return registry.dump_state()


def merged(dumps):
    registry = MetricsRegistry()
    for dump in dumps:
        registry.merge_state(dump)
    return registry.dump_state()


def split(dump):
    """(order-invariant records, gauge values, histogram sums).

    Gauge *values* are last-writer (order-dependent by design) and a
    histogram's ``sum`` accumulates floats, so permuting the merge
    order can move it by rounding ulps; both are pulled out of the
    exact comparison and asserted separately.
    """
    invariant = []
    gauge_values = {}
    histogram_sums = {}
    for record in dump:
        if record["kind"] == "gauge":
            gauge_values[record["name"]] = record["value"]
            invariant.append(
                {key: record[key] for key in ("name", "kind", "max", "min", "updates")}
            )
        elif record["kind"] == "histogram":
            histogram_sums[record["name"]] = record["sum"]
            invariant.append({k: v for k, v in record.items() if k != "sum"})
        else:
            invariant.append(record)
    return invariant, gauge_values, histogram_sums


class TestMergePermutationInvariance:
    @given(worker_programs, st.randoms(use_true_random=False))
    @settings(max_examples=80, derandomize=True)
    def test_counters_histograms_and_gauge_extrema_commute(self, programs, rng):
        dumps = [run_program(program) for program in programs]
        shuffled = list(dumps)
        rng.shuffle(shuffled)
        base_invariant, _, base_sums = split(merged(dumps))
        shuffled_invariant, _, shuffled_sums = split(merged(shuffled))
        assert base_invariant == shuffled_invariant
        assert shuffled_sums == pytest.approx(base_sums)

    @given(worker_programs)
    @settings(max_examples=80, derandomize=True)
    def test_gauge_value_is_last_writer_in_merge_order(self, programs):
        dumps = [run_program(program) for program in programs]
        _, gauge_values, _ = split(merged(dumps))
        last_written = {}
        for program in programs:  # merge order == task order
            for kind, name, value in program:
                if kind == "gauge":
                    last_written[name] = value
        assert gauge_values == last_written

    @given(worker_programs)
    @settings(max_examples=60, derandomize=True)
    def test_merge_equals_one_serial_registry(self, programs):
        # Folding per-worker dumps in task order must reproduce the
        # registry a single serial run of all programs would build.
        serial = MetricsRegistry()
        for program in programs:
            for kind, name, value in program:
                if kind == "counter":
                    serial.counter(name).inc(value)
                elif kind == "gauge":
                    serial.gauge(name).set(value)
                else:
                    serial.histogram(name, unit="s").observe(value)
        merged_invariant, merged_gauges, merged_sums = split(
            merged(run_program(p) for p in programs)
        )
        serial_invariant, serial_gauges, serial_sums = split(serial.dump_state())
        assert merged_invariant == serial_invariant
        assert merged_gauges == serial_gauges
        # The merge adds per-worker subtotals where the serial run adds
        # one observation at a time: equal up to float associativity.
        assert merged_sums == pytest.approx(serial_sums)

    @given(worker_programs)
    @settings(max_examples=40, derandomize=True)
    def test_merge_is_idempotent_on_empty_dumps(self, programs):
        dumps = [run_program(program) for program in programs]
        with_empties = []
        for dump in dumps:
            with_empties.extend([[], dump, []])
        assert merged(with_empties) == merged(dumps)
