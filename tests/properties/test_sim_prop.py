"""Property-based tests for simulation conservation invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.datacenter import DatacenterConfig, DatacenterSimulator
from repro.strategies.firstfit import FirstFitStrategy
from repro.testbed.benchmarks import WorkloadClass
from repro.workloads.assignment import PreparedJob
from repro.workloads.qos import QoSPolicy


@st.composite
def job_batches(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    jobs = []
    t = 0.0
    for i in range(n):
        t += draw(st.floats(min_value=0.0, max_value=400.0))
        jobs.append(
            PreparedJob(
                job_id=i + 1,
                submit_time_s=t,
                workload_class=draw(st.sampled_from(list(WorkloadClass))),
                n_vms=draw(st.integers(min_value=1, max_value=4)),
                burst_id=i,
            )
        )
    return jobs


class TestSimulationInvariants:
    @given(job_batches(), st.integers(min_value=1, max_value=3), st.integers(min_value=1, max_value=3))
    @settings(max_examples=25, deadline=None)
    def test_conservation_and_ordering(self, jobs, n_servers, multiplex):
        sim = DatacenterSimulator(DatacenterConfig(n_servers=n_servers))
        result = sim.run(jobs, FirstFitStrategy(multiplex), QoSPolicy.unlimited())

        # Every job completes exactly once.
        assert sorted(o.job_id for o in result.outcomes) == sorted(j.job_id for j in jobs)
        # Completions never precede submissions (causality).
        for outcome in result.outcomes:
            assert outcome.completion_time_s > outcome.submit_time_s
        # Each job runs at least its class's solo reference time.
        reference = {"cpu": 600.0, "mem": 700.0, "io": 800.0}
        for outcome in result.outcomes:
            assert outcome.response_time_s >= reference[outcome.workload_class] * 0.999
        # Energy is positive and split consistently.
        metrics = result.metrics
        assert metrics.energy_j > 0
        assert metrics.energy_j == metrics.busy_energy_j + metrics.idle_energy_j
        # Makespan covers the latest completion.
        last = max(o.completion_time_s for o in result.outcomes)
        first_submit = min(o.submit_time_s for o in result.outcomes)
        assert metrics.makespan_s == last - first_submit

    @given(job_batches())
    @settings(max_examples=15, deadline=None)
    def test_more_servers_never_hurt_makespan(self, jobs):
        small = DatacenterSimulator(DatacenterConfig(n_servers=1))
        large = DatacenterSimulator(DatacenterConfig(n_servers=4))
        strategy = FirstFitStrategy(1)
        unlimited = QoSPolicy.unlimited()
        makespan_small = small.run(jobs, strategy, unlimited).metrics.makespan_s
        makespan_large = large.run(jobs, strategy, unlimited).metrics.makespan_s
        assert makespan_large <= makespan_small + 1e-6
