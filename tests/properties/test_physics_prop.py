"""Property-based tests for the testbed physics.

These pin the emulator's qualitative laws -- the properties the
paper's empirical observations rely on -- rather than calibrated
numbers.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.testbed.benchmarks import BENCHMARKS, get_benchmark
from repro.testbed.contention import ActiveVM, MixModel
from repro.testbed.power import mix_power
from repro.testbed.runner import VMInstance, run_mix
from repro.testbed.spec import default_server

bench_names = st.sampled_from(sorted(BENCHMARKS))
small_mixes = st.lists(bench_names, min_size=1, max_size=8)


def active(names):
    return [ActiveVM(get_benchmark(n)) for n in names]


class TestContentionLaws:
    @given(small_mixes)
    @settings(max_examples=60)
    def test_slowdowns_at_least_one(self, names):
        model = MixModel(default_server())
        for value in model.slowdowns(active(names)):
            assert value >= 1.0 - 1e-12

    @given(small_mixes, bench_names)
    @settings(max_examples=60)
    def test_adding_a_vm_never_speeds_up_others(self, names, extra):
        model = MixModel(default_server())
        mix = active(names)
        bigger = mix + [ActiveVM(get_benchmark(extra))]
        before = model.slowdowns(mix)
        after = model.slowdowns(bigger)[: len(mix)]
        for b, a in zip(before, after):
            assert a >= b - 1e-12

    @given(small_mixes)
    @settings(max_examples=60)
    def test_power_monotone_in_mix(self, names):
        model = MixModel(default_server())
        mix = active(names)
        assert mix_power(model, mix) >= mix_power(model, mix[:-1] if len(mix) > 1 else [])

    @given(small_mixes)
    @settings(max_examples=60)
    def test_power_bounded(self, names):
        model = MixModel(default_server())
        spec = default_server()
        draw = mix_power(model, active(names))
        assert spec.power.idle_w <= draw <= spec.power.max_w + spec.power.per_vm_w * len(names)


class TestRunnerLaws:
    @given(st.lists(bench_names, min_size=1, max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_run_invariants(self, names):
        server = default_server()
        vms = [VMInstance(f"v{i}", get_benchmark(n)) for i, n in enumerate(names)]
        result = run_mix(server, vms)
        # Each VM takes at least its solo reference time.
        for outcome in result.outcomes:
            t_ref = get_benchmark(outcome.benchmark_name).t_ref_s
            assert outcome.exec_time_s >= t_ref * 0.999
        # Energy equals the piecewise integral of the power profile.
        integral = sum((t1 - t0) * w for t0, t1, w in result.segments)
        assert abs(result.energy_j - integral) < 1e-6
        # Total time is the slowest VM.
        assert result.total_time_s == max(o.finish_s for o in result.outcomes)
        # Energy at least idle draw over the whole run.
        assert result.energy_j >= server.power.idle_w * result.total_time_s * 0.999

    @given(st.lists(bench_names, min_size=1, max_size=5))
    @settings(max_examples=15, deadline=None)
    def test_deterministic(self, names):
        server = default_server()
        vms = [VMInstance(f"v{i}", get_benchmark(n)) for i, n in enumerate(names)]
        a = run_mix(server, vms)
        b = run_mix(server, vms)
        assert a.total_time_s == b.total_time_s
        assert a.energy_j == b.energy_j

    @given(bench_names, st.integers(min_value=2, max_value=10))
    @settings(max_examples=20, deadline=None)
    def test_total_time_monotone_in_count(self, name, n):
        server = default_server()
        bench = get_benchmark(name)
        smaller = run_mix(server, [VMInstance(f"v{i}", bench) for i in range(n - 1)])
        bigger = run_mix(server, [VMInstance(f"v{i}", bench) for i in range(n)])
        assert bigger.total_time_s >= smaller.total_time_s - 1e-9
