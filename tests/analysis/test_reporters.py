"""Reporter contracts: JSON/SARIF schemas are stable, the text is readable."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import load_baseline, run_lint, to_json, to_sarif, to_text, write_baseline
from repro.analysis.registry import rule_ids
from repro.analysis.reporters import JSON_SCHEMA_VERSION, SARIF_SCHEMA_URI, SARIF_VERSION

FIXTURES = Path(__file__).parent / "fixtures"


class TestJsonReporter:
    def test_schema_keys_and_types(self):
        result = run_lint([FIXTURES / "bad_float_eq.py"], rules={"float-equality"})
        document = json.loads(to_json(result))
        assert set(document) == {
            "schema_version",
            "version",
            "tool",
            "checked_files",
            "n_baselined",
            "n_violations",
            "violations",
        }
        assert document["version"] == JSON_SCHEMA_VERSION
        assert document["tool"] == "repro.analysis"
        # The reporter cannot import upward; its literal wire version
        # must track repro.service.schema.SCHEMA_VERSION.
        from repro.service.schema import SCHEMA_VERSION

        assert document["schema_version"] == SCHEMA_VERSION
        assert document["checked_files"] == 1
        assert document["n_baselined"] == 0
        assert document["n_violations"] == len(document["violations"]) > 0
        for entry in document["violations"]:
            assert set(entry) == {"rule", "path", "line", "col", "message"}
            assert isinstance(entry["line"], int)
            assert isinstance(entry["col"], int)

    def test_key_order_is_stable_and_sorted(self):
        result = run_lint([FIXTURES / "bad_float_eq.py"], rules={"float-equality"})
        rendered = to_json(result)
        # Byte-stable: same tree, same report.
        assert rendered == to_json(result)
        # Keys are emitted sorted at both levels.
        document = json.loads(rendered)
        assert list(json.loads(rendered)) == sorted(document)
        first = rendered.index("{", 1)
        assert rendered.index('"checked_files"') < rendered.index('"n_violations"') < first

    def test_violations_ordered_by_position(self):
        result = run_lint([FIXTURES])
        entries = json.loads(to_json(result))["violations"]
        keys = [(e["path"], e["line"], e["col"], e["rule"]) for e in entries]
        assert keys == sorted(keys)

    def test_baselined_count_round_trips(self, tmp_path):
        raw = run_lint([FIXTURES / "bad_float_eq.py"], rules={"float-equality"})
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, raw.violations)
        clean = run_lint(
            [FIXTURES / "bad_float_eq.py"],
            rules={"float-equality"},
            baseline=load_baseline(baseline_path),
        )
        assert clean.ok
        document = json.loads(to_json(clean))
        assert document["n_baselined"] == len(raw.violations)
        assert document["n_violations"] == 0


class TestTextReporter:
    def test_one_line_per_finding_plus_summary(self):
        result = run_lint([FIXTURES / "bad_except.py"], rules={"except-bare"})
        text = to_text(result)
        lines = text.splitlines()
        assert len(lines) == 2
        assert "bad_except.py" in lines[0]
        assert "except-bare" in lines[0]
        assert lines[1] == "1 violation in 1 checked file(s)"

    def test_clean_run_prints_summary_only(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n", encoding="utf-8")
        result = run_lint([clean])
        assert to_text(result) == "0 violations in 1 checked file(s)"

    def test_baseline_acceptance_is_reported(self, tmp_path):
        raw = run_lint([FIXTURES / "bad_except.py"], rules={"except-bare"})
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, raw.violations)
        clean = run_lint(
            [FIXTURES / "bad_except.py"],
            rules={"except-bare"},
            baseline=load_baseline(baseline_path),
        )
        assert to_text(clean).endswith("(1 accepted by baseline)")


class TestSarifReporter:
    def result(self):
        return run_lint([FIXTURES / "bad_wallclock.py"], rules={"determinism-wallclock"})

    def test_log_structure_follows_the_spec(self):
        document = json.loads(to_sarif(self.result()))
        assert document["$schema"] == SARIF_SCHEMA_URI
        assert document["version"] == SARIF_VERSION == "2.1.0"
        assert len(document["runs"]) == 1
        run = document["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        # The full catalog travels in the log, fired or not (plus the
        # engine's parse-error vocabulary).
        listed = {entry["id"] for entry in driver["rules"]}
        assert rule_ids() <= listed
        assert "parse-error" in listed
        for entry in driver["rules"]:
            assert entry["shortDescription"]["text"]

    def test_results_reference_rules_by_id_and_index(self):
        document = json.loads(to_sarif(self.result()))
        run = document["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        assert len(run["results"]) == 3  # bad_wallclock's three reads
        for entry in run["results"]:
            assert entry["level"] == "error"
            assert entry["message"]["text"]
            assert rules[entry["ruleIndex"]]["id"] == entry["ruleId"]
            location = entry["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uri"].endswith("bad_wallclock.py")
            assert "\\" not in location["artifactLocation"]["uri"]
            region = location["region"]
            assert region["startLine"] >= 1
            assert region["startColumn"] >= 1  # SARIF columns are 1-based

    def test_byte_stable_across_equal_runs(self):
        assert to_sarif(self.result()) == to_sarif(self.result())
        rendered = to_sarif(self.result())
        document = json.loads(rendered)
        assert list(document) == sorted(document)  # sort_keys holds

    def test_clean_run_has_empty_results(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n", encoding="utf-8")
        document = json.loads(to_sarif(run_lint([clean])))
        assert document["runs"][0]["results"] == []
