"""Reporter contracts: the JSON schema is stable, the text is readable."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import run_lint, to_json, to_text
from repro.analysis.reporters import JSON_SCHEMA_VERSION

FIXTURES = Path(__file__).parent / "fixtures"


class TestJsonReporter:
    def test_schema_keys_and_types(self):
        result = run_lint([FIXTURES / "bad_float_eq.py"], rules={"float-equality"})
        document = json.loads(to_json(result))
        assert set(document) == {
            "schema_version",
            "version",
            "tool",
            "checked_files",
            "n_violations",
            "violations",
        }
        assert document["version"] == JSON_SCHEMA_VERSION
        assert document["tool"] == "repro.analysis"
        # The reporter cannot import upward; its literal wire version
        # must track repro.service.schema.SCHEMA_VERSION.
        from repro.service.schema import SCHEMA_VERSION

        assert document["schema_version"] == SCHEMA_VERSION
        assert document["checked_files"] == 1
        assert document["n_violations"] == len(document["violations"]) > 0
        for entry in document["violations"]:
            assert set(entry) == {"rule", "path", "line", "col", "message"}
            assert isinstance(entry["line"], int)
            assert isinstance(entry["col"], int)

    def test_key_order_is_stable_and_sorted(self):
        result = run_lint([FIXTURES / "bad_float_eq.py"], rules={"float-equality"})
        rendered = to_json(result)
        # Byte-stable: same tree, same report.
        assert rendered == to_json(result)
        # Keys are emitted sorted at both levels.
        document = json.loads(rendered)
        assert list(json.loads(rendered)) == sorted(document)
        first = rendered.index("{", 1)
        assert rendered.index('"checked_files"') < rendered.index('"n_violations"') < first

    def test_violations_ordered_by_position(self):
        result = run_lint([FIXTURES])
        entries = json.loads(to_json(result))["violations"]
        keys = [(e["path"], e["line"], e["col"], e["rule"]) for e in entries]
        assert keys == sorted(keys)


class TestTextReporter:
    def test_one_line_per_finding_plus_summary(self):
        result = run_lint([FIXTURES / "bad_except.py"], rules={"except-bare"})
        text = to_text(result)
        lines = text.splitlines()
        assert len(lines) == 2
        assert "bad_except.py" in lines[0]
        assert "except-bare" in lines[0]
        assert lines[1] == "1 violation in 1 checked file(s)"

    def test_clean_run_prints_summary_only(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n", encoding="utf-8")
        result = run_lint([clean])
        assert to_text(result) == "0 violations in 1 checked file(s)"
