# repro-fixture-module: repro.sim.okclock
"""Golden fixture: real violations, each correctly suppressed.

Exercises all three directive placements (trailing, standalone line
above, file-level); the engine must report nothing for this file.
"""

# repro: allow-file determinism-rng -- fixture demonstrates file-level allows

import random
import time


def trailing(started: float) -> float:
    return time.time() - started  # repro: allow determinism-wallclock, determinism-taint -- demo


def preceding() -> float:
    # repro: allow determinism-wallclock, determinism-taint -- demo
    return time.perf_counter()


def jitter() -> float:
    return random.random()  # repro: allow determinism-taint -- demo
