# repro-fixture-module: repro.core.badanytime
"""Golden fixture: an anytime-style search module with unmanaged
randomness and an unsuppressed wall-clock deadline read.

The real :mod:`repro.core.anytime` derives every random draw from
``SeedSequenceFactory`` children and carries an explicit suppression on
its opt-in deadline reads; this twin proves the determinism rules keep
covering the ``repro.core`` layer the module lives in.
"""

import random  # expect determinism-rng
import time


def shuffle_neighbors(neighbors):
    random.shuffle(neighbors)  # stdlib global RNG, not a seeded child
    return neighbors


def deadline_expired(started: float, budget_s: float) -> bool:
    return time.monotonic() - started > budget_s  # expect determinism-wallclock
