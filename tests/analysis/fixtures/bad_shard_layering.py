# repro-fixture-module: repro.sim.badshard
"""Golden fixture: the sharded path inverting the sim/exec layering.

Shard planning and merging belong to ``repro.sim.shard`` (pure
bookkeeping); fanning shards over the pool belongs to
``repro.exec.sharded``.  A shard helper that imports the execution
engine from inside ``sim`` collapses that split.
"""

from repro.exec.sharded import run_sharded  # expect layering-import (matrix)

__all__ = ["run_sharded"]
