# repro-fixture-module: repro.sim.badsuppress
"""Golden fixture: suppression directives that must be rejected."""

VALUE = 1  # repro: allow no-such-rule -- typoed id, expect suppression-unknown-rule

# repro: allowance float-equality
# (the line above mentions 'repro:' but does not parse: expect
# suppression-unknown-rule for the malformed directive)
OTHER = 2
