# repro-fixture-module: repro.strategies.badrng
"""Golden fixture: unmanaged randomness inside a simulated layer."""

import random  # expect determinism-rng

import numpy as np


def pick(values):
    return random.choice(values)


def noise():
    np.random.seed(7)  # expect determinism-rng
    return np.random.default_rng()  # expect determinism-rng
