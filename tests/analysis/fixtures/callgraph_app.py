# repro-fixture-module: repro.experiments.cgapp
"""Golden fixture: the consumer side of the call-graph resolver tests.

Exercises aliased imports, local-variable type inference
(``w = W()`` then ``w.ping()``), method resolution through a base
class, and ``functools.partial`` edge-through.
"""

import functools

from repro.experiments.cglib import Widget as W
from repro.experiments.cglib import helper as aliased_helper


def run() -> int:
    w = W()
    total = w.ping()
    bound = functools.partial(aliased_helper, total)
    return bound()
