# repro-fixture-module: repro.sim.badclock
"""Golden fixture: wall-clock reads inside a simulated layer."""

import time
from datetime import datetime
from time import perf_counter as pc


def stamp() -> float:
    return time.time()  # expect determinism-wallclock


def latency() -> float:
    return pc()  # expect determinism-wallclock


def when() -> str:
    return datetime.now().isoformat()  # expect determinism-wallclock
