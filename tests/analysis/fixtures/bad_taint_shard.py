# repro-fixture-module: repro.sim.badmerge
"""Golden fixture: nondeterminism reaching the sharded merge path.

The merge of shard results must be a pure function of the shard
decomposition (DESIGN.md "Simulation at scale").  This merge breaks it
twice: the tie-break consults the wall clock through the shared
helper (``repro.common.badhelper``), and shard bookkeeping iterates an
unordered set -- both only visible to the interprocedural taint rule
from inside a protected ``sim`` module.
"""

from repro.common.badhelper import leak_now


def _tie_break(outcomes) -> float:
    return leak_now()


def merge_shards(shard_results):
    order = sorted(shard_results, key=_tie_break)
    return order, [entry for entry in {id(result) for result in shard_results}]
