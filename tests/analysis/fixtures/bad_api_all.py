# repro-fixture-module: repro.badapi
"""Golden fixture: ``__all__`` exporting a name the module never binds."""

from dataclasses import dataclass

__all__ = ["Exists", "ghost_function"]  # expect api-all-resolves for 'ghost_function'


@dataclass
class Exists:
    value: int = 0
