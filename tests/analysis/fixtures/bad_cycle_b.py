# repro-fixture-module: repro.campaign.cycle_b
"""Golden fixture (with bad_cycle_a): a two-module import cycle."""

from repro.campaign.cycle_a import alpha


def beta() -> int:
    return alpha() - 1
