# repro-fixture-module: repro.common.badhelper
"""Golden fixture: nondeterministic helpers in an *unchecked* layer.

Neither function violates the per-file determinism rules (``common``
is outside their layer scope); they only become findings when a
protected module calls them -- see ``bad_taint_flow.py``.
"""

import os
import time


def leak_now() -> float:
    return time.time()


def leak_env(name: str) -> str | None:
    return os.getenv(name)
