# repro-fixture-module: repro.baddeprecation
"""Golden fixture: deprecation shims breaking the shim contract."""

import warnings


def old_name_no_version():
    warnings.warn(
        "old_name_no_version is deprecated; use new_name instead",
        DeprecationWarning,  # expect api-deprecation: no removal version
        stacklevel=2,
    )


def old_name_wrong_category():
    warnings.warn(
        "old_name_wrong_category is deprecated; use new_name instead",
        UserWarning,  # expect api-deprecation: wrong category
        stacklevel=2,
    )


def good_shim():
    warnings.warn(
        "good_shim is deprecated and will be removed in 2.0; use new_name",
        DeprecationWarning,
        stacklevel=2,
    )
