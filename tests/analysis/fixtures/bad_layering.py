# repro-fixture-module: repro.core.badimport
"""Golden fixture: upward imports out of the core layer."""

from repro.obs.runtime import get_observability  # expect layering-import (forbidden edge)
from repro.sim.engine import EventQueue  # expect layering-import (matrix)

__all__ = ["EventQueue", "get_observability"]
