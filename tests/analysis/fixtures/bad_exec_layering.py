# repro-fixture-module: repro.campaign.badexec
"""Golden fixture: a lower layer importing the execution engine.

The campaign runner parallelizes through an injected mapper; importing
``repro.exec`` from below it inverts the layer order.
"""

from repro.exec import pmap  # expect layering-import (matrix)

__all__ = ["pmap"]
