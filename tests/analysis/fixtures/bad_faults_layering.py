# repro-fixture-module: repro.faults.badup
"""Golden fixture: the fault layer reaching up into its consumers.

``repro.faults`` is plain declarative data (specs, schedules, records)
consumed by the simulator and the execution engine; importing either
consumer -- or the strategy layer -- from it inverts the layer order.
"""

from repro.sim.datacenter import DatacenterSimulator  # expect layering-import
from repro.strategies.base import AllocationStrategy  # expect layering-import

__all__ = ["DatacenterSimulator", "AllocationStrategy"]
