# repro-fixture-module: repro.service.badup
"""Golden fixture: the service layer reaching into the wiring crust.

``repro.service`` sits just below the crust: it may consume any
library layer (core, sim, faults, experiments, ...) but must not
import the CLI or the package root -- the crust wires the service in,
never the other way around.  A service module importing ``repro.cli``
would also recreate the import cycle the package had to break.
"""

from repro.cli import main  # expect layering-import
from repro import build_model  # expect layering-import

__all__ = ["main", "build_model"]
