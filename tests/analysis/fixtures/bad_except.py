# repro-fixture-module: repro.sim.badexcept
"""Golden fixture: bare and swallowed exception handlers in a hot path."""


def swallow_everything(work):
    try:
        return work()
    except:  # noqa: E722  expect except-bare
        return None


def swallow_broad(work):
    try:
        return work()
    except Exception:  # expect except-swallow
        return None


def record_and_reraise(work, counter):
    try:
        return work()
    except Exception:  # fine: re-raises after accounting
        counter.append(1)
        raise


def specific_fallback(mapping, key):
    try:
        return mapping[key]
    except KeyError:  # fine: a specific exception with a fallback
        return None
