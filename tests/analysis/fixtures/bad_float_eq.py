# repro-fixture-module: repro.core.badfloat
"""Golden fixture: float equality in a scoring path."""


def same_score(score: float) -> bool:
    return score == 1.0  # expect float-equality


def ratio_check(a: float, b: float, c: float) -> bool:
    return a / b != c  # expect float-equality (true division)


def infinity_check(deadline: float) -> bool:
    return deadline == float("inf")  # expect float-equality (use math.isinf)


def fine(n: int) -> bool:
    return n == 0  # ints compare exactly; not flagged
