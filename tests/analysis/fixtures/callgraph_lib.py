# repro-fixture-module: repro.experiments.cglib
"""Golden fixture: the library side of the call-graph resolver tests.

Deliberately clean under every rule; ``callgraph_app.py`` imports from
here under aliases and the tests assert the resolved edges.
"""


class Base:
    def shared(self) -> int:
        return 1


class Widget(Base):
    def ping(self) -> int:
        return self.shared()


def helper(x: int) -> int:
    return x + 1
