# repro-fixture-module: repro.core.allocator
"""Golden fixture: a wire dataclass grown without touching the schema.

Impersonates ``repro.core.allocator`` and re-declares ``VMRequest``
with one extra field (``priority_boost``) that the real
``repro.service.schema`` encoder/decoder never mention.  Linted
*together with* the real ``src/repro/service/schema.py``, the
wire-schema-drift rule must flag the field in both directions.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class VMRequest:
    vm_id: str
    workload_class: str
    max_exec_time_s: float | None = None
    priority_boost: float = 0.0
