# repro-fixture-module: repro.badshim
"""Golden fixture: a deprecation shim past its pledged removal version.

The pledge ("removed in 1.0") is behind the package's current
``__version__``, so linting this together with ``src/repro/__init__.py``
must produce an ``api-shim-expired`` finding.  Without the package
root in scope the rule stays quiet (no version to compare against),
which keeps the full-catalog fixture-directory run stable.
"""

import warnings


def legacy_entry():
    warnings.warn(
        "legacy_entry() is deprecated and will be removed in 1.0; use entry()",
        DeprecationWarning,
        stacklevel=2,
    )


def entry():
    return 0
