# repro-fixture-module: repro.core.badfacade
"""Golden fixture: an internal module importing through the facade."""

from repro.api import ModelDatabase  # expect api-facade-import (plus layering-import: core cannot reach api)


def load(path):
    return ModelDatabase.from_files(path, path)
