# repro-fixture-module: repro.campaign.cycle_a
"""Golden fixture (with bad_cycle_b): a two-module import cycle."""

from repro.campaign.cycle_b import beta  # expect layering-cycle (reported once per cycle)


def alpha() -> int:
    return beta() + 1
