# repro-fixture-module: repro.sim.badflow
"""Golden fixture: a protected module reaching nondeterminism via calls.

The wall clock and environment reads live two files away in
``bad_taint_helper.py`` (module ``repro.common.badhelper``), where the
per-file determinism rules cannot see them; only the interprocedural
taint rule connects this simulator code to those sources.  The set
iteration is a direct in-module source.
"""

from repro.common.badhelper import leak_env, leak_now


def schedule(started: float) -> float:
    return leak_now() - started


def configured_budget() -> str | None:
    return leak_env("REPRO_BUDGET")


def first_server(servers) -> list:
    return [s for s in {1, 2, 3}]
