"""The tier-1 gate: the shipped tree satisfies every invariant.

This is the test that turns the linter from advice into enforcement --
``pytest -x -q`` fails the moment anyone adds a wall-clock read to the
simulator, an upward import, a facade leak, a float ``==`` to a
scoring path, a nondeterministic helper on a protected call path, or a
wire-dataclass field the schema never learns -- unless they suppress
it with a justification (or record it in the committed baseline) that
then shows up in review.

Two scopes run here:

* the package tree alone (``src/repro``), judged against the committed
  baseline ``scripts/LINT_baseline.json``;
* the whole repository including its consumers (tests, examples,
  scripts, benchmarks), which activates the reference-dependent audits
  (``api-dead-export``, ``dead-internal-function``).  The
  module-impersonating golden fixtures are excluded -- they exist to
  be bad.
"""

from __future__ import annotations

from pathlib import Path

import repro
from repro.analysis import load_baseline, run_lint

PACKAGE_DIR = Path(repro.__file__).resolve().parent
REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE_PATH = REPO_ROOT / "scripts" / "LINT_baseline.json"

#: Repo directories that consume the package (enables the dead-code
#: audits) and must themselves stay invariant-clean.
CONSUMER_DIRS = ("tests", "examples", "scripts", "benchmarks")

#: The golden fixtures impersonate real modules and violate rules on
#: purpose; every whole-repo pass excludes them.
FIXTURE_EXCLUDE = ("tests/analysis/fixtures",)


def test_package_tree_is_invariant_clean():
    result = run_lint([PACKAGE_DIR], baseline=load_baseline(BASELINE_PATH))
    assert result.checked_files > 90  # the whole package, not a subset
    assert result.ok, "\n".join(
        ["the repro package violates its own invariants:"]
        + [violation.render() for violation in result.violations]
    )


def test_whole_repo_with_consumers_is_invariant_clean():
    paths = [PACKAGE_DIR] + [REPO_ROOT / name for name in CONSUMER_DIRS]
    result = run_lint(
        paths, baseline=load_baseline(BASELINE_PATH), exclude=FIXTURE_EXCLUDE
    )
    assert result.checked_files > 150
    assert result.ok, "\n".join(
        ["the repository violates its own invariants:"]
        + [violation.render() for violation in result.violations]
    )


def test_taint_debt_is_exactly_the_committed_baseline():
    # The baseline is reviewed debt, not a dumping ground: it must
    # carry precisely the two long-standing measurement points (the
    # anytime Deadline's monotonic read, the simulator's
    # placement-latency histogram) and the raw tree must produce
    # exactly those findings, nothing more.
    raw = run_lint([PACKAGE_DIR], rules={"determinism-taint"})
    assert len(raw.violations) == 2
    by_path = {Path(v.path).name: v for v in raw.violations}
    assert set(by_path) == {"anytime.py", "datacenter.py"}
    assert "time.monotonic()" in by_path["anytime.py"].message
    assert "time.perf_counter()" in by_path["datacenter.py"].message

    baseline = load_baseline(BASELINE_PATH)
    assert len(baseline.entries) == 2
    assert {entry.rule for entry in baseline.entries} == {"determinism-taint"}
    assert {v.message for v in raw.violations} == {
        entry.message for entry in baseline.entries
    }


def test_linter_lints_itself():
    result = run_lint([PACKAGE_DIR / "analysis"])
    assert result.ok, "\n".join(violation.render() for violation in result.violations)
