"""The tier-1 gate: the shipped tree satisfies every invariant.

This is the test that turns the linter from advice into enforcement --
``pytest -x -q`` fails the moment anyone adds a wall-clock read to the
simulator, an upward import, a facade leak, or a float ``==`` to a
scoring path, unless they suppress it with a justification that then
shows up in review.
"""

from __future__ import annotations

from pathlib import Path

import repro
from repro.analysis import run_lint

PACKAGE_DIR = Path(repro.__file__).resolve().parent


def test_package_tree_is_invariant_clean():
    result = run_lint([PACKAGE_DIR])
    assert result.checked_files > 90  # the whole package, not a subset
    assert result.ok, "\n".join(
        ["the repro package violates its own invariants:"]
        + [violation.render() for violation in result.violations]
    )


def test_linter_lints_itself():
    result = run_lint([PACKAGE_DIR / "analysis"])
    assert result.ok, "\n".join(violation.render() for violation in result.violations)
