"""Suppression syntax: placements, file-level allows, rejection of typos."""

from __future__ import annotations

from pathlib import Path

from repro.analysis import run_lint
from repro.analysis.suppress import scan

FIXTURES = Path(__file__).parent / "fixtures"


class TestDirectiveParsing:
    def test_trailing_directive_with_justification(self):
        suppressions = scan("x = f()  # repro: allow determinism-wallclock -- measuring obs overhead\n")
        (directive,) = suppressions.directives
        assert directive.kind == "allow"
        assert directive.rule_ids == ("determinism-wallclock",)
        assert directive.justification == "measuring obs overhead"
        assert not directive.standalone
        assert suppressions.is_suppressed("determinism-wallclock", 1)
        assert not suppressions.is_suppressed("determinism-wallclock", 2)

    def test_standalone_directive_shields_the_next_line(self):
        suppressions = scan("# repro: allow float-equality\nx = a == 1.0\n")
        assert suppressions.is_suppressed("float-equality", 1)
        assert suppressions.is_suppressed("float-equality", 2)
        assert not suppressions.is_suppressed("float-equality", 3)

    def test_multiple_rule_ids_in_one_directive(self):
        suppressions = scan("y = g()  # repro: allow except-bare, except-swallow\n")
        assert suppressions.is_suppressed("except-bare", 1)
        assert suppressions.is_suppressed("except-swallow", 1)

    def test_file_level_allow_covers_every_line(self):
        suppressions = scan("# repro: allow-file determinism-rng -- demo\n\nimport random\n")
        assert suppressions.is_suppressed("determinism-rng", 1)
        assert suppressions.is_suppressed("determinism-rng", 999)
        assert not suppressions.is_suppressed("determinism-wallclock", 3)

    def test_malformed_repro_comment_is_recorded(self):
        suppressions = scan("# repro: allowance float-equality\n")
        assert suppressions.directives == ()
        assert suppressions.malformed == (1,)

    def test_unrelated_comments_ignored(self):
        suppressions = scan("# plain comment\nx = 1  # reproducibility note\n")
        assert suppressions.directives == ()
        assert suppressions.malformed == ()


class TestSuppressionEndToEnd:
    def test_correctly_suppressed_file_is_clean(self):
        result = run_lint([FIXTURES / "suppressed_clean.py"])
        assert result.ok, [violation.render() for violation in result.violations]

    def test_unknown_rule_id_in_directive_is_rejected(self):
        result = run_lint(
            [FIXTURES / "bad_suppression.py"], rules={"suppression-unknown-rule"}
        )
        assert len(result.violations) == 2  # typoed id + malformed directive
        messages = " ".join(violation.message for violation in result.violations)
        assert "no-such-rule" in messages
        assert "malformed" in messages

    def test_suppression_only_silences_the_named_rule(self, tmp_path):
        source = (
            "# repro-fixture-module: repro.sim.partial\n"
            "import time\n"
            "def f():\n"
            "    return time.time()  # repro: allow float-equality -- wrong rule id\n"
        )
        path = tmp_path / "partial.py"
        path.write_text(source, encoding="utf-8")
        result = run_lint([path], rules={"determinism-wallclock"})
        assert len(result.violations) == 1  # the wallclock finding survives
