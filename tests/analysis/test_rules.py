"""Golden-fixture tests: every shipped rule flags its known-bad snippet.

Each fixture under ``fixtures/`` is a minimal violation of exactly one
rule family, pinned to a pretend module via ``# repro-fixture-module:``
so layer-scoped rules apply.  Deleting (or breaking) any single rule's
implementation makes its case here fail, which is the point: the rule
catalog is itself regression-tested.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import run_lint

FIXTURES = Path(__file__).parent / "fixtures"


def lint_fixture(name: str, *rules: str):
    return run_lint([FIXTURES / name], rules=set(rules))


class TestDeterminismRules:
    def test_wallclock_flags_time_datetime_and_from_imports(self):
        result = lint_fixture("bad_wallclock.py", "determinism-wallclock")
        lines = [violation.line for violation in result.violations]
        assert len(lines) == 3  # time.time(), pc(), datetime.now()
        assert all(v.rule == "determinism-wallclock" for v in result.violations)

    def test_rng_flags_stdlib_import_and_numpy_global(self):
        result = lint_fixture("bad_rng.py", "determinism-rng")
        assert len(result.violations) == 3  # import random, np.random.seed, np.random.default_rng
        assert {v.rule for v in result.violations} == {"determinism-rng"}

    def test_anytime_layer_covered_by_both_determinism_rules(self):
        # repro.core.anytime introduced seeded beam/local search; this
        # twin module proves its layer stays under both rules, so the
        # real module's SeedSequenceFactory children and suppressed
        # deadline reads are load-bearing, not accidental.
        result = lint_fixture(
            "bad_anytime_rng.py", "determinism-rng", "determinism-wallclock"
        )
        assert len(result.violations) == 2  # import random, time.monotonic()
        assert {v.rule for v in result.violations} == {
            "determinism-rng",
            "determinism-wallclock",
        }

    def test_wallclock_rule_skips_unchecked_layers(self, tmp_path):
        # The identical call is fine outside core/sim/strategies/campaign/obs.
        clock = tmp_path / "clock.py"
        clock.write_text(
            "# repro-fixture-module: repro.experiments.clock\n"
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n",
            encoding="utf-8",
        )
        result = run_lint([clock], rules={"determinism-wallclock"})
        assert result.ok

    def test_tracer_allowlisted_for_wallclock(self, tmp_path):
        tracer = tmp_path / "tracer.py"
        tracer.write_text(
            "# repro-fixture-module: repro.obs.tracer\n"
            "import time\n"
            "def now():\n"
            "    return time.perf_counter()\n",
            encoding="utf-8",
        )
        result = run_lint([tracer], rules={"determinism-wallclock"})
        assert result.ok


class TestLayeringRules:
    def test_upward_imports_flagged(self):
        result = lint_fixture("bad_layering.py", "layering-import")
        assert len(result.violations) == 2
        messages = " ".join(v.message for v in result.violations)
        assert "repro.obs.runtime" in messages  # the forbidden submodule edge
        assert "repro.sim.engine" in messages  # the matrix violation

    def test_lower_layer_importing_exec_flagged(self):
        # The engine is reached from below via an injected mapper only.
        result = lint_fixture("bad_exec_layering.py", "layering-import")
        assert len(result.violations) == 1
        assert "repro.exec" in result.violations[0].message

    def test_sim_shard_helper_may_not_import_exec(self):
        # The sharded-campaign split: partition/merge bookkeeping lives
        # in sim, the pool fan-out in exec.sharded; a sim-side shard
        # helper importing the engine inverts the order.
        result = lint_fixture("bad_shard_layering.py", "layering-import")
        assert len(result.violations) == 1
        assert "repro.exec" in result.violations[0].message

    def test_exec_may_not_import_experiments(self, tmp_path):
        bad = tmp_path / "bad_exec_up.py"
        bad.write_text(
            "# repro-fixture-module: repro.exec.badup\n"
            "from repro.experiments.evaluation import run_evaluation\n",
            encoding="utf-8",
        )
        result = run_lint([bad], rules={"layering-import"})
        assert len(result.violations) == 1
        assert "experiments" in result.violations[0].message

    def test_faults_layer_may_not_import_consumers(self):
        # repro.faults is plain data under sim/exec; importing either
        # consumer (or strategies) from it inverts the layer order.
        result = lint_fixture("bad_faults_layering.py", "layering-import")
        assert len(result.violations) == 2
        messages = " ".join(v.message for v in result.violations)
        assert "repro.sim" in messages
        assert "repro.strategies" in messages

    def test_service_layer_may_not_import_the_crust(self):
        # The HTTP front end consumes library layers; the CLI and the
        # package root wire *it* in, never the reverse.
        result = lint_fixture("bad_service_layering.py", "layering-import")
        assert len(result.violations) == 2
        messages = " ".join(v.message for v in result.violations)
        assert "repro.cli" in messages
        assert "the package root" in messages

    def test_service_layer_may_import_core_and_faults(self, tmp_path):
        ok = tmp_path / "ok_service.py"
        ok.write_text(
            "# repro-fixture-module: repro.service.okdown\n"
            "from repro.core.allocator import ProactiveAllocator\n"
            "from repro.faults.spec import FaultSpec\n"
            "from repro.experiments.evaluation import StrategyOutcome\n",
            encoding="utf-8",
        )
        result = run_lint([ok], rules={"layering-import"})
        assert result.ok

    def test_service_layer_under_wallclock_rule(self, tmp_path):
        bad = tmp_path / "bad_service_clock.py"
        bad.write_text(
            "# repro-fixture-module: repro.service.badclock\n"
            "import time\n"
            "def coalesce_deadline():\n"
            "    return time.monotonic()\n",
            encoding="utf-8",
        )
        result = run_lint([bad], rules={"determinism-wallclock"})
        assert len(result.violations) == 1
        assert result.violations[0].rule == "determinism-wallclock"

    def test_faults_layer_may_import_common_and_obs(self, tmp_path):
        ok = tmp_path / "ok_faults.py"
        ok.write_text(
            "# repro-fixture-module: repro.faults.okdown\n"
            "from repro.common.errors import FaultSpecError\n"
            "from repro.obs.registry import MetricsRegistry\n",
            encoding="utf-8",
        )
        result = run_lint([ok], rules={"layering-import"})
        assert result.ok

    def test_sim_and_exec_may_import_faults(self, tmp_path):
        ok = tmp_path / "ok_consumers.py"
        ok.write_text(
            "# repro-fixture-module: repro.exec.okfaults\n"
            "from repro.faults import WorkerFaultPlan\n",
            encoding="utf-8",
        )
        result = run_lint([ok], rules={"layering-import"})
        assert result.ok

    def test_exec_may_import_sim_and_obs(self, tmp_path):
        ok = tmp_path / "ok_exec.py"
        ok.write_text(
            "# repro-fixture-module: repro.exec.okdown\n"
            "from repro.obs.registry import MetricsRegistry\n"
            "from repro.sim.datacenter import DatacenterSimulator\n",
            encoding="utf-8",
        )
        result = run_lint([ok], rules={"layering-import"})
        assert result.ok

    def test_cycle_detected_once(self):
        result = run_lint(
            [FIXTURES / "bad_cycle_a.py", FIXTURES / "bad_cycle_b.py"],
            rules={"layering-cycle"},
        )
        assert len(result.violations) == 1
        violation = result.violations[0]
        assert "repro.campaign.cycle_a" in violation.message
        assert "repro.campaign.cycle_b" in violation.message

    def test_acyclic_pair_is_clean(self):
        result = run_lint(
            [FIXTURES / "bad_cycle_a.py", FIXTURES / "bad_wallclock.py"],
            rules={"layering-cycle"},
        )
        assert result.ok


class TestApiSurfaceRules:
    def test_unbound_all_export_flagged(self):
        result = lint_fixture("bad_api_all.py", "api-all-resolves")
        assert len(result.violations) == 1
        assert "ghost_function" in result.violations[0].message

    def test_facade_import_from_internal_flagged(self):
        result = lint_fixture("bad_facade_import.py", "api-facade-import")
        assert len(result.violations) == 1
        assert "repro.api" in result.violations[0].message

    def test_deprecation_shims_need_category_and_version(self):
        result = lint_fixture("bad_deprecation.py", "api-deprecation")
        assert len(result.violations) == 2  # good_shim passes
        messages = " ".join(v.message for v in result.violations)
        assert "removal" in messages
        assert "UserWarning" in messages


class TestFloatRule:
    def test_float_equality_flagged(self):
        result = lint_fixture("bad_float_eq.py", "float-equality")
        assert len(result.violations) == 3  # literal, division, float("inf")
        int_compare_lines = [v for v in result.violations if "n == 0" in v.message]
        assert not int_compare_lines


class TestExceptRules:
    def test_bare_except_flagged(self):
        result = lint_fixture("bad_except.py", "except-bare")
        assert len(result.violations) == 1

    def test_swallowed_broad_handler_flagged_reraise_ok(self):
        result = lint_fixture("bad_except.py", "except-swallow")
        assert len(result.violations) == 1  # only swallow_broad


class TestTaintRule:
    def test_cross_module_flow_flagged_with_call_path(self):
        result = run_lint(
            [FIXTURES / "bad_taint_flow.py", FIXTURES / "bad_taint_helper.py"],
            rules={"determinism-taint"},
        )
        # Two helper sources reached from the simulator (wall clock,
        # environment read) plus the in-module set iteration.
        assert len(result.violations) == 3
        messages = " ".join(v.message for v in result.violations)
        assert "call path" in messages
        assert "repro.sim.badflow" in messages
        assert "wall-clock read" in messages
        assert "environment read" in messages
        assert "unordered set" in messages
        helper_hits = [v for v in result.violations if "bad_taint_helper" in v.path]
        assert len(helper_hits) == 2  # anchored at the source, not the caller

    def test_sharded_merge_path_covered(self):
        # The shard merge must stay a pure function of the shard
        # decomposition; a wall-clock tie-break (via the unchecked
        # helper) and set-ordered bookkeeping are both caught inside
        # the protected sim layer.
        result = run_lint(
            [FIXTURES / "bad_taint_shard.py", FIXTURES / "bad_taint_helper.py"],
            rules={"determinism-taint"},
        )
        messages = " ".join(v.message for v in result.violations)
        assert "repro.sim.badmerge" in messages
        assert "wall-clock read" in messages
        assert "unordered set" in messages

    def test_helper_alone_is_clean(self):
        # The same sources with no protected caller in view prove
        # nothing; repro.common is not a protected layer.
        result = run_lint(
            [FIXTURES / "bad_taint_helper.py"], rules={"determinism-taint"}
        )
        assert result.ok

    def test_seeded_numpy_construction_is_not_a_source(self, tmp_path):
        ok = tmp_path / "ok_rng.py"
        ok.write_text(
            "# repro-fixture-module: repro.core.okrng\n"
            "import numpy as np\n"
            "def draw():\n"
            "    return np.random.default_rng(123).random()\n",
            encoding="utf-8",
        )
        result = run_lint([ok], rules={"determinism-taint"})
        assert result.ok

    def test_unseeded_numpy_construction_is_a_source(self, tmp_path):
        bad = tmp_path / "bad_rng_taint.py"
        bad.write_text(
            "# repro-fixture-module: repro.core.badrngtaint\n"
            "import numpy as np\n"
            "def draw():\n"
            "    return np.random.default_rng().random()\n",
            encoding="utf-8",
        )
        result = run_lint([bad], rules={"determinism-taint"})
        assert len(result.violations) == 1
        assert "numpy RNG" in result.violations[0].message

    def test_inline_suppression_sanctions_the_read(self, tmp_path):
        ok = tmp_path / "ok_clock.py"
        ok.write_text(
            "# repro-fixture-module: repro.sim.okmeasure\n"
            "import time\n"
            "def measure():\n"
            "    return time.perf_counter()  # repro: allow determinism-taint -- measured on purpose\n",
            encoding="utf-8",
        )
        result = run_lint([ok], rules={"determinism-taint"})
        assert result.ok

    def test_tracer_module_is_sanctioned(self, tmp_path):
        tracer = tmp_path / "tracer.py"
        tracer.write_text(
            "# repro-fixture-module: repro.obs.tracer\n"
            "import time\n"
            "def now():\n"
            "    return time.perf_counter()\n",
            encoding="utf-8",
        )
        result = run_lint([tracer], rules={"determinism-taint"})
        assert result.ok


class TestSchemaDriftRule:
    SCHEMA = (
        Path(__file__).resolve().parents[2] / "src" / "repro" / "service" / "schema.py"
    )

    def test_added_field_without_schema_change_fails(self):
        result = run_lint(
            [FIXTURES / "bad_schema_drift.py", self.SCHEMA],
            rules={"wire-schema-drift"},
        )
        # The grown field is missing from the encoder AND the decoder.
        assert len(result.violations) == 2
        assert all("priority_boost" in v.message for v in result.violations)
        assert {"encoder", "decoder"} <= {
            v.message.split(" in its ")[1].split(" ")[0] for v in result.violations
        }

    def test_real_tree_contracts_hold(self):
        result = run_lint(
            [Path(__file__).resolve().parents[2] / "src" / "repro"],
            rules={"wire-schema-drift"},
        )
        assert result.ok, "\n".join(v.render() for v in result.violations)

    def test_provenance_tuple_must_cover_every_field(self, tmp_path):
        plan = tmp_path / "plan.py"
        plan.write_text(
            "# repro-fixture-module: repro.core.plan\n"
            "from dataclasses import dataclass\n"
            '_PROVENANCE_FIELDS = ("mode",)\n'
            "@dataclass(frozen=True)\n"
            "class AllocationProvenance:\n"
            "    mode: str\n"
            "    extra_field: int = 0\n",
            encoding="utf-8",
        )
        result = run_lint([plan], rules={"wire-schema-drift"})
        assert len(result.violations) == 1
        assert "extra_field" in result.violations[0].message


class TestDeadcodeRules:
    def test_dead_export_flagged_only_with_consumers(self, tmp_path):
        facade = tmp_path / "facade.py"
        facade.write_text(
            "# repro-fixture-module: repro.api\n"
            '__all__ = ["used", "ghost"]\n'
            "used = 1\n"
            "ghost = 2\n",
            encoding="utf-8",
        )
        consumer = tmp_path / "consumer.py"
        consumer.write_text("from repro.api import used\n", encoding="utf-8")
        result = run_lint([facade, consumer], rules={"api-dead-export"})
        assert len(result.violations) == 1
        assert "ghost" in result.violations[0].message
        # Without the consumer in view, absence of references proves
        # nothing and the rule stays quiet.
        assert run_lint([facade], rules={"api-dead-export"}).ok

    def test_dead_internal_function_flagged(self, tmp_path):
        module = tmp_path / "deadmod.py"
        module.write_text(
            "# repro-fixture-module: repro.experiments.deadmod\n"
            "def used():\n"
            "    return 1\n"
            "def orphan():\n"
            "    return 2\n",
            encoding="utf-8",
        )
        consumer = tmp_path / "consumer.py"
        consumer.write_text(
            "from repro.experiments.deadmod import used\n", encoding="utf-8"
        )
        result = run_lint([module, consumer], rules={"dead-internal-function"})
        assert len(result.violations) == 1
        assert "orphan" in result.violations[0].message

    def test_decorated_and_string_referenced_functions_live(self, tmp_path):
        module = tmp_path / "livemod.py"
        module.write_text(
            "# repro-fixture-module: repro.experiments.livemod\n"
            "def hook(fn):\n"
            "    return fn\n"
            "@hook\n"
            "def registered():\n"
            "    return 1\n"
            "def dispatched():\n"
            "    return 2\n"
            'TABLE = {"dispatched": None}\n',
            encoding="utf-8",
        )
        consumer = tmp_path / "consumer.py"
        consumer.write_text(
            "from repro.experiments.livemod import hook\n", encoding="utf-8"
        )
        result = run_lint([module, consumer], rules={"dead-internal-function"})
        assert result.ok, "\n".join(v.render() for v in result.violations)

    def test_expired_shim_flagged_against_package_version(self):
        package_init = (
            Path(__file__).resolve().parents[2] / "src" / "repro" / "__init__.py"
        )
        result = run_lint(
            [FIXTURES / "bad_expired_shim.py", package_init],
            rules={"api-shim-expired"},
        )
        assert len(result.violations) == 1
        message = result.violations[0].message
        assert "1.0" in message and "delete" in message

    def test_shim_fixture_quiet_without_version_in_scope(self):
        result = run_lint(
            [FIXTURES / "bad_expired_shim.py"], rules={"api-shim-expired"}
        )
        assert result.ok


class TestEngineBehaviour:
    def test_unknown_rule_id_raises_immediately(self):
        with pytest.raises(KeyError):
            run_lint([FIXTURES / "bad_wallclock.py"], rules={"no-such-rule"})

    def test_parse_error_is_a_finding_not_a_crash(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def oops(:\n", encoding="utf-8")
        result = run_lint([broken])
        assert len(result.violations) == 1
        assert result.violations[0].rule == "parse-error"

    def test_full_catalog_on_fixture_dir_reports_every_family(self):
        result = run_lint([FIXTURES])
        rules_seen = {violation.rule for violation in result.violations}
        assert {
            "determinism-wallclock",
            "determinism-rng",
            "determinism-taint",
            "layering-import",
            "layering-cycle",
            "api-all-resolves",
            "api-facade-import",
            "api-deprecation",
            "float-equality",
            "except-bare",
            "except-swallow",
            "suppression-unknown-rule",
        } <= rules_seen
