"""Contracts of the shared AST helpers under the rule catalog."""

from __future__ import annotations

import ast

from repro.analysis.astutils import (
    alias_maps,
    dotted_call_name,
    iter_imports,
    top_segment,
)


def imports_of(source: str, importer: str = "repro.core.example"):
    return list(iter_imports(ast.parse(source), importer=importer))


class TestIterImports:
    def test_plain_and_from_imports(self):
        found = imports_of(
            "import time\n"
            "from repro.core.plan import AllocationPlan, BlockAssignment\n"
        )
        assert [(i.target, i.names) for i in found] == [
            ("time", ()),
            ("repro.core.plan", ("AllocationPlan", "BlockAssignment")),
        ]
        assert not any(i.type_checking or i.deferred for i in found)

    def test_type_checking_imports_are_tagged(self):
        found = imports_of(
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    from repro.sim.engine import Event\n"
        )
        tagged = {i.target: i.type_checking for i in found}
        assert tagged["repro.sim.engine"] is True
        assert tagged["typing"] is False

    def test_function_local_imports_are_deferred(self):
        found = imports_of(
            "def lazy():\n"
            "    import json\n"
            "    return json\n"
        )
        assert [(i.target, i.deferred) for i in found] == [("json", True)]

    def test_relative_imports_resolve_against_the_importer(self):
        found = imports_of(
            "from . import plan\nfrom ..common import rng\n",
            importer="repro.core.allocator",
        )
        assert [i.target for i in found] == ["repro.core", "repro.common"]

    def test_over_deep_relative_import_is_dropped(self):
        found = imports_of("from .... import x\n", importer="repro.core.allocator")
        assert found == []

    def test_imports_inside_try_and_loops_are_found(self):
        found = imports_of(
            "try:\n"
            "    import numpy\n"
            "except ImportError:\n"
            "    numpy = None\n"
            "for _ in range(1):\n"
            "    import math\n"
        )
        assert {i.target for i in found} == {"numpy", "math"}


class TestAliasResolution:
    def test_module_alias_resolves_attribute_chain(self):
        tree = ast.parse("import numpy as np\nnp.random.seed(0)\n")
        aliases = alias_maps(tree)
        call = tree.body[1].value
        assert dotted_call_name(call.func, aliases) == "numpy.random.seed"

    def test_member_alias_resolves_to_its_origin(self):
        tree = ast.parse("from time import perf_counter as pc\npc()\n")
        aliases = alias_maps(tree)
        call = tree.body[1].value
        assert dotted_call_name(call.func, aliases) == "time.perf_counter"

    def test_unresolvable_callables_return_none(self):
        tree = ast.parse("import numpy as np\nobj.method()\nitems[0]()\n")
        aliases = alias_maps(tree)
        assert dotted_call_name(tree.body[1].value.func, aliases) is None
        assert dotted_call_name(tree.body[2].value.func, aliases) is None


class TestTopSegment:
    def test_layer_of_internal_modules(self):
        assert top_segment("repro.core.allocator") == "core"
        assert top_segment("repro.api") == "api"

    def test_package_root_and_externals_have_no_layer(self):
        assert top_segment("repro") is None
        assert top_segment("numpy.random") is None
