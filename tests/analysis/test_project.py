"""Symbol-table and call-graph resolver contracts.

The project rules are only as good as the resolution underneath them:
these tests pin the golden-fixture pair ``callgraph_app.py`` /
``callgraph_lib.py`` (aliased imports, local type inference, method
resolution through a base class, ``functools.partial`` edge-through)
so a resolver regression fails here, not as a silently-empty taint or
dead-code run.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.callgraph import build_call_graph, get_call_graph
from repro.analysis.engine import ContextList, load_context
from repro.analysis.project import ClassSymbol, FunctionSymbol, get_project

FIXTURES = Path(__file__).parent / "fixtures"

APP = "repro.experiments.cgapp"
LIB = "repro.experiments.cglib"


def load(*names) -> ContextList:
    contexts = ContextList()
    for name in names:
        contexts.append(load_context(FIXTURES / name))
    return contexts


class TestProjectIndex:
    def test_modules_functions_classes_and_fields(self):
        project = get_project(load("callgraph_lib.py", "bad_schema_drift.py"))
        lib = project.table(LIB)
        assert set(lib.functions) == {"helper"}
        assert set(lib.classes) == {"Base", "Widget"}
        widget = lib.classes["Widget"]
        assert widget.base_names == ("Base",)
        assert set(widget.methods) == {"ping"}
        twin = project.table("repro.core.allocator").classes["VMRequest"]
        assert twin.fields == (
            "vm_id",
            "workload_class",
            "max_exec_time_s",
            "priority_boost",
        )
        assert twin.field_node("priority_boost").lineno > 0
        assert twin.field_node("no_such_field") is None

    def test_import_bindings_record_aliases(self):
        project = get_project(load("callgraph_app.py"))
        bindings = project.table(APP).import_bindings
        assert bindings["W"] == f"{LIB}.Widget"
        assert bindings["aliased_helper"] == f"{LIB}.helper"
        assert bindings["functools"] == "functools"

    def test_resolve_chases_import_bindings_across_modules(self):
        project = get_project(load("callgraph_app.py", "callgraph_lib.py"))
        resolved = project.resolve(f"{APP}.W")
        assert isinstance(resolved, ClassSymbol)
        assert resolved.qualname == f"{LIB}.Widget"
        helper = project.resolve(f"{APP}.aliased_helper")
        assert isinstance(helper, FunctionSymbol)
        assert helper.qualname == f"{LIB}.helper"
        assert project.resolve(f"{APP}.no_such_name") is None

    def test_resolve_method_walks_project_known_bases(self):
        project = get_project(load("callgraph_lib.py"))
        widget = project.table(LIB).classes["Widget"]
        shared = project.resolve_method(widget, "shared")
        assert shared is not None
        assert shared.qualname == f"{LIB}.Base.shared"
        assert project.resolve_method(widget, "no_such_method") is None

    def test_resolve_caller_module(self):
        project = get_project(load("callgraph_app.py", "callgraph_lib.py"))
        assert project.resolve_caller_module(APP) == APP
        assert project.resolve_caller_module(f"{LIB}.Widget.ping") == LIB

    def test_index_is_cached_on_the_context_list(self):
        contexts = load("callgraph_app.py", "callgraph_lib.py")
        assert get_project(contexts) is get_project(contexts)
        assert get_call_graph(contexts) is get_call_graph(contexts)


class TestCallGraphResolution:
    def graph(self):
        return get_call_graph(load("callgraph_app.py", "callgraph_lib.py"))

    def test_aliased_class_instantiation_and_method_call(self):
        graph = self.graph()
        run_edges = graph.edges[f"{APP}.run"]
        # `w = W()` then `w.ping()`: inferred local type through the alias.
        assert f"{LIB}.Widget.ping" in run_edges

    def test_self_method_resolves_through_base_class(self):
        graph = self.graph()
        ping_edges = graph.edges[f"{LIB}.Widget.ping"]
        assert f"{LIB}.Base.shared" in ping_edges

    def test_functools_partial_edges_through_to_the_wrapped_function(self):
        graph = self.graph()
        run_edges = graph.edges[f"{APP}.run"]
        assert f"{LIB}.helper" in run_edges
        assert f"{APP}.run" in graph.callers[f"{LIB}.helper"]

    def test_external_calls_keep_their_dotted_names(self):
        graph = get_call_graph(
            load("bad_taint_flow.py", "bad_taint_helper.py")
        )
        dotted = {
            call.dotted
            for call in graph.iter_external()
            if call.caller.startswith("repro.common.badhelper.")
        }
        assert "time.time" in dotted
        assert "os.getenv" in dotted

    def test_in_degree_counts_distinct_referrers(self):
        graph = self.graph()
        assert graph.in_degree(f"{LIB}.helper") >= 1
        assert graph.in_degree(f"{LIB}.no_such_function") == 0

    def test_build_call_graph_is_deterministic(self):
        contexts = load("callgraph_app.py", "callgraph_lib.py")
        project = get_project(contexts)
        first = build_call_graph(project)
        second = build_call_graph(project)
        assert {c: set(e) for c, e in first.edges.items()} == {
            c: set(e) for c, e in second.edges.items()
        }
