"""CLI contracts: exit codes, JSON/SARIF modes, uniform flag validation."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro
from repro.analysis.cli import main as analysis_main
from repro.cli import main as repro_main

FIXTURES = Path(__file__).parent / "fixtures"
PACKAGE_DIR = Path(repro.__file__).resolve().parent
REPO_BASELINE = Path(__file__).resolve().parents[2] / "scripts" / "LINT_baseline.json"


class TestAnalysisEntryPoint:
    def test_clean_tree_exits_zero(self):
        assert analysis_main([str(PACKAGE_DIR / "analysis")]) == 0

    def test_findings_exit_one_with_json_document(self, capsys):
        code = analysis_main([str(FIXTURES / "bad_wallclock.py"), "--format", "json"])
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["n_violations"] > 0
        # The full catalog runs: the shallow per-file rule and the
        # graph-scoped taint rule both flag the reads.
        assert {v["rule"] for v in document["violations"]} == {
            "determinism-wallclock",
            "determinism-taint",
        }

    def test_sarif_format_emits_a_sarif_log(self, capsys):
        code = analysis_main([str(FIXTURES / "bad_wallclock.py"), "--format", "sarif"])
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"
        assert document["runs"][0]["results"]

    def test_unknown_format_exits_two(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            analysis_main([str(FIXTURES), "--format", "yaml"])
        assert excinfo.value.code == 2
        assert "format must be one of" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self):
        with pytest.raises(SystemExit) as excinfo:
            analysis_main([str(FIXTURES), "--rules", "no-such-rule"])
        assert excinfo.value.code == 2

    def test_list_rules_names_the_whole_catalog(self, capsys):
        assert analysis_main(["--list-rules"]) == 0
        output = capsys.readouterr().out
        for rule_id in (
            "determinism-wallclock",
            "determinism-rng",
            "determinism-taint",
            "wire-schema-drift",
            "api-dead-export",
            "dead-internal-function",
            "api-shim-expired",
            "layering-import",
            "layering-cycle",
            "api-all-resolves",
            "api-facade-import",
            "api-deprecation",
            "float-equality",
            "except-bare",
            "except-swallow",
            "suppression-unknown-rule",
            "suppression-stale",
            "baseline-stale",
        ):
            assert rule_id in output

    def test_missing_path_exits_two(self):
        with pytest.raises(SystemExit) as excinfo:
            analysis_main(["/no/such/path.txt"])
        assert excinfo.value.code == 2


class TestBaselineFlags:
    def test_update_then_apply_round_trips(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        target = str(FIXTURES / "bad_wallclock.py")
        code = analysis_main(
            [target, "--rules", "determinism-wallclock", "--update-baseline", str(baseline)]
        )
        assert code == 0
        assert "wrote 3 baseline entries" in capsys.readouterr().out
        document = json.loads(baseline.read_text(encoding="utf-8"))
        assert document["schema_version"] == "1"
        assert len(document["findings"]) == 3
        code = analysis_main(
            [target, "--rules", "determinism-wallclock", "--baseline", str(baseline)]
        )
        assert code == 0
        assert "(3 accepted by baseline)" in capsys.readouterr().out

    def test_stale_baseline_entry_fails_the_run(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "schema_version": "1",
                    "findings": [
                        {"rule": "except-bare", "path": "gone.py", "message": "paid off"}
                    ],
                }
            ),
            encoding="utf-8",
        )
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n", encoding="utf-8")
        code = analysis_main([str(clean), "--baseline", str(baseline)])
        assert code == 1
        assert "baseline-stale" in capsys.readouterr().out

    def test_malformed_baseline_exits_two(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text("[]", encoding="utf-8")
        with pytest.raises(SystemExit) as excinfo:
            analysis_main([str(FIXTURES / "bad_wallclock.py"), "--baseline", str(baseline)])
        assert excinfo.value.code == 2
        assert "findings" in capsys.readouterr().err

    def test_baseline_and_update_are_mutually_exclusive(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text('{"findings": []}', encoding="utf-8")
        with pytest.raises(SystemExit) as excinfo:
            analysis_main(
                [
                    str(FIXTURES / "bad_wallclock.py"),
                    "--baseline",
                    str(baseline),
                    "--update-baseline",
                    str(tmp_path / "other.json"),
                ]
            )
        assert excinfo.value.code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_repo_baseline_accepts_the_committed_debt(self):
        # The committed baseline carries exactly the two sanctioned
        # measurement points; with it applied the shipped tree is clean.
        assert analysis_main([str(PACKAGE_DIR), "--baseline", str(REPO_BASELINE)]) == 0


class TestReproLintSubcommand:
    def test_lint_clean_tree_exits_zero(self, capsys):
        assert repro_main(["lint", str(PACKAGE_DIR / "analysis")]) == 0
        assert "0 violations" in capsys.readouterr().out

    def test_lint_json_exits_nonzero_on_findings(self, capsys):
        code = repro_main(
            [
                "lint",
                str(FIXTURES / "bad_rng.py"),
                "--rules",
                "determinism-rng",
                "--format",
                "json",
            ]
        )
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["n_violations"] == 3

    def test_lint_sarif_passthrough(self, capsys):
        code = repro_main(["lint", str(FIXTURES / "bad_rng.py"), "--format", "sarif"])
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"

    def test_lint_baseline_passthrough(self, capsys):
        code = repro_main(
            ["lint", str(PACKAGE_DIR), "--baseline", str(REPO_BASELINE)]
        )
        assert code == 0
        assert "accepted by baseline" in capsys.readouterr().out

    def test_lint_update_baseline_passthrough(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        code = repro_main(
            [
                "lint",
                str(FIXTURES / "bad_rng.py"),
                "--rules",
                "determinism-rng",
                "--update-baseline",
                str(baseline),
            ]
        )
        assert code == 0
        assert baseline.exists()
        assert "wrote 3 baseline entries" in capsys.readouterr().out

    def test_lint_list_rules(self, capsys):
        assert repro_main(["lint", "--list-rules"]) == 0
        output = capsys.readouterr().out
        assert "determinism-wallclock" in output
        assert "determinism-taint" in output


class TestUniformFormatValidation:
    """--format rejects junk with exit code 2 on every subcommand."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["lint", ".", "--format", "xml"],
            ["allocate", "--model", "m", "--format", "xml"],
            ["evaluate", "--format", "xml"],
        ],
        ids=["lint", "allocate", "evaluate"],
    )
    def test_bad_format_exits_two(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            repro_main(argv)
        assert excinfo.value.code == 2
        assert "format must be one of" in capsys.readouterr().err

    def test_sarif_is_lint_only(self, capsys):
        # The richer lint vocabulary must not leak into the reporting
        # subcommands that only speak text/json.
        with pytest.raises(SystemExit) as excinfo:
            repro_main(["evaluate", "--format", "sarif"])
        assert excinfo.value.code == 2
        assert "format must be one of" in capsys.readouterr().err
