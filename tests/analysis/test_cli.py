"""CLI contracts: exit codes, JSON mode, uniform --format validation."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro
from repro.analysis.cli import main as analysis_main
from repro.cli import main as repro_main

FIXTURES = Path(__file__).parent / "fixtures"
PACKAGE_DIR = Path(repro.__file__).resolve().parent


class TestAnalysisEntryPoint:
    def test_clean_tree_exits_zero(self):
        assert analysis_main([str(PACKAGE_DIR / "analysis")]) == 0

    def test_findings_exit_one_with_json_document(self, capsys):
        code = analysis_main([str(FIXTURES / "bad_wallclock.py"), "--format", "json"])
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["n_violations"] > 0
        assert all(v["rule"] == "determinism-wallclock" for v in document["violations"])

    def test_unknown_format_exits_two(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            analysis_main([str(FIXTURES), "--format", "yaml"])
        assert excinfo.value.code == 2
        assert "format must be one of" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self):
        with pytest.raises(SystemExit) as excinfo:
            analysis_main([str(FIXTURES), "--rules", "no-such-rule"])
        assert excinfo.value.code == 2

    def test_list_rules_names_the_whole_catalog(self, capsys):
        assert analysis_main(["--list-rules"]) == 0
        output = capsys.readouterr().out
        for rule_id in (
            "determinism-wallclock",
            "determinism-rng",
            "layering-import",
            "layering-cycle",
            "api-all-resolves",
            "api-facade-import",
            "api-deprecation",
            "float-equality",
            "except-bare",
            "except-swallow",
            "suppression-unknown-rule",
        ):
            assert rule_id in output

    def test_missing_path_exits_two(self):
        with pytest.raises(SystemExit) as excinfo:
            analysis_main(["/no/such/path.txt"])
        assert excinfo.value.code == 2


class TestReproLintSubcommand:
    def test_lint_clean_tree_exits_zero(self, capsys):
        assert repro_main(["lint", str(PACKAGE_DIR / "analysis")]) == 0
        assert "0 violations" in capsys.readouterr().out

    def test_lint_json_exits_nonzero_on_findings(self, capsys):
        code = repro_main(["lint", str(FIXTURES / "bad_rng.py"), "--format", "json"])
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["n_violations"] == 3

    def test_lint_list_rules(self, capsys):
        assert repro_main(["lint", "--list-rules"]) == 0
        assert "determinism-wallclock" in capsys.readouterr().out


class TestUniformFormatValidation:
    """--format rejects junk with exit code 2 on every subcommand."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["lint", ".", "--format", "xml"],
            ["allocate", "--model", "m", "--format", "xml"],
            ["evaluate", "--format", "xml"],
        ],
        ids=["lint", "allocate", "evaluate"],
    )
    def test_bad_format_exits_two(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            repro_main(argv)
        assert excinfo.value.code == 2
        assert "format must be one of" in capsys.readouterr().err
