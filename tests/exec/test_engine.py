"""The determinism contract of ``repro.exec.pmap``.

The load-bearing guarantee: at any worker count, values come back in
input order and the merged observability state is bit-identical to a
serial run.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.common.errors import ConfigurationError
from repro.exec import CHUNKS_PER_WORKER, chunk_spans, mapper, pmap, task_seeds
from repro.exec.merge import FALLBACKS_TOTAL
from repro.obs.runtime import observed

from .workers import boom, nested, record, square, with_seed

ITEMS = list(range(10))


class TestValidation:
    @pytest.mark.parametrize("jobs", [0, -1, True, 1.5, "2", None])
    def test_bad_jobs_rejected(self, jobs):
        with pytest.raises(ConfigurationError, match="jobs must be"):
            pmap(square, ITEMS, jobs=jobs)

    def test_chunk_size_below_one_rejected(self):
        with pytest.raises(ConfigurationError, match="chunk_size"):
            chunk_spans(10, 2, chunk_size=0)


class TestChunkSpans:
    def test_partitions_in_order(self):
        spans = chunk_spans(10, 3, chunk_size=4)
        assert [list(span) for span in spans] == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]

    def test_default_targets_chunks_per_worker(self):
        spans = chunk_spans(100, 4)
        assert len(spans) >= 4 * CHUNKS_PER_WORKER - 3
        assert sorted(i for span in spans for i in span) == list(range(100))

    def test_empty(self):
        assert chunk_spans(0, 4) == []


class TestSeeds:
    def test_prefix_stable(self):
        assert task_seeds(123, 3) == task_seeds(123, 10)[:3]

    def test_root_changes_seeds(self):
        assert task_seeds(1, 4) != task_seeds(2, 4)

    def test_seed_passed_by_index_at_any_worker_count(self):
        serial = pmap(with_seed, ITEMS, jobs=1, seed_root=42)
        parallel = pmap(with_seed, ITEMS, jobs=3, seed_root=42)
        chunked = pmap(with_seed, ITEMS, jobs=3, seed_root=42, chunk_size=1)
        assert serial == parallel == chunked
        assert [item for item, _ in serial] == ITEMS


class TestResults:
    def test_serial_values_in_order(self):
        assert pmap(square, ITEMS, jobs=1) == [i * i for i in ITEMS]

    def test_parallel_values_in_order(self):
        assert pmap(square, ITEMS, jobs=3, payload=100) == [
            100 + i * i for i in ITEMS
        ]

    def test_single_task_stays_inline(self):
        assert pmap(square, [7], jobs=4) == [49]

    def test_on_result_streams_in_input_order(self):
        seen = []
        pmap(square, ITEMS, jobs=3, on_result=lambda i, v: seen.append(i))
        assert seen == ITEMS

    def test_exception_propagates(self):
        with pytest.raises(ValueError, match="boom"):
            pmap(boom, ITEMS, jobs=1)
        with pytest.raises(ValueError, match="boom"):
            pmap(boom, ITEMS, jobs=2)

    def test_nested_call_degrades_to_serial(self):
        assert pmap(nested, [1, 2], jobs=2) == [1 + 4, 4 + 9]

    def test_mapper_binds_jobs(self):
        bound = mapper(2)
        assert bound(square, ITEMS, 100) == [100 + i * i for i in ITEMS]


class TestFallback:
    def test_unpicklable_fn_counted_and_correct(self):
        with observed() as bundle:
            values = pmap(lambda payload, item: item + 1, ITEMS, jobs=2)
        assert values == [i + 1 for i in ITEMS]
        counters = bundle.snapshot()["counters"]
        assert counters[FALLBACKS_TOTAL] == 1

    def test_serial_path_records_no_fallback(self):
        with observed() as bundle:
            pmap(square, ITEMS, jobs=1)
        assert FALLBACKS_TOTAL not in bundle.snapshot()["counters"]


class TestObservabilityIdentity:
    def run_once(self, jobs):
        sink = io.StringIO()
        with observed(trace_sink=sink, deterministic=True) as bundle:
            values = pmap(record, ITEMS, jobs=jobs)
            snapshot = bundle.snapshot()
        return values, snapshot, sink.getvalue()

    def test_snapshot_and_trace_identical_to_serial(self):
        serial_values, serial_snapshot, serial_trace = self.run_once(1)
        parallel_values, parallel_snapshot, parallel_trace = self.run_once(4)
        assert serial_values == parallel_values == ITEMS
        assert json.dumps(serial_snapshot, sort_keys=True) == json.dumps(
            parallel_snapshot, sort_keys=True
        )
        assert serial_trace == parallel_trace

    def test_worker_metrics_merged(self):
        _, snapshot, trace = self.run_once(3)
        assert snapshot["counters"]["worker.calls"] == len(ITEMS)
        gauge = snapshot["gauges"]["worker.last_item"]
        # Last-writer in input order, extrema over all tasks.
        assert gauge["value"] == ITEMS[-1]
        assert gauge["min"] == ITEMS[0]
        assert gauge["updates"] == len(ITEMS)
        assert snapshot["histograms"]["worker.item"]["count"] == len(ITEMS)
        names = [json.loads(line)["name"] for line in trace.splitlines()]
        assert names.count("worker.task") == 2 * len(ITEMS)  # open + close
        assert names.count("worker.tick") == len(ITEMS)

    def test_disabled_bundle_records_nothing(self):
        from repro.obs.runtime import NULL_OBS

        before = len(NULL_OBS.registry)
        assert pmap(record, ITEMS, jobs=2) == ITEMS
        assert len(NULL_OBS.registry) == before
