"""Sharded campaign execution: bit-identity at any worker count."""

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.obs.runtime import Observability
from repro.exec.sharded import run_sharded, shard_spill_paths
from repro.faults import random_crash_spec
from repro.sim.chronicle import iter_spilled
from repro.sim.datacenter import DatacenterConfig
from repro.strategies.firstfit import FirstFitStrategy
from repro.strategies.random_fit import RandomFitStrategy
from repro.testbed.benchmarks import WorkloadClass
from repro.workloads.assignment import PreparedJob
from repro.workloads.qos import QoSPolicy


def make_jobs(n):
    classes = list(WorkloadClass)
    return [
        PreparedJob(
            job_id=i + 1,
            submit_time_s=15.0 * i,
            workload_class=classes[i % len(classes)],
            n_vms=1 + i % 3,
            burst_id=i // 4,
        )
        for i in range(n)
    ]


def run(jobs=None, *, shards=1, workers=1, config=None, faults=None, obs=None):
    return run_sharded(
        jobs if jobs is not None else make_jobs(14),
        FirstFitStrategy(2),
        QoSPolicy.unlimited(),
        config if config is not None else DatacenterConfig(n_servers=6),
        shards=shards,
        workers=workers,
        faults=faults,
        obs=obs,
    )


class TestValidation:
    def test_bad_counts_rejected(self):
        with pytest.raises(ConfigurationError, match="shards must be"):
            run(shards=0)
        with pytest.raises(ConfigurationError, match="workers must be"):
            run(workers=0)


class TestSpillPaths:
    def test_no_spill_and_single_shard_pass_through(self):
        config = DatacenterConfig(n_servers=4)
        assert shard_spill_paths(config, 3) == (None, None, None)
        spilling = DatacenterConfig(
            n_servers=4,
            record_chronicles=True,
            chronicle_capacity=2,
            chronicle_spill_path="x.jsonl",
        )
        assert shard_spill_paths(spilling, 1) == ("x.jsonl",)
        assert shard_spill_paths(spilling, 2) == (
            "x.jsonl.shard000",
            "x.jsonl.shard001",
        )


class TestShardedIdentity:
    def test_single_shard_matches_plain_simulator(self):
        from repro.sim.datacenter import DatacenterSimulator

        plain = DatacenterSimulator(DatacenterConfig(n_servers=6)).run(
            make_jobs(14), FirstFitStrategy(2), QoSPolicy.unlimited()
        )
        sharded = run(shards=1)
        assert sharded.metrics == plain.metrics
        assert sorted(sharded.outcomes, key=lambda o: o.job_id) == sorted(
            plain.outcomes, key=lambda o: o.job_id
        )

    def test_sharding_conserves_jobs_and_energy_split(self):
        # Shard decomposition changes placement (each shard only sees
        # its slice), but never loses jobs or breaks the energy split.
        sharded = run(shards=3)
        assert sorted(o.job_id for o in sharded.outcomes) == [
            j.job_id for j in make_jobs(14)
        ]
        assert sharded.metrics.energy_j == pytest.approx(
            sharded.metrics.busy_energy_j + sharded.metrics.idle_energy_j
        )
        assert sharded.n_servers == 6

    def test_worker_count_is_invisible(self):
        serial = run(shards=3, workers=1)
        pooled = run(shards=3, workers=2)
        assert pooled == serial

    def test_worker_count_is_invisible_under_faults(self):
        spec = random_crash_spec(seed=7, crash_rate_per_1000s=4.0, recover_after_s=120.0)
        serial = run(shards=3, workers=1, faults=spec)
        pooled = run(shards=3, workers=3, faults=spec)
        assert pooled.outcomes == serial.outcomes
        assert pooled.fault_log == serial.fault_log
        assert pooled.metrics == serial.metrics

    def test_metrics_snapshots_match_across_worker_counts(self):
        snapshots = []
        for workers in (1, 2):
            obs = Observability()
            run(shards=2, workers=workers, obs=obs)
            snapshot = obs.snapshot()
            # Scheduling internals legitimately vary with the pool
            # size; everything the *simulation* records must not.
            for volatile in ("exec.fallbacks", "exec.rescues"):
                snapshot.get("counters", {}).pop(volatile, None)
            snapshots.append(json.dumps(snapshot, sort_keys=True))
        assert snapshots[0] == snapshots[1]

    def test_stateful_strategy_not_shared_between_shards(self):
        # Each shard must see a fresh deep copy; with a shared RNG the
        # serial path would consume draws shard-by-shard in a way a
        # pool could not reproduce.
        def run_rand(workers):
            return run_sharded(
                make_jobs(10),
                RandomFitStrategy(2, rng=123),
                QoSPolicy.unlimited(),
                DatacenterConfig(n_servers=6),
                shards=2,
                workers=workers,
            )

        assert run_rand(1) == run_rand(2)


class TestShardedChronicles:
    def test_global_server_names_and_spills(self, tmp_path):
        base = str(tmp_path / "spill.jsonl")
        config = DatacenterConfig(
            n_servers=5,
            record_chronicles=True,
            chronicle_capacity=2,
            chronicle_spill_path=base,
        )
        result = run(shards=2, workers=2, config=config)
        assert [c.server_id for c in result.chronicles] == [
            f"s{i:04d}" for i in range(5)
        ]
        # Every chronicle can replay its full log from its shard's
        # spill file, and the replayed energy matches the aggregates.
        for chronicle in result.chronicles:
            intervals = list(chronicle.iter_all())
            assert len(intervals) == chronicle.n_recorded
            assert sum(i.energy_j for i in intervals) == pytest.approx(
                chronicle.total_energy_j()
            )
        paths = {c.spill_path for c in result.chronicles if c.n_evicted}
        assert paths  # this workload evicts on a capacity-2 ring
        for path in paths:
            assert path.startswith(base + ".shard")
            assert list(iter_spilled(path))


class TestJobSpooling:
    """spool_dir bounds resident jobs without changing a single bit."""

    def spooled(self, tmp_path, *, workers=1, faults=None):
        tmp_path.mkdir(parents=True, exist_ok=True)
        return run_sharded(
            make_jobs(30),
            FirstFitStrategy(2),
            QoSPolicy.unlimited(),
            DatacenterConfig(n_servers=6),
            shards=3,
            workers=workers,
            faults=faults,
            spool_dir=str(tmp_path),
        )

    def test_spooled_matches_in_memory(self, tmp_path):
        plain = run(make_jobs(30), shards=3)
        spooled = self.spooled(tmp_path)
        assert spooled == plain

    def test_spool_files_one_per_shard(self, tmp_path):
        self.spooled(tmp_path)
        names = sorted(p.name for p in tmp_path.glob("jobs_shard*.pkl"))
        assert names == ["jobs_shard000.pkl", "jobs_shard001.pkl", "jobs_shard002.pkl"]

    def test_spooled_identical_across_worker_counts(self, tmp_path):
        serial = self.spooled(tmp_path / "a", workers=1)
        pooled = self.spooled(tmp_path / "b", workers=2)
        assert serial == pooled

    def test_spooled_identical_under_faults(self, tmp_path):
        spec = random_crash_spec(seed=7, crash_rate_per_1000s=4.0, recover_after_s=120.0)
        plain = run(make_jobs(30), shards=3, faults=spec)
        spooled = self.spooled(tmp_path, faults=spec)
        assert spooled == plain

    def run_spooled(self, jobs, tmp_path):
        return run_sharded(
            jobs,
            FirstFitStrategy(2),
            QoSPolicy.unlimited(),
            DatacenterConfig(n_servers=6),
            shards=3,
            spool_dir=str(tmp_path),
        )

    def test_lazy_iterator_streams_to_identical_result(self, tmp_path):
        plain = run(make_jobs(30), shards=3)
        spooled = self.run_spooled(iter(make_jobs(30)), tmp_path)
        assert spooled == plain

    def test_unsorted_list_is_sorted_first(self, tmp_path):
        plain = run(make_jobs(30), shards=3)
        spooled = self.run_spooled(list(reversed(make_jobs(30))), tmp_path)
        assert spooled == plain

    def test_out_of_order_lazy_iterator_rejected(self, tmp_path):
        # A lazy stream cannot be sorted without materializing it, and
        # a different visit order would break bit-identity with the
        # in-memory partition -- so it must fail loudly instead.
        with pytest.raises(ConfigurationError, match="sorted"):
            self.run_spooled(iter(reversed(make_jobs(30))), tmp_path)

    def test_chunked_spool_files_replay_in_order(self, tmp_path, monkeypatch):
        import repro.exec.sharded as sharded_mod

        monkeypatch.setattr(sharded_mod, "_SPOOL_CHUNK", 4)
        plain = run(make_jobs(30), shards=3)
        spooled = self.run_spooled(iter(make_jobs(30)), tmp_path)
        assert spooled == plain
