"""Registry dump/merge and tracer replay: the merge-side primitives."""

from __future__ import annotations

import io
import json

import pytest

from repro.common.errors import ConfigurationError
from repro.exec.merge import (
    TASK_WALL_HISTOGRAM,
    TaskCapture,
    merge_capture,
    parse_trace_lines,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.runtime import Observability
from repro.obs.tracer import Tracer


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("c.total").inc(3)
    registry.counter("c.labeled", kind="x").inc()
    gauge = registry.gauge("g.depth")
    gauge.set(5.0)
    gauge.set(2.0)
    registry.histogram("h.lat", unit="s").observe(0.02)
    registry.histogram("h.wall", unit="s", volatile=True).observe(1.5)
    return registry


class TestDumpState:
    def test_roundtrip_into_empty_registry_is_lossless(self):
        source = populated_registry()
        target = MetricsRegistry()
        target.merge_state(source.dump_state())
        assert json.dumps(
            target.snapshot(include_volatile=True), sort_keys=True
        ) == json.dumps(source.snapshot(include_volatile=True), sort_keys=True)

    def test_dump_is_json_serializable_and_sorted(self):
        dump = populated_registry().dump_state()
        json.dumps(dump)
        assert [r["name"] for r in dump] == sorted(r["name"] for r in dump)

    def test_counters_add(self):
        target = MetricsRegistry()
        dump = populated_registry().dump_state()
        target.merge_state(dump)
        target.merge_state(dump)
        assert target.counter("c.total").value == 6

    def test_gauge_merge_semantics(self):
        target = MetricsRegistry()
        target.gauge("g.depth").set(9.0)
        target.merge_state(populated_registry().dump_state())
        gauge = target.gauge("g.depth")
        assert gauge.value == 2.0  # incoming wins (task-order last writer)
        assert gauge.max == 9.0  # extrema combine
        assert gauge.min == 2.0
        assert gauge.updates == 3

    def test_histogram_bucket_mismatch_rejected(self):
        source = MetricsRegistry()
        source.histogram("h", buckets=(1.0, 2.0)).observe(1.0)
        target = MetricsRegistry()
        target.histogram("h", buckets=(5.0, 6.0)).observe(5.0)
        with pytest.raises(ConfigurationError, match="bucket bounds differ"):
            target.merge_state(source.dump_state())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown instrument kind"):
            MetricsRegistry().merge_state(
                [{"name": "x", "labels": [], "kind": "exotic"}]
            )


class TestTracerReplay:
    def events_of(self, sink: io.StringIO) -> list[dict]:
        return [json.loads(line) for line in sink.getvalue().splitlines()]

    def capture_worker_trace(self) -> str:
        sink = io.StringIO()
        tracer = Tracer(sink, deterministic=True)
        with tracer.span("task.outer", index=4):
            tracer.point("task.point")
        return sink.getvalue()

    def test_ids_remapped_and_roots_reparented(self):
        parent_sink = io.StringIO()
        parent = Tracer(parent_sink, deterministic=True)
        host = parent.start("host")
        parent.replay(parse_trace_lines(self.capture_worker_trace()))
        host.end()
        events = self.events_of(parent_sink)
        outer = [e for e in events if e["name"] == "task.outer"][0]
        point = [e for e in events if e["name"] == "task.point"][0]
        assert outer["span_id"] == 2  # remapped past the host span
        assert outer["parent_id"] == 1  # reparented under host
        assert point["parent_id"] == outer["span_id"]

    def test_next_spans_do_not_collide_after_replay(self):
        parent = Tracer(io.StringIO(), deterministic=True)
        parent.replay(parse_trace_lines(self.capture_worker_trace()))
        span = parent.start("after")
        assert span.span_id == 3  # worker used ids 1..2

    def test_deterministic_restamp(self):
        first = io.StringIO()
        parent = Tracer(first, deterministic=True)
        parent.replay(parse_trace_lines(self.capture_worker_trace()))
        second = io.StringIO()
        other = Tracer(second, deterministic=True)
        other.replay(parse_trace_lines(self.capture_worker_trace()))
        assert first.getvalue() == second.getvalue()
        t_walls = [e["t_wall"] for e in self.events_of(first)]
        assert t_walls == [0.0, 1.0, 2.0]

    def test_empty_replay_is_noop(self):
        parent = Tracer(io.StringIO(), deterministic=True)
        parent.replay([])
        assert parent.n_events == 0


class TestMergeCapture:
    def make_capture(self, index=0) -> TaskCapture:
        registry = MetricsRegistry()
        registry.counter("task.done").inc()
        return TaskCapture(
            index=index,
            value=index,
            wall_s=0.25,
            registry_state=registry.dump_state(),
        )

    def test_merges_registry_and_wall_histogram(self):
        obs = Observability()
        merge_capture(obs, self.make_capture())
        snapshot = obs.registry.snapshot()
        assert snapshot["counters"]["task.done"] == 1
        wall = snapshot["histograms"][TASK_WALL_HISTOGRAM]
        assert wall["count"] == 1
        assert wall["volatile"] is True
        assert "sum" not in wall  # volatile: values hidden from snapshots

    def test_idempotent_per_capture(self):
        obs = Observability()
        capture = self.make_capture()
        merge_capture(obs, capture)
        merge_capture(obs, capture)
        assert obs.registry.counter("task.done").value == 1

    def test_disabled_bundle_short_circuits(self):
        from repro.obs.runtime import NULL_OBS

        before = len(NULL_OBS.registry)
        merge_capture(NULL_OBS, self.make_capture())
        assert len(NULL_OBS.registry) == before
