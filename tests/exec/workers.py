"""Module-level worker functions for the engine tests.

They must live in an importable module (not a test body) so the spawn
start method can re-import them inside pool workers.
"""

from __future__ import annotations

from repro.obs.runtime import get_observability


def square(payload, item):
    return (payload or 0) + item * item


def with_seed(payload, item, seed):
    return (item, seed)


def record(payload, item):
    """Record one counter, one gauge, one span -- merge-path coverage."""
    obs = get_observability()
    obs.registry.counter("worker.calls").inc()
    obs.registry.gauge("worker.last_item").set(item)
    obs.registry.histogram("worker.item", unit="n").observe(item)
    with obs.tracer.span("worker.task", index=item):
        obs.tracer.point("worker.tick", index=item)
    return item


def boom(payload, item):
    if item == 3:
        raise ValueError("boom at 3")
    return item


def nested(payload, item):
    """A worker that itself calls pmap (must degrade to serial)."""
    from repro.exec import pmap

    return sum(pmap(square, [item, item + 1], jobs=2))
