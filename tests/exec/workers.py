"""Module-level worker functions for the engine tests.

They must live in an importable module (not a test body) so the spawn
start method can re-import them inside pool workers.
"""

from __future__ import annotations

from repro.obs.runtime import get_observability


def square(payload, item):
    return (payload or 0) + item * item


def with_seed(payload, item, seed):
    return (item, seed)


def record(payload, item):
    """Record one counter, one gauge, one span -- merge-path coverage."""
    obs = get_observability()
    obs.registry.counter("worker.calls").inc()
    obs.registry.gauge("worker.last_item").set(item)
    obs.registry.histogram("worker.item", unit="n").observe(item)
    with obs.tracer.span("worker.task", index=item):
        obs.tracer.point("worker.tick", index=item)
    return item


def boom(payload, item):
    if item == 3:
        raise ValueError("boom at 3")
    return item


#: Per-process attempt counts for :func:`flaky` (attempts of one task
#: all run in the same process, so a module global sees every retry).
_FLAKY_ATTEMPTS: dict = {}


def reset_flaky():
    _FLAKY_ATTEMPTS.clear()


def flaky(payload, item):
    """Raise TransientTaskError for the first ``payload`` calls per item."""
    from repro.common.errors import TransientTaskError

    attempts = _FLAKY_ATTEMPTS.get(item, 0) + 1
    _FLAKY_ATTEMPTS[item] = attempts
    if attempts <= (payload or 0):
        raise TransientTaskError(f"flaky item {item} attempt {attempts}")
    return item * item


def always_transient(payload, item):
    from repro.common.errors import TransientTaskError

    raise TransientTaskError(f"item {item} never succeeds")


def nested(payload, item):
    """A worker that itself calls pmap (must degrade to serial)."""
    from repro.exec import pmap

    return sum(pmap(square, [item, item + 1], jobs=2))
