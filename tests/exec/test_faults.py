"""Worker-failure injection and the engine's bounded-retry policy.

``pmap(fault_plan=...)`` injects :class:`TransientTaskError` before a
task's function runs; the engine retries with deterministic backoff up
to :data:`MAX_TASK_ATTEMPTS` attempts, then the parent re-executes the
task itself (the counted serial last resort).  Values, ordering and
merged observability state must be unaffected at any worker count.
"""

from __future__ import annotations

import json

import pytest

from repro.common.errors import ConfigurationError, FaultSpecError, TransientTaskError
from repro.exec import MAX_TASK_ATTEMPTS, pmap, retry_backoff_s
from repro.exec.engine import RETRY_BACKOFF_BASE_S
from repro.exec.merge import RESCUES_TOTAL
from repro.faults import FAULTS_INJECTED, FAULTS_RETRIES, WorkerFaultPlan
from repro.obs.runtime import observed

from .workers import always_transient, flaky, reset_flaky, square

ITEMS = list(range(8))
#: Task 0 fails once, task 3 twice (both recover in-worker); task 5
#: fails more times than the engine will attempt, forcing a rescue.
PLAN = {0: 1, 3: 2, 5: MAX_TASK_ATTEMPTS + 2}


class TestBackoff:
    def test_exponential_schedule(self):
        assert retry_backoff_s(1) == pytest.approx(RETRY_BACKOFF_BASE_S)
        assert retry_backoff_s(2) == pytest.approx(2 * RETRY_BACKOFF_BASE_S)
        assert retry_backoff_s(3) == pytest.approx(4 * RETRY_BACKOFF_BASE_S)

    def test_attempt_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            retry_backoff_s(0)


class TestInjection:
    @pytest.mark.parametrize("jobs", [1, 3])
    def test_values_unaffected_by_injection(self, jobs):
        assert pmap(square, ITEMS, jobs=jobs, fault_plan=PLAN) == [
            i * i for i in ITEMS
        ]

    def test_plain_mapping_normalized(self):
        plan = WorkerFaultPlan(failures=PLAN)
        assert pmap(square, ITEMS, jobs=1, fault_plan=plan) == pmap(
            square, ITEMS, jobs=1, fault_plan=PLAN
        )

    def test_bad_plan_rejected(self):
        with pytest.raises(FaultSpecError, match="failure count"):
            pmap(square, ITEMS, jobs=1, fault_plan={0: 0})
        with pytest.raises(FaultSpecError, match="task index"):
            pmap(square, ITEMS, jobs=1, fault_plan={-2: 1})

    def test_out_of_range_task_indexes_are_inert(self):
        # A plan for task 99 of an 8-item map simply never fires.
        assert pmap(square, ITEMS, jobs=1, fault_plan={99: 2}) == [
            i * i for i in ITEMS
        ]

    def test_on_result_fires_once_per_task(self):
        seen = []
        pmap(square, ITEMS, jobs=1, fault_plan=PLAN, on_result=lambda i, v: seen.append(i))
        assert sorted(seen) == ITEMS


class TestCounters:
    def run_observed(self, jobs):
        with observed(deterministic=True) as bundle:
            values = pmap(square, ITEMS, jobs=jobs, fault_plan=PLAN)
            counters = dict(bundle.registry.counter_values())
            snapshot = bundle.snapshot()
        return values, counters, snapshot

    @pytest.mark.parametrize("jobs", [1, 3])
    def test_retry_accounting(self, jobs):
        _, counters, _ = self.run_observed(jobs)
        # Injections are capped by the attempt budget: 1 + 2 for the
        # recovering tasks, MAX_TASK_ATTEMPTS for the exhausted one.
        assert counters[FAULTS_INJECTED] == 3 + MAX_TASK_ATTEMPTS
        # Retries are the sleeps taken: 1 + 2 + (MAX_TASK_ATTEMPTS - 1).
        assert counters[FAULTS_RETRIES] == 3 + MAX_TASK_ATTEMPTS - 1
        assert counters[RESCUES_TOTAL] == 1

    def test_serial_pool_snapshot_identity(self):
        serial_values, _, serial_snapshot = self.run_observed(jobs=1)
        pool_values, _, pool_snapshot = self.run_observed(jobs=3)
        assert serial_values == pool_values
        assert json.dumps(serial_snapshot, sort_keys=True) == json.dumps(
            pool_snapshot, sort_keys=True
        )

    def test_no_plan_leaves_no_fault_counters(self):
        with observed(deterministic=True) as bundle:
            pmap(square, ITEMS, jobs=1)
            counters = bundle.registry.counter_values()
        assert FAULTS_INJECTED not in counters
        assert FAULTS_RETRIES not in counters
        assert RESCUES_TOTAL not in counters


class TestFunctionRaisedTransients:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_flaky_function_retried_to_success(self, jobs):
        reset_flaky()
        # Each item fails twice then succeeds: within the attempt budget.
        assert pmap(flaky, [1, 2], jobs=jobs, payload=2) == [1, 4]

    def test_flaky_retries_counted(self):
        reset_flaky()
        with observed(deterministic=True) as bundle:
            pmap(flaky, [1, 2], jobs=1, payload=2)
            counters = bundle.registry.counter_values()
        assert counters[FAULTS_RETRIES] == 4
        # fn-raised transients are real failures, not injections.
        assert FAULTS_INJECTED not in counters

    def test_always_transient_propagates_from_rescue(self):
        # Exhausts in the worker, then fails the parent's rescue too:
        # the error must surface, not be swallowed.
        with pytest.raises(TransientTaskError, match="never succeeds"):
            pmap(always_transient, [0], jobs=1)
