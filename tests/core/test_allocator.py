"""Unit tests for the proactive allocation algorithm."""

import pytest

from repro.common.errors import (
    ConfigurationError,
    InfeasibleAllocationError,
    QoSViolationError,
)
from repro.core.allocator import ProactiveAllocator, ServerState, VMRequest
from repro.testbed.benchmarks import WorkloadClass


def cpu_requests(n, deadline=None):
    return [VMRequest(f"c{i}", WorkloadClass.CPU, deadline) for i in range(n)]


def servers(n):
    return [ServerState(f"s{i}") for i in range(n)]


class TestValidation:
    def test_vm_request_fields(self):
        with pytest.raises(ConfigurationError):
            VMRequest("", WorkloadClass.CPU)
        with pytest.raises(ConfigurationError):
            VMRequest("a", WorkloadClass.CPU, max_exec_time_s=0.0)

    def test_server_state_fields(self):
        with pytest.raises(ConfigurationError):
            ServerState("")
        with pytest.raises(ConfigurationError):
            ServerState("s0", allocated=(-1, 0, 0))
        with pytest.raises(ConfigurationError):
            ServerState("s0", max_vms=0)

    def test_duplicate_vm_ids_rejected(self, database):
        allocator = ProactiveAllocator(database)
        requests = [VMRequest("x", WorkloadClass.CPU), VMRequest("x", WorkloadClass.CPU)]
        with pytest.raises(ConfigurationError, match="duplicate"):
            allocator.allocate(requests, servers(2))

    def test_bad_alpha_rejected(self, database):
        with pytest.raises(ValueError):
            ProactiveAllocator(database, alpha=1.5)

    def test_bad_candidate_limit_rejected(self, database):
        with pytest.raises(ConfigurationError):
            ProactiveAllocator(database, max_candidates=0)


class TestBasicAllocation:
    def test_empty_batch_is_empty_plan(self, database):
        plan = ProactiveAllocator(database).allocate([], servers(2))
        assert plan.assignments == ()
        assert plan.qos_satisfied

    def test_no_servers_raises(self, database):
        with pytest.raises(InfeasibleAllocationError):
            ProactiveAllocator(database).allocate(cpu_requests(1), [])

    def test_all_vms_placed_exactly_once(self, database):
        plan = ProactiveAllocator(database).allocate(cpu_requests(6), servers(3))
        placements = plan.placements()
        assert sorted(placements) == [f"c{i}" for i in range(6)]

    def test_blocks_respect_grid_bounds(self, database):
        osc, osm, osi = database.grid_bounds
        plan = ProactiveAllocator(database).allocate(cpu_requests(osc + 3), servers(4))
        for a in plan.assignments:
            assert database.within_bounds(a.combined_key)

    def test_existing_allocations_respected(self, database):
        osc = database.grid_bounds[0]
        # One server nearly full of CPU VMs: a big batch must spill over.
        busy = ServerState("busy", allocated=(osc - 1, 0, 0))
        idle = ServerState("idle")
        plan = ProactiveAllocator(database, alpha=0.0).allocate(
            cpu_requests(4), [busy, idle]
        )
        for a in plan.assignments:
            assert database.within_bounds(a.combined_key)
        assert any(a.server_id == "idle" for a in plan.assignments)

    def test_infeasible_when_everything_full(self, database):
        osc, osm, osi = database.grid_bounds
        full = [ServerState(f"s{i}", allocated=(osc, osm, osi)) for i in range(2)]
        with pytest.raises(InfeasibleAllocationError):
            ProactiveAllocator(database).allocate(cpu_requests(1), full)

    def test_mixed_class_batch(self, database):
        requests = [
            VMRequest("c0", WorkloadClass.CPU),
            VMRequest("m0", WorkloadClass.MEM),
            VMRequest("i0", WorkloadClass.IO),
        ]
        plan = ProactiveAllocator(database).allocate(requests, servers(3))
        assert set(plan.placements()) == {"c0", "m0", "i0"}

    def test_class_ids_bound_to_matching_blocks(self, database):
        requests = [
            VMRequest("c0", WorkloadClass.CPU),
            VMRequest("c1", WorkloadClass.CPU),
            VMRequest("m0", WorkloadClass.MEM),
        ]
        plan = ProactiveAllocator(database).allocate(requests, servers(2))
        for a in plan.assignments:
            ncpu, nmem, nio = a.block
            cpu_ids = [v for v in a.vm_ids if v.startswith("c")]
            mem_ids = [v for v in a.vm_ids if v.startswith("m")]
            assert len(cpu_ids) == ncpu
            assert len(mem_ids) == nmem


class TestOptimizationGoals:
    def test_energy_goal_consolidates(self, database):
        plan = ProactiveAllocator(database, alpha=1.0).allocate(
            cpu_requests(4), servers(4)
        )
        # Energy goal: amortize idle power, use few servers.
        assert len(set(plan.servers_used)) <= 2

    def test_time_goal_no_worse_makespan_than_energy_goal(self, database):
        fast = ProactiveAllocator(database, alpha=0.0).allocate(
            cpu_requests(8), servers(4)
        )
        frugal = ProactiveAllocator(database, alpha=1.0).allocate(
            cpu_requests(8), servers(4)
        )
        assert fast.estimated_makespan_s <= frugal.estimated_makespan_s + 1e-9

    def test_energy_goal_no_worse_energy_than_time_goal(self, database):
        fast = ProactiveAllocator(database, alpha=0.0).allocate(
            cpu_requests(8), servers(4)
        )
        frugal = ProactiveAllocator(database, alpha=1.0).allocate(
            cpu_requests(8), servers(4)
        )
        assert frugal.estimated_energy_j <= fast.estimated_energy_j + 1e-9


class TestQoS:
    def test_generous_deadline_satisfied(self, database):
        plan = ProactiveAllocator(database).allocate(
            cpu_requests(2, deadline=100_000.0), servers(2)
        )
        assert plan.qos_satisfied
        for a in plan.assignments:
            assert a.estimate.time_s <= 100_000.0

    def test_impossible_deadline_strict_raises(self, database):
        with pytest.raises(QoSViolationError):
            ProactiveAllocator(database, strict_qos=True).allocate(
                cpu_requests(2, deadline=1.0), servers(2)
            )

    def test_impossible_deadline_relaxed_places_anyway(self, database):
        plan = ProactiveAllocator(database, strict_qos=False).allocate(
            cpu_requests(2, deadline=1.0), servers(2)
        )
        assert not plan.qos_satisfied
        assert len(plan.placements()) == 2

    def test_tight_deadline_forces_spreading(self, database):
        # A deadline just above the solo runtime rules out heavy
        # consolidation even for the energy goal.
        tc = database.reference_time(WorkloadClass.CPU)
        plan = ProactiveAllocator(database, alpha=1.0).allocate(
            cpu_requests(6, deadline=tc * 1.3), servers(6)
        )
        assert plan.qos_satisfied
        for a in plan.assignments:
            assert a.estimate.time_s <= tc * 1.3


class TestServerTieBreak:
    def test_first_server_preferred_on_ties(self, database):
        # All servers identical and empty: the chosen one must be s0.
        plan = ProactiveAllocator(database, alpha=1.0).allocate(
            cpu_requests(2), servers(5)
        )
        assert set(plan.servers_used) == {"s0"}


class TestProvenance:
    def test_bad_bnb_threshold_rejected(self, database):
        with pytest.raises(ConfigurationError):
            ProactiveAllocator(database, bnb_min_vms=-1)

    def test_plan_carries_search_counters(self, database):
        plan = ProactiveAllocator(database).allocate(cpu_requests(3), servers(3))
        provenance = plan.search_provenance
        assert provenance is not None
        assert provenance.partitions_enumerated == 3  # {3}, {2,1}, {1,1,1}
        assert provenance.candidates_feasible > 0
        assert provenance.grid_hits > 0
        assert provenance.grid_misses == 0  # complete campaign grid
        assert provenance.frontier_peak <= provenance.candidates_feasible
        assert not provenance.bnb_active  # below the default threshold

    def test_reference_plan_has_no_provenance(self, database):
        plan = ProactiveAllocator(database).allocate_reference(
            cpu_requests(3), servers(3)
        )
        assert plan.search_provenance is None

    def test_frontier_smaller_than_pool(self, database):
        # The retained Pareto frontier must undercut the materialized
        # candidate pool (the whole point of streaming).
        allocator = ProactiveAllocator(database, alpha=0.5)
        requests = cpu_requests(5) + [
            VMRequest(f"m{i}", WorkloadClass.MEM) for i in range(4)
        ]
        plan = allocator.allocate(requests, servers(6))
        provenance = plan.search_provenance
        assert provenance.frontier_peak < provenance.candidates_feasible

    def test_bnb_activates_above_threshold(self, database):
        allocator = ProactiveAllocator(database, bnb_min_vms=2)
        plan = allocator.allocate(cpu_requests(3), servers(3))
        assert plan.search_provenance.bnb_active

    def test_provenance_excluded_from_plan_equality(self, database):
        allocator = ProactiveAllocator(database)
        requests = cpu_requests(4)
        optimized = allocator.allocate(requests, servers(4))
        reference = allocator.allocate_reference(requests, servers(4))
        assert optimized == reference
        assert optimized.search_provenance is not None
        assert reference.search_provenance is None

    def test_aggregate_capacity_fast_path(self, database):
        # A batch no server set could absorb fails before enumeration.
        osc, _, _ = database.grid_bounds
        full = [ServerState("s0", allocated=(osc, 0, 0), max_vms=osc)]
        with pytest.raises(InfeasibleAllocationError):
            ProactiveAllocator(database).allocate(cpu_requests(1), full)
