"""Unit tests for the model database."""

import pytest

from repro.campaign.optimal import ClassOptima, OptimalScenarios
from repro.campaign.records import BenchmarkRecord
from repro.common.errors import ConfigurationError, ModelLookupError
from repro.core.model import ModelDatabase
from repro.testbed.benchmarks import WorkloadClass


def tiny_optima(osc=2, osm=1, osi=1):
    return OptimalScenarios(
        per_class={
            WorkloadClass.CPU: ClassOptima(WorkloadClass.CPU, osc, 1, 100.0),
            WorkloadClass.MEM: ClassOptima(WorkloadClass.MEM, osm, 1, 150.0),
            WorkloadClass.IO: ClassOptima(WorkloadClass.IO, osi, 1, 200.0),
        }
    )


def rec(key, time_s, energy_j=1000.0):
    return BenchmarkRecord.from_measurement(key, time_s, energy_j, 200.0)


@pytest.fixture
def tiny_db():
    records = [
        rec((1, 0, 0), 100.0, 15_000.0),
        rec((2, 0, 0), 120.0, 20_000.0),
        rec((0, 1, 0), 150.0, 22_000.0),
        rec((0, 0, 1), 200.0, 28_000.0),
        rec((1, 1, 0), 170.0, 30_000.0),
        rec((1, 0, 1), 210.0, 33_000.0),
        rec((2, 1, 0), 200.0, 38_000.0),
        rec((0, 1, 1), 230.0, 36_000.0),
        rec((1, 1, 1), 260.0, 45_000.0),
        rec((2, 1, 1), 280.0, 52_000.0),
        rec((2, 0, 1), 240.0, 40_000.0),
    ]
    return ModelDatabase(records, tiny_optima())


class TestLookup:
    def test_exact_hit(self, tiny_db):
        assert tiny_db.lookup((1, 1, 0)).time_s == 170.0

    def test_miss_raises_with_key(self, tiny_db):
        with pytest.raises(ModelLookupError) as info:
            tiny_db.lookup((5, 5, 5))
        assert info.value.key == (5, 5, 5)

    def test_contains(self, tiny_db):
        assert (1, 0, 0) in tiny_db
        assert (9, 9, 9) not in tiny_db

    def test_len(self, tiny_db):
        assert len(tiny_db) == 11

    def test_keys_sorted(self, tiny_db):
        keys = list(tiny_db.keys())
        assert keys == sorted(keys)

    def test_keys_cached(self, tiny_db):
        # The key view is materialized once, not rebuilt per call.
        assert tiny_db.keys() is tiny_db.keys()


class TestBounds:
    def test_within_bounds(self, tiny_db):
        assert tiny_db.within_bounds((2, 1, 1))
        assert not tiny_db.within_bounds((3, 0, 0))
        assert not tiny_db.within_bounds((0, 2, 0))

    def test_grid_bounds(self, tiny_db):
        assert tiny_db.grid_bounds == (2, 1, 1)


class TestEstimate:
    def test_exact_estimate(self, tiny_db):
        est = tiny_db.estimate((1, 1, 1))
        assert est.exact
        assert est.time_s == 260.0
        assert est.avg_time_vm_s == pytest.approx(260.0 / 3)

    def test_proportional_estimate_scales_largest_dominated(self, tiny_db):
        # (3, 1, 1) missing: largest dominated record is (2,1,1) with 4
        # VMs; scale 5/4.
        est = tiny_db.estimate((3, 1, 1))
        assert not est.exact
        assert est.time_s == pytest.approx(280.0 * 5 / 4)
        assert est.energy_j == pytest.approx(52_000.0 * 5 / 4)

    def test_estimate_avg_power(self, tiny_db):
        est = tiny_db.estimate((1, 0, 0))
        assert est.avg_power_w == pytest.approx(150.0)

    def test_empty_mix_rejected(self, tiny_db):
        with pytest.raises(ValueError):
            tiny_db.estimate((0, 0, 0))


class TestEstimateGrid:
    def test_grid_property_shape(self, tiny_db):
        grid = tiny_db.estimate_grid
        assert grid.bounds == tiny_db.grid_bounds
        assert len(grid) == 3 * 2 * 2

    def test_in_grid_estimates_served_from_cache(self, tiny_db):
        # The cached cell is the very object the scan produced at build
        # time, so repeated estimates are identity-equal.
        assert tiny_db.estimate((1, 1, 0)) is tiny_db.estimate((1, 1, 0))
        assert tiny_db.estimate((1, 1, 0)) == tiny_db._estimate_scan((1, 1, 0))

    def test_off_grid_estimates_fall_back_to_scan(self, tiny_db):
        # (3,1,1) is outside the (2,1,1) grid: proportional scaling of
        # the largest dominated record (2,1,1), factor 5/4.
        est = tiny_db.estimate((3, 1, 1))
        assert not tiny_db.estimate_grid.covers((3, 1, 1))
        assert est == tiny_db._estimate_scan((3, 1, 1))
        assert est.time_s == pytest.approx(280.0 * 5 / 4)

    def test_missing_cell_raises_like_scan(self):
        partial = ModelDatabase([rec((1, 0, 0), 100.0)], tiny_optima())
        with pytest.raises(ModelLookupError):
            partial.estimate((0, 1, 0))
        with pytest.raises(ModelLookupError):
            partial._estimate_scan((0, 1, 0))


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ModelDatabase([], tiny_optima())

    def test_duplicates_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            ModelDatabase([rec((1, 0, 0), 1.0), rec((1, 0, 0), 2.0)], tiny_optima())

    def test_ranges(self, tiny_db):
        assert tiny_db.time_range_s == (100.0, 280.0)
        assert tiny_db.energy_range_j == (15_000.0, 52_000.0)

    def test_reference_time(self, tiny_db):
        assert tiny_db.reference_time(WorkloadClass.MEM) == 150.0


class TestFileRoundTrip:
    def test_save_load(self, tiny_db, tmp_path):
        db_path = tmp_path / "db.csv"
        aux_path = tmp_path / "aux.csv"
        tiny_db.save(db_path, aux_path)
        loaded = ModelDatabase.from_files(db_path, aux_path)
        assert len(loaded) == len(tiny_db)
        assert loaded.grid_bounds == tiny_db.grid_bounds


class TestFromCampaign:
    def test_full_grid_estimable(self, database):
        osc, osm, osi = database.grid_bounds
        for ncpu in range(osc + 1):
            for nmem in range(osm + 1):
                for nio in range(osi + 1):
                    if ncpu + nmem + nio == 0:
                        continue
                    est = database.estimate((ncpu, nmem, nio))
                    assert est.exact, (ncpu, nmem, nio)
                    assert est.time_s > 0

    def test_binary_search_agrees_with_scan(self, database):
        for record in database.records:
            assert database.lookup(record.key) is record
