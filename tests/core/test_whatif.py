"""Unit tests for the what-if goal comparison."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.allocator import ServerState, VMRequest
from repro.core.whatif import compare_goals
from repro.testbed.benchmarks import WorkloadClass


def requests(n=6, deadline=None):
    return [VMRequest(f"v{i}", WorkloadClass.CPU, deadline) for i in range(n)]


def servers(n=4):
    return [ServerState(f"s{i}") for i in range(n)]


class TestCompareGoals:
    def test_grid_evaluated(self, database):
        comparison = compare_goals(database, requests(), servers())
        assert [o.alpha for o in comparison.outcomes] == [0.0, 0.25, 0.5, 0.75, 1.0]
        assert all(o.feasible for o in comparison.outcomes)

    def test_endpoints_ordered(self, database):
        comparison = compare_goals(database, requests(), servers())
        fast = comparison.outcome(0.0)
        frugal = comparison.outcome(1.0)
        assert fast.makespan_s <= frugal.makespan_s + 1e-9
        assert frugal.energy_j <= fast.energy_j + 1e-9

    def test_energy_goal_uses_fewer_servers(self, database):
        comparison = compare_goals(database, requests(), servers())
        assert comparison.outcome(1.0).n_servers_used <= comparison.outcome(0.0).n_servers_used

    def test_pareto_front_nonempty_and_valid(self, database):
        comparison = compare_goals(database, requests(), servers())
        front = comparison.pareto_front()
        assert front
        for member in front:
            for other in comparison.outcomes:
                if not other.feasible:
                    continue
                strictly_better = (
                    other.makespan_s < member.makespan_s
                    and other.energy_j < member.energy_j
                )
                assert not strictly_better

    def test_infeasible_goal_captured_not_raised(self, database):
        tight = requests(n=2, deadline=1.0)
        comparison = compare_goals(database, tight, servers(), strict_qos=True)
        assert all(not o.feasible for o in comparison.outcomes)
        assert all(o.error for o in comparison.outcomes)
        assert comparison.outcome(0.5).makespan_s == float("inf")

    def test_unknown_alpha_lookup(self, database):
        comparison = compare_goals(database, requests(), servers())
        with pytest.raises(KeyError):
            comparison.outcome(0.33)

    def test_rows_shape(self, database):
        rows = compare_goals(database, requests(), servers()).rows()
        assert len(rows) == 5
        assert all(len(r) == 4 for r in rows)

    def test_empty_alphas_rejected(self, database):
        with pytest.raises(ConfigurationError):
            compare_goals(database, requests(), servers(), alphas=())
