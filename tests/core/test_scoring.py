"""Unit tests for the alpha trade-off scoring."""

import pytest

from repro.core.scoring import ScoreWeights, best_candidate_index, score_candidates


class TestScoreWeights:
    def test_weights_sum_to_one(self):
        weights = ScoreWeights(0.7)
        assert weights.energy_weight + weights.time_weight == pytest.approx(1.0)
        assert weights.energy_weight == 0.7

    @pytest.mark.parametrize("alpha", [-0.1, 1.1])
    def test_out_of_range_rejected(self, alpha):
        with pytest.raises(ValueError):
            ScoreWeights(alpha)

    def test_describe_matches_paper_naming(self):
        assert ScoreWeights(0.5).describe() == "PA-0.5"
        assert ScoreWeights(1.0).describe() == "PA-1"
        assert ScoreWeights(0.0).describe() == "PA-0"


class TestScoreCandidates:
    def test_alpha_one_ranks_by_energy(self):
        candidates = [(100.0, 500.0), (900.0, 100.0)]
        scores = score_candidates(candidates, ScoreWeights(1.0))
        assert scores[1] < scores[0]

    def test_alpha_zero_ranks_by_time(self):
        candidates = [(100.0, 500.0), (900.0, 100.0)]
        scores = score_candidates(candidates, ScoreWeights(0.0))
        assert scores[0] < scores[1]

    def test_balanced_blends(self):
        # Candidate dominating on both dimensions always wins.
        candidates = [(100.0, 100.0), (200.0, 200.0)]
        scores = score_candidates(candidates, ScoreWeights(0.5))
        assert scores[0] < scores[1]

    def test_normalization_relative_to_max(self):
        scores = score_candidates([(50.0, 50.0), (100.0, 100.0)], ScoreWeights(0.5))
        assert scores[1] == pytest.approx(1.0)
        assert scores[0] == pytest.approx(0.5)

    def test_degenerate_dimension_ignored(self):
        scores = score_candidates([(0.0, 10.0), (0.0, 20.0)], ScoreWeights(0.5))
        assert scores[0] < scores[1]

    def test_zero_time_pool_scores_by_energy_only(self):
        # All-zero time dimension: t_hat is defined as 0 for everyone,
        # so the score collapses to the weighted energy term.
        scores = score_candidates([(0.0, 50.0), (0.0, 100.0)], ScoreWeights(0.5))
        assert scores == [0.5 * 0.5, 0.5 * 1.0]

    def test_zero_energy_pool_scores_by_time_only(self):
        scores = score_candidates([(40.0, 0.0), (80.0, 0.0)], ScoreWeights(0.25))
        assert scores == [0.75 * 0.5, 0.75 * 1.0]

    def test_all_zero_pool_scores_zero(self):
        assert score_candidates([(0.0, 0.0), (0.0, 0.0)], ScoreWeights(0.5)) == [
            0.0,
            0.0,
        ]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            score_candidates([], ScoreWeights(0.5))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            score_candidates([(-1.0, 5.0)], ScoreWeights(0.5))


class TestExplicitMaxima:
    def test_explicit_maxima_override_pool_maxima(self):
        # The streamed allocator normalizes a Pareto subset by the full
        # pool's maxima; scores must match scoring the full pool.
        full = [(100.0, 100.0), (50.0, 80.0), (80.0, 50.0)]
        weights = ScoreWeights(0.5)
        full_scores = score_candidates(full, weights)
        subset = full[1:]
        subset_scores = score_candidates(subset, weights, maxima=(100.0, 100.0))
        assert subset_scores == full_scores[1:]

    def test_zero_maxima_degenerate(self):
        scores = score_candidates([(10.0, 20.0)], ScoreWeights(0.5), maxima=(0.0, 40.0))
        assert scores == [0.5 * 0.5]

    def test_negative_maxima_rejected(self):
        with pytest.raises(ValueError):
            score_candidates([(1.0, 1.0)], ScoreWeights(0.5), maxima=(-1.0, 1.0))


class TestTieEpsilon:
    def test_sub_epsilon_improvement_keeps_first(self):
        # A later candidate better by less than 1e-12 is treated as a
        # tie; the earliest-enumerated candidate must win.
        base = (100.0, 100.0)
        nearly = (100.0 * (1.0 - 1e-14), 100.0)
        index = best_candidate_index([base, nearly], ScoreWeights(0.0))
        assert index == 0

    def test_above_epsilon_improvement_moves_best(self):
        base = (100.0, 100.0)
        clearly = (100.0 * (1.0 - 1e-9), 100.0)
        index = best_candidate_index([base, clearly], ScoreWeights(0.0))
        assert index == 1


class TestBestCandidateIndex:
    def test_picks_minimum(self):
        index = best_candidate_index(
            [(300.0, 300.0), (100.0, 100.0), (200.0, 200.0)], ScoreWeights(0.5)
        )
        assert index == 1

    def test_tie_breaks_to_first(self):
        # "If two partitions have the same rank ... we select the first
        # server of the list."
        index = best_candidate_index(
            [(100.0, 100.0), (100.0, 100.0)], ScoreWeights(0.5)
        )
        assert index == 0
