"""Unit tests for the alpha trade-off scoring."""

import pytest

from repro.core.scoring import ScoreWeights, best_candidate_index, score_candidates


class TestScoreWeights:
    def test_weights_sum_to_one(self):
        weights = ScoreWeights(0.7)
        assert weights.energy_weight + weights.time_weight == pytest.approx(1.0)
        assert weights.energy_weight == 0.7

    @pytest.mark.parametrize("alpha", [-0.1, 1.1])
    def test_out_of_range_rejected(self, alpha):
        with pytest.raises(ValueError):
            ScoreWeights(alpha)

    def test_describe_matches_paper_naming(self):
        assert ScoreWeights(0.5).describe() == "PA-0.5"
        assert ScoreWeights(1.0).describe() == "PA-1"
        assert ScoreWeights(0.0).describe() == "PA-0"


class TestScoreCandidates:
    def test_alpha_one_ranks_by_energy(self):
        candidates = [(100.0, 500.0), (900.0, 100.0)]
        scores = score_candidates(candidates, ScoreWeights(1.0))
        assert scores[1] < scores[0]

    def test_alpha_zero_ranks_by_time(self):
        candidates = [(100.0, 500.0), (900.0, 100.0)]
        scores = score_candidates(candidates, ScoreWeights(0.0))
        assert scores[0] < scores[1]

    def test_balanced_blends(self):
        # Candidate dominating on both dimensions always wins.
        candidates = [(100.0, 100.0), (200.0, 200.0)]
        scores = score_candidates(candidates, ScoreWeights(0.5))
        assert scores[0] < scores[1]

    def test_normalization_relative_to_max(self):
        scores = score_candidates([(50.0, 50.0), (100.0, 100.0)], ScoreWeights(0.5))
        assert scores[1] == pytest.approx(1.0)
        assert scores[0] == pytest.approx(0.5)

    def test_degenerate_dimension_ignored(self):
        scores = score_candidates([(0.0, 10.0), (0.0, 20.0)], ScoreWeights(0.5))
        assert scores[0] < scores[1]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            score_candidates([], ScoreWeights(0.5))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            score_candidates([(-1.0, 5.0)], ScoreWeights(0.5))


class TestBestCandidateIndex:
    def test_picks_minimum(self):
        index = best_candidate_index(
            [(300.0, 300.0), (100.0, 100.0), (200.0, 200.0)], ScoreWeights(0.5)
        )
        assert index == 1

    def test_tie_breaks_to_first(self):
        # "If two partitions have the same rank ... we select the first
        # server of the list."
        index = best_candidate_index(
            [(100.0, 100.0), (100.0, 100.0)], ScoreWeights(0.5)
        )
        assert index == 0
