"""Unit tests for the anytime allocation mode.

Covers the :class:`AnytimeConfig` knobs, automatic mode selection with
its memoized partition-count check, the capped counting DP, the
deadline-expired exact fallback, seeded determinism, and the guarantee
that exact-mode runs leave the metrics snapshot byte-identical to the
pre-anytime allocator.
"""

import json
import math

import pytest

from repro.common.errors import ConfigurationError
from repro.core.allocator import ProactiveAllocator, ServerState, VMRequest
from repro.core.anytime import AnytimeConfig
from repro.core.partitions import (
    count_type_partitions,
    count_type_partitions_capped,
)
from repro.obs.runtime import observed
from repro.testbed.benchmarks import WorkloadClass


def cpu_requests(n):
    return [VMRequest(f"c{i}", WorkloadClass.CPU) for i in range(n)]


def mixed_requests(counts):
    cpu, mem, io = counts
    return (
        [VMRequest(f"c{i}", WorkloadClass.CPU) for i in range(cpu)]
        + [VMRequest(f"m{i}", WorkloadClass.MEM) for i in range(mem)]
        + [VMRequest(f"i{i}", WorkloadClass.IO) for i in range(io)]
    )


def servers(n, max_vms=12):
    return [ServerState(f"s{i}", max_vms=max_vms) for i in range(n)]


class TestAnytimeConfig:
    @pytest.mark.parametrize(
        "budget", [float("nan"), float("inf"), 0.0, -1.0, True]
    )
    def test_bad_time_budget_rejected(self, budget):
        with pytest.raises(ConfigurationError):
            AnytimeConfig(time_budget_s=budget)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"beam_width": 0},
            {"max_rounds": -1},
            {"max_neighbors": 0},
            {"exact_partition_limit": 0},
            {"mode_check_min_vms": -1},
            {"seed": -1},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            AnytimeConfig(**kwargs)

    def test_defaults_accepted(self):
        config = AnytimeConfig()
        assert config.time_budget_s is None
        assert config.beam_width >= 1

    def test_disabled_anytime_with_budget_rejected(self, database):
        with pytest.raises(ConfigurationError):
            ProactiveAllocator(database, anytime=False, time_budget_s=1.0)

    def test_bad_anytime_argument_rejected(self, database):
        with pytest.raises(ConfigurationError):
            ProactiveAllocator(database, anytime="fast")


class TestModeSelection:
    def test_small_batch_stays_exact(self, database):
        plan = ProactiveAllocator(database).allocate(cpu_requests(4), servers(3))
        provenance = plan.search_provenance
        assert provenance.mode == "exact"
        assert not provenance.anytime

    def test_forced_anytime(self, database):
        plan = ProactiveAllocator(database, anytime=True).allocate(
            cpu_requests(4), servers(3)
        )
        assert plan.search_provenance.mode == "anytime"

    def test_time_budget_forces_anytime_and_is_recorded(self, database):
        plan = ProactiveAllocator(database, time_budget_s=30.0).allocate(
            cpu_requests(4), servers(3)
        )
        provenance = plan.search_provenance
        assert provenance.mode == "anytime"
        assert provenance.time_budget_s == 30.0
        assert provenance.budget_consumed_s >= 0.0
        assert not provenance.budget_consumed_s > 30.0

    def test_large_mixed_batch_selects_anytime(self, database):
        # (6, 5, 5) has >100k type partitions against the test grid --
        # far past the default exact_partition_limit.
        plan = ProactiveAllocator(database).allocate(
            mixed_requests((6, 5, 5)), servers(16)
        )
        provenance = plan.search_provenance
        assert provenance.mode == "anytime"
        assert provenance.anytime_evaluated > 0
        assert provenance.anytime_beam_width >= 1

    def test_large_single_class_batch_stays_exact(self, database):
        # 24 CPU VMs clear the mode-check floor but only ~1k partitions
        # exist, so the check decides exact -- and the plan must be
        # bit-identical to a forced-exact allocator's.
        auto = ProactiveAllocator(database).allocate(cpu_requests(24), servers(8))
        exact = ProactiveAllocator(database, anytime=False).allocate(
            cpu_requests(24), servers(8)
        )
        assert auto.search_provenance.mode == "exact"
        assert auto == exact

    def test_mode_check_memoized(self, database):
        with observed() as bundle:
            allocator = ProactiveAllocator(database)
            allocator.allocate(cpu_requests(13), servers(8))
            counters = bundle.snapshot()["counters"]
            assert counters['allocator.mode_checks{outcome="computed"}'] == 1
            assert 'allocator.mode_checks{outcome="memo"}' not in counters
            allocator.allocate(cpu_requests(13), servers(8))
            counters = bundle.snapshot()["counters"]
            assert counters['allocator.mode_checks{outcome="computed"}'] == 1
            assert counters['allocator.mode_checks{outcome="memo"}'] == 1

    def test_no_mode_check_below_floor(self, database):
        with observed() as bundle:
            ProactiveAllocator(database).allocate(cpu_requests(4), servers(3))
            counters = bundle.snapshot()["counters"]
            assert not any("mode_checks" in key for key in counters)


class TestCappedCounting:
    @pytest.mark.parametrize(
        "counts", [(0, 0, 0), (3, 0, 0), (2, 2, 1), (4, 3, 3)]
    )
    @pytest.mark.parametrize("cap", [1, 5, 100, 10**9])
    def test_matches_min_of_true_count_and_cap(self, database, counts, cap):
        bounds = database.grid_bounds
        true = count_type_partitions(counts, bounds)
        capped = count_type_partitions_capped(counts, bounds, cap=cap)
        assert capped == min(true, cap)

    def test_shared_memo_reused(self, database):
        memo = {}
        bounds = database.grid_bounds
        first = count_type_partitions_capped(
            (4, 3, 3), bounds, cap=10**9, memo=memo
        )
        assert memo  # warm
        second = count_type_partitions_capped(
            (4, 3, 3), bounds, cap=10**9, memo=memo
        )
        assert first == second == count_type_partitions((4, 3, 3), bounds)

    def test_bad_cap_rejected(self, database):
        with pytest.raises(ValueError):
            count_type_partitions_capped((1, 0, 0), database.grid_bounds, cap=0)


class TestExactFallback:
    def test_expired_budget_falls_back_to_exact_plan(self, database):
        # A budget this small expires before the first candidate is
        # evaluated, so the anytime search returns empty-handed and the
        # allocator must rerun the exact enumerator.
        anytime = ProactiveAllocator(database, time_budget_s=1e-9).allocate(
            cpu_requests(4), servers(3)
        )
        exact = ProactiveAllocator(database, anytime=False).allocate(
            cpu_requests(4), servers(3)
        )
        provenance = anytime.search_provenance
        assert provenance.mode == "anytime"
        assert provenance.anytime_exact_fallback
        assert provenance.budget_consumed_s > 0.0
        assert anytime == exact


class TestDeterminism:
    def test_same_seed_same_plan(self, database):
        first = ProactiveAllocator(database, anytime=True).allocate(
            mixed_requests((3, 3, 2)), servers(6)
        )
        second = ProactiveAllocator(database, anytime=True).allocate(
            mixed_requests((3, 3, 2)), servers(6)
        )
        assert first == second
        assert first.search_provenance == second.search_provenance

    def test_explicit_config_seed_respected(self, database):
        # A custom config customizes the *automatic* selection: dropping
        # both thresholds makes this small batch take the anytime path.
        config = AnytimeConfig(seed=7, mode_check_min_vms=0, exact_partition_limit=1)
        first = ProactiveAllocator(database, anytime=config).allocate(
            mixed_requests((3, 3, 2)), servers(6)
        )
        second = ProactiveAllocator(database, anytime=config).allocate(
            mixed_requests((3, 3, 2)), servers(6)
        )
        assert first.search_provenance.mode == "anytime"
        assert first == second


class TestSnapshotCompatibility:
    def test_exact_mode_snapshot_has_no_anytime_keys(self, database):
        with observed() as bundle:
            ProactiveAllocator(database).allocate(cpu_requests(5), servers(3))
            snapshot = bundle.snapshot()
        rendered = json.dumps(snapshot, sort_keys=True)
        assert "anytime" not in rendered
        assert "mode_checks" not in rendered

    def test_exact_mode_snapshot_byte_identical_to_disabled(self, database):
        def run(**kwargs):
            with observed() as bundle:
                ProactiveAllocator(database, **kwargs).allocate(
                    cpu_requests(5), servers(3)
                )
                return json.dumps(bundle.snapshot(), sort_keys=True)

        assert run() == run(anytime=False)

    def test_exact_provenance_mode_string(self, database):
        plan = ProactiveAllocator(database, anytime=False).allocate(
            cpu_requests(5), servers(3)
        )
        assert plan.search_provenance.mode == "exact"
        assert math.isclose(plan.search_provenance.budget_consumed_s, 0.0)
