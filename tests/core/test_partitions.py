"""Unit tests for partition generation."""

import pytest

from repro.core.partitions import (
    bell_number,
    count_set_partitions,
    count_type_partitions,
    set_partitions,
    type_partitions,
)


class TestBellNumbers:
    def test_known_values(self):
        assert [bell_number(n) for n in range(9)] == [
            1, 1, 2, 5, 15, 52, 203, 877, 4140,
        ]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bell_number(-1)

    def test_alias(self):
        assert count_set_partitions(5) == bell_number(5)


class TestSetPartitions:
    @pytest.mark.parametrize("n", range(8))
    def test_counts_match_bell(self, n):
        assert sum(1 for _ in set_partitions(list(range(n)))) == bell_number(n)

    def test_empty_set(self):
        assert list(set_partitions([])) == [[]]

    def test_singleton(self):
        assert list(set_partitions(["a"])) == [[["a"]]]

    def test_partitions_are_valid(self):
        items = list(range(5))
        for partition in set_partitions(items):
            flat = sorted(x for block in partition for x in block)
            assert flat == items
            assert all(block for block in partition)

    def test_all_distinct(self):
        seen = set()
        for partition in set_partitions(list(range(6))):
            canonical = frozenset(frozenset(b) for b in partition)
            assert canonical not in seen
            seen.add(canonical)

    def test_yields_fresh_lists(self):
        gen = set_partitions([1, 2, 3])
        first = next(gen)
        first[0].append(99)
        second = next(gen)
        assert 99 not in [x for block in second for x in block]


class TestTypePartitions:
    def test_counts_preserved(self):
        for partition in type_partitions((3, 2, 1)):
            sums = [sum(block[i] for block in partition) for i in range(3)]
            assert sums == [3, 2, 1]

    def test_canonical_order(self):
        for partition in type_partitions((3, 2, 1)):
            assert list(partition) == sorted(partition, reverse=True)

    def test_all_distinct(self):
        seen = set()
        for partition in type_partitions((3, 2, 2)):
            assert partition not in seen
            seen.add(partition)

    def test_matches_collapsed_set_partitions(self):
        # Gold standard: collapse raw set partitions of typed items.
        items = ["c"] * 3 + ["m"] * 2 + ["i"]

        def collapse(partition):
            keys = []
            for block in partition:
                keys.append(
                    (
                        sum(1 for x in block if x == "c"),
                        sum(1 for x in block if x == "m"),
                        sum(1 for x in block if x == "i"),
                    )
                )
            return tuple(sorted(keys, reverse=True))

        expected = {collapse(p) for p in set_partitions(items)}
        got = {tuple(sorted(p, reverse=True)) for p in type_partitions((3, 2, 1))}
        assert got == expected

    def test_bounds_prune_blocks(self):
        bounded = list(type_partitions((4, 0, 0), bounds=(2, 0, 0)))
        for partition in bounded:
            assert all(block[0] <= 2 for block in partition)
        # (4,0,0) with max part 2: {4}, {3,1} excluded; {2,2}, {2,1,1},
        # {1,1,1,1} remain.
        assert len(bounded) == 3

    def test_empty_batch(self):
        assert list(type_partitions((0, 0, 0))) == [()]

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            list(type_partitions((-1, 0, 0)))

    def test_negative_bounds_rejected(self):
        with pytest.raises(ValueError):
            list(type_partitions((1, 0, 0), bounds=(-1, 0, 0)))

    def test_count_helper(self):
        assert count_type_partitions((2, 1, 0)) == 4

    def test_much_smaller_than_bell(self):
        # The whole point of the type-aware fast path.
        n_typed = count_type_partitions((4, 3, 3))
        assert n_typed < bell_number(10) / 50


class TestCountTypePartitions:
    """The memoized DP count must agree with generator exhaustion."""

    @pytest.mark.parametrize(
        "counts",
        [(0, 0, 0), (1, 0, 0), (3, 0, 0), (2, 2, 0), (3, 2, 1), (2, 2, 2), (4, 3, 1)],
    )
    def test_matches_generator_unbounded(self, counts):
        assert count_type_partitions(counts) == sum(1 for _ in type_partitions(counts))

    @pytest.mark.parametrize(
        "counts,bounds",
        [
            ((4, 0, 0), (2, 0, 0)),
            ((3, 2, 1), (2, 1, 1)),
            ((2, 2, 2), (1, 1, 1)),
            ((5, 3, 0), (3, 2, 2)),
        ],
    )
    def test_matches_generator_bounded(self, counts, bounds):
        assert count_type_partitions(counts, bounds) == sum(
            1 for _ in type_partitions(counts, bounds)
        )

    def test_infeasible_bounds_count_zero(self):
        # A class with demand but zero per-block headroom: no partition.
        assert count_type_partitions((1, 0, 0), bounds=(0, 2, 2)) == 0
        assert list(type_partitions((1, 0, 0), bounds=(0, 2, 2))) == []

    def test_large_count_is_fast(self):
        # 12.5M partitions counted in well under a second -- far beyond
        # what generator exhaustion could enumerate in test time.
        assert count_type_partitions((9, 7, 7)) == 12_569_747

    def test_validation_matches_generator(self):
        with pytest.raises(ValueError):
            count_type_partitions((-1, 0, 0))
        with pytest.raises(ValueError):
            count_type_partitions((1, 0, 0), bounds=(-1, 0, 0))


class TestPruneCallback:
    def test_none_prune_is_default(self):
        assert list(type_partitions((2, 1, 0), prune=None)) == list(
            type_partitions((2, 1, 0))
        )

    def test_prune_sees_prefix_and_remaining(self):
        seen = []

        def prune(prefix, remaining):
            seen.append((tuple(prefix), remaining))
            return False

        list(type_partitions((2, 0, 0), prune=prune))
        # Every call's prefix blocks plus remaining must sum to the batch.
        for prefix, remaining in seen:
            totals = [
                sum(block[d] for block in prefix) + remaining[d] for d in range(3)
            ]
            assert totals == [2, 0, 0]

    def test_prune_cuts_subtrees(self):
        # Refusing any prefix starting with the (2,0,0) block removes
        # exactly the {2} partition of (2,0,0), keeping {1,1}.
        kept = list(
            type_partitions((2, 0, 0), prune=lambda prefix, _rest: prefix[-1][0] == 2)
        )
        assert kept == [((1, 0, 0), (1, 0, 0))]

    def test_prune_everything_yields_nothing(self):
        assert list(type_partitions((3, 2, 1), prune=lambda *_: True)) == []
