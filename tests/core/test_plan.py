"""Unit tests for allocation plans."""

import pytest

from repro.core.model import EstimatedOutcome
from repro.core.plan import AllocationPlan, BlockAssignment


def assignment(server_id="s0", block=(2, 0, 0), vm_ids=("a", "b"), time_s=100.0, energy_j=500.0):
    return BlockAssignment(
        server_id=server_id,
        block=block,
        vm_ids=vm_ids,
        combined_key=block,
        estimate=EstimatedOutcome(key=block, time_s=time_s, energy_j=energy_j, exact=True),
    )


class TestBlockAssignment:
    def test_vm_count_must_match_block(self):
        with pytest.raises(ValueError):
            assignment(block=(3, 0, 0), vm_ids=("a",))


class TestAllocationPlan:
    def test_aggregates(self):
        plan = AllocationPlan(
            assignments=(
                assignment("s0", (2, 0, 0), ("a", "b"), 100.0, 500.0),
                assignment("s1", (0, 1, 0), ("c",), 150.0, 300.0),
            ),
            alpha=0.5,
            score=0.4,
            qos_satisfied=True,
        )
        assert plan.estimated_makespan_s == 150.0
        assert plan.estimated_energy_j == 800.0
        assert plan.n_vms == 3
        assert plan.servers_used == ("s0", "s1")

    def test_placements_flat_view(self):
        plan = AllocationPlan(
            assignments=(assignment(vm_ids=("a", "b")),),
            alpha=0.5,
            score=0.0,
            qos_satisfied=True,
        )
        assert plan.placements() == {"a": "s0", "b": "s0"}

    def test_assignment_of(self):
        plan = AllocationPlan(
            assignments=(assignment(vm_ids=("a", "b")),),
            alpha=0.5,
            score=0.0,
            qos_satisfied=True,
        )
        assert plan.assignment_of("a").server_id == "s0"
        with pytest.raises(KeyError):
            plan.assignment_of("zzz")

    def test_empty_plan(self):
        plan = AllocationPlan(assignments=(), alpha=0.5, score=0.0, qos_satisfied=True)
        assert plan.estimated_makespan_s == 0.0
        assert plan.estimated_energy_j == 0.0
        assert plan.n_vms == 0


class TestProvenanceAccess:
    def plan_with_provenance(self):
        from repro.core.plan import AllocationProvenance

        provenance = AllocationProvenance.from_counts({"partitions_enumerated": 7})
        return AllocationPlan(
            assignments=(),
            alpha=0.5,
            score=0.0,
            qos_satisfied=True,
            search_provenance=provenance,
        )

    def test_search_provenance_is_the_plain_attribute(self):
        plan = self.plan_with_provenance()
        assert plan.search_provenance.partitions_enumerated == 7

    def test_provenance_alias_warns_but_works(self):
        plan = self.plan_with_provenance()
        with pytest.warns(DeprecationWarning, match="search_provenance"):
            assert plan.provenance is plan.search_provenance

    def test_from_counts_defaults_missing_fields_to_zero(self):
        from repro.core.plan import AllocationProvenance

        provenance = AllocationProvenance.from_counts({})
        assert provenance.partitions_enumerated == 0
        assert provenance.as_dict()["grid_hits"] == 0

    def test_as_dict_round_trips(self):
        from repro.core.plan import AllocationProvenance

        provenance = AllocationProvenance.from_counts(
            {"grid_hits": 3, "frontier_peak": 2}
        )
        assert AllocationProvenance.from_counts(provenance.as_dict()) == provenance
