"""Unit tests for the dense estimate grid and its bound tables."""

import pytest

from repro.campaign.optimal import ClassOptima, OptimalScenarios
from repro.campaign.records import BenchmarkRecord, total_vms
from repro.common.errors import ConfigurationError, ModelLookupError
from repro.core.estimatecache import (
    BoundTables,
    CacheStats,
    EstimateGrid,
    grid_for,
)
from repro.core.model import ModelDatabase
from repro.testbed.benchmarks import WorkloadClass


def tiny_optima(osc=2, osm=1, osi=1):
    return OptimalScenarios(
        per_class={
            WorkloadClass.CPU: ClassOptima(WorkloadClass.CPU, osc, 1, 100.0),
            WorkloadClass.MEM: ClassOptima(WorkloadClass.MEM, osm, 1, 150.0),
            WorkloadClass.IO: ClassOptima(WorkloadClass.IO, osi, 1, 200.0),
        }
    )


def rec(key, time_s, energy_j=1000.0):
    return BenchmarkRecord.from_measurement(key, time_s, energy_j, 200.0)


@pytest.fixture
def partial_db():
    """A database whose campaign misses some in-box mixes entirely."""
    records = [
        rec((1, 0, 0), 100.0, 15_000.0),
        rec((2, 0, 0), 120.0, 20_000.0),
        rec((0, 1, 0), 150.0, 22_000.0),
        rec((1, 1, 0), 170.0, 30_000.0),
        # No record contains any IO VM: every (_, _, 1) key is missing.
    ]
    return ModelDatabase(records, tiny_optima())


def all_keys(bounds):
    osc, osm, osi = bounds
    for c in range(osc + 1):
        for m in range(osm + 1):
            for i in range(osi + 1):
                yield (c, m, i)


class TestEstimateGrid:
    def test_cells_match_scan(self, database):
        grid = database.estimate_grid
        for key in all_keys(grid.bounds):
            cell = grid.get(key)
            if total_vms(key) == 0:
                assert cell is None
                continue
            try:
                expected = database._estimate_scan(key)
            except ModelLookupError:
                expected = None
            assert cell == expected

    def test_full_campaign_has_no_missing_cells(self, database):
        grid = database.estimate_grid
        assert grid.n_missing == 0
        assert grid.n_exact == len(database)
        # Everything else on the grid resolves by proportional fallback.
        assert grid.n_exact + grid.n_fallback == len(grid) - 1  # minus (0,0,0)

    def test_partial_campaign_counts_missing(self, partial_db):
        grid = partial_db.estimate_grid
        assert grid.bounds == (2, 1, 1)
        # (0,0,1) dominates no record at all -> unestimable; every other
        # IO-bearing key still resolves proportionally from a dominated
        # CPU/MEM record.
        assert grid.n_missing == 1
        assert grid.get((0, 0, 1)) is None
        assert grid.get((1, 1, 1)) is not None
        assert not grid.get((1, 1, 1)).exact

    def test_covers(self, database):
        grid = database.estimate_grid
        osc, osm, osi = grid.bounds
        assert grid.covers((0, 0, 0))
        assert grid.covers((osc, osm, osi))
        assert not grid.covers((osc + 1, 0, 0))
        assert not grid.covers((-1, 0, 0))

    def test_index_get_consistent(self, database):
        grid = database.estimate_grid
        for key in all_keys(grid.bounds):
            assert grid.cells[grid.index(key)] is grid.get(key)

    def test_len(self, database):
        osc, osm, osi = database.grid_bounds
        assert len(database.estimate_grid) == (osc + 1) * (osm + 1) * (osi + 1)

    def test_bad_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            EstimateGrid((1, -1, 1), lambda key: None)


class TestBoundTables:
    def test_tables_match_brute_force(self, partial_db):
        grid = partial_db.estimate_grid
        tables = grid.bound_tables()
        assert isinstance(tables, BoundTables)
        inf = float("inf")
        for key in all_keys(grid.bounds):
            containing = [
                (sup, grid.get(sup))
                for sup in all_keys(grid.bounds)
                if all(sup[d] >= key[d] for d in range(3))
            ]
            estimable = [(sup, cell) for sup, cell in containing if cell is not None]
            idx = grid.index(key)
            if not estimable:
                assert tables.min_time_containing[idx] == inf
                assert tables.min_energy_containing[idx] == inf
                assert tables.min_vms_containing[idx] == inf
            else:
                assert tables.min_time_containing[idx] == min(
                    cell.time_s for _, cell in estimable
                )
                assert tables.min_energy_containing[idx] == min(
                    cell.energy_j for _, cell in estimable
                )
                assert tables.min_vms_containing[idx] == min(
                    total_vms(sup) for sup, _ in estimable
                )

    def test_tables_cached(self, database):
        grid = database.estimate_grid
        assert grid.bound_tables() is grid.bound_tables()


class TestGridFor:
    def test_model_database_reuses_own_grid(self, database):
        assert grid_for(database) is database.estimate_grid

    def test_duck_typed_stand_in_gets_fresh_grid(self, partial_db):
        class CappedProxy:
            """Stand-in vetoing big mixes through within_bounds only."""

            grid_bounds = partial_db.grid_bounds

            def within_bounds(self, key):
                return partial_db.within_bounds(key) and total_vms(key) <= 2

            def estimate(self, key):
                return partial_db.estimate(key)

        grid = grid_for(CappedProxy())
        assert grid is not partial_db.estimate_grid
        assert grid.bounds == partial_db.grid_bounds
        # The proxy's within_bounds veto must show up as missing cells,
        # even where the underlying estimate would succeed.
        assert partial_db.estimate_grid.get((2, 1, 0)) is not None
        assert grid.get((2, 1, 0)) is None
        assert grid.get((1, 1, 0)) == partial_db.estimate((1, 1, 0))


class TestCacheStats:
    def test_as_dict_round_trips_into_provenance(self):
        from repro.core.plan import AllocationProvenance

        stats = CacheStats(grid_hits=3, pruned_dominated_subtrees=2, bnb_active=True)
        provenance = AllocationProvenance(**stats.as_dict())
        assert provenance.grid_hits == 3
        assert provenance.pruned_dominated_subtrees == 2
        assert provenance.bnb_active is True
        assert provenance.subtrees_pruned == 2
