"""Unit tests for the mix runner."""

import pytest

from repro.common.errors import ConfigurationError
from repro.testbed.benchmarks import get_benchmark
from repro.testbed.meter import PowerMeter
from repro.testbed.runner import MixRunResult, VMInstance, run_mix
from repro.testbed.spec import default_server


@pytest.fixture
def server():
    return default_server()


def instances(name, n, **kwargs):
    return [VMInstance(f"{name}-{i}", get_benchmark(name), **kwargs) for i in range(n)]


class TestValidation:
    def test_empty_mix_rejected(self, server):
        with pytest.raises(ConfigurationError):
            run_mix(server, [])

    def test_duplicate_ids_rejected(self, server):
        fftw = get_benchmark("fftw")
        with pytest.raises(ConfigurationError, match="duplicate"):
            run_mix(server, [VMInstance("a", fftw), VMInstance("a", fftw)])

    def test_over_capacity_rejected(self, server):
        with pytest.raises(ConfigurationError, match="exceeds"):
            run_mix(server, instances("fftw", server.max_vms + 1))

    def test_negative_offset_rejected(self):
        with pytest.raises(ConfigurationError):
            VMInstance("x", get_benchmark("fftw"), start_offset_s=-1.0)

    def test_empty_id_rejected(self):
        with pytest.raises(ConfigurationError):
            VMInstance("", get_benchmark("fftw"))


class TestSoloRun:
    def test_solo_time_equals_t_ref(self, server):
        result = run_mix(server, instances("fftw", 1))
        assert result.total_time_s == pytest.approx(600.0, rel=1e-6)

    def test_solo_energy_positive(self, server):
        result = run_mix(server, instances("fftw", 1))
        assert result.energy_j > 0
        assert result.max_power_w > 125.0

    def test_avg_time_vm(self, server):
        result = run_mix(server, instances("fftw", 4))
        assert result.avg_time_vm_s == pytest.approx(result.total_time_s / 4)

    def test_edp(self, server):
        result = run_mix(server, instances("fftw", 1))
        assert result.edp == pytest.approx(result.energy_j * result.total_time_s)


class TestMixDynamics:
    def test_heterogeneous_mix_finishes_at_different_times(self, server):
        vms = instances("fftw", 2) + instances("b_eff_io", 2)
        result = run_mix(server, vms)
        finishes = {o.finish_s for o in result.outcomes}
        assert len(finishes) >= 2  # classes complete at distinct times

    def test_total_time_is_max_finish(self, server):
        vms = instances("fftw", 2) + instances("sysbench", 1)
        result = run_mix(server, vms)
        assert result.total_time_s == max(o.finish_s for o in result.outcomes)

    def test_contention_stretches_time(self, server):
        solo = run_mix(server, instances("fftw", 1)).total_time_s
        crowded = run_mix(server, instances("fftw", 8)).total_time_s
        assert crowded > solo * 1.5

    def test_survivors_speed_up_after_finish(self, server):
        # fftw alongside a shorter benchmark: the fftw VM should finish
        # faster than in a full-duration 2-fftw mix.
        fftw = get_benchmark("fftw")
        short = get_benchmark("sysbench")
        paired = run_mix(
            server, [VMInstance("f", fftw), VMInstance("s", short)]
        ).exec_time_of("f")
        full = run_mix(
            server, [VMInstance("f", fftw), VMInstance("f2", fftw)]
        ).exec_time_of("f")
        assert paired <= full * 1.01

    def test_segments_are_contiguous(self, server):
        result = run_mix(server, instances("fftw", 3))
        for (t0, t1, _), (n0, _, _) in zip(result.segments, result.segments[1:]):
            assert n0 == pytest.approx(t1)
        assert result.segments[0][0] == 0.0

    def test_energy_equals_segment_integral(self, server):
        result = run_mix(server, instances("fftw", 3))
        total = sum((t1 - t0) * w for t0, t1, w in result.segments)
        assert result.energy_j == pytest.approx(total)


class TestStaggeredStart:
    def test_offset_delays_start(self, server):
        fftw = get_benchmark("fftw")
        result = run_mix(
            server,
            [VMInstance("a", fftw), VMInstance("b", fftw, start_offset_s=100.0)],
        )
        assert result.exec_time_of("a") < result.exec_time_of("b") + 100.0
        b = next(o for o in result.outcomes if o.vm_id == "b")
        assert b.start_s == 100.0
        assert b.finish_s > 100.0

    def test_idle_gap_before_first_arrival(self, server):
        fftw = get_benchmark("fftw")
        result = run_mix(server, [VMInstance("a", fftw, start_offset_s=50.0)])
        # The first segment is the idle wait at idle power.
        t0, t1, w = result.segments[0]
        assert (t0, t1) == (0.0, 50.0)
        assert w == pytest.approx(server.power.idle_w)


class TestMeterAttachment:
    def test_meter_reading_attached(self, server):
        result = run_mix(server, instances("fftw", 2), meter=PowerMeter())
        assert result.meter_reading is not None
        assert result.meter_reading.energy_j == pytest.approx(result.energy_j, rel=0.05)

    def test_no_meter_no_reading(self, server):
        assert run_mix(server, instances("fftw", 1)).meter_reading is None


class TestResultAccessors:
    def test_exec_time_of_unknown_vm(self, server):
        result = run_mix(server, instances("fftw", 1))
        with pytest.raises(KeyError):
            result.exec_time_of("nope")

    def test_n_vms(self, server):
        assert run_mix(server, instances("fftw", 3)).n_vms == 3
