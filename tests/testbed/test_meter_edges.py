"""Edge-case tests for the power-meter internals."""

import pytest

from repro.testbed.meter import PowerMeter, _power_at


class TestPowerAt:
    SEGMENTS = [(0.0, 5.0, 100.0), (5.0, 10.0, 200.0)]

    def test_within_segments(self):
        assert _power_at(self.SEGMENTS, 2.0) == 100.0
        assert _power_at(self.SEGMENTS, 5.0) == 200.0  # boundary -> next

    def test_exact_end(self):
        assert _power_at(self.SEGMENTS, 10.0) == 200.0

    def test_outside_profile_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            _power_at(self.SEGMENTS, 11.0)


class TestMeterSamplingEdges:
    def test_sample_step_profile_hits_both_levels(self):
        meter = PowerMeter()
        samples = meter.sample([(0.0, 3.0, 50.0), (3.0, 6.0, 150.0)])
        assert 50.0 in samples and 150.0 in samples

    def test_sub_period_profile(self):
        meter = PowerMeter(period_s=1.0)
        samples = meter.sample([(0.0, 0.4, 75.0)])
        # One sample at t=0 plus the end-of-profile sample.
        assert samples == [75.0, 75.0]

    def test_reading_of_empty_profile(self):
        reading = PowerMeter().measure([])
        assert reading.energy_j == 0.0
        assert reading.max_power_w == 0.0
        assert reading.mean_power_w == 0.0
