"""Unit tests for the contention model."""

import pytest

from repro.common.errors import ConfigurationError
from repro.testbed.benchmarks import get_benchmark
from repro.testbed.contention import ActiveVM, ContentionParams, MixModel
from repro.testbed.spec import Subsystem, default_server


@pytest.fixture
def model():
    return MixModel(default_server())


def vm(name="fftw", scale=1.0, contended=True):
    return ActiveVM(get_benchmark(name), demand_scale=scale, contended=contended)


class TestParams:
    def test_defaults_valid(self):
        ContentionParams()

    def test_negative_coeff_rejected(self):
        with pytest.raises(ConfigurationError):
            ContentionParams(thrash_coeff=-1.0)

    def test_sublinear_thrash_rejected(self):
        with pytest.raises(ConfigurationError):
            ContentionParams(thrash_exponent=0.5)


class TestLoads:
    def test_single_cpu_vm(self, model):
        loads = model.subsystem_loads([vm()])
        assert loads[Subsystem.CPU] == pytest.approx(1.0 / 4.0)

    def test_loads_additive(self, model):
        one = model.subsystem_loads([vm()])
        two = model.subsystem_loads([vm(), vm()])
        assert two[Subsystem.CPU] == pytest.approx(2 * one[Subsystem.CPU])

    def test_demand_scale_applies(self, model):
        init = model.subsystem_loads([vm(scale=0.2)])
        work = model.subsystem_loads([vm(scale=1.0)])
        assert init[Subsystem.CPU] == pytest.approx(0.2 * work[Subsystem.CPU])

    def test_loads_can_exceed_one(self, model):
        loads = model.subsystem_loads([vm() for _ in range(8)])
        assert loads[Subsystem.CPU] == pytest.approx(2.0)


class TestSlowdown:
    def test_solo_vm_no_slowdown(self, model):
        solo = vm()
        assert model.slowdown(solo, [solo]) == pytest.approx(1.0)

    def test_uncontended_phase_only_pays_virt(self, model):
        init = vm(contended=False, scale=0.2)
        mix = [init] + [vm() for _ in range(5)]
        assert model.slowdown(init, mix) == pytest.approx(model.virt_factor(mix))

    def test_oversubscription_stretches(self, model):
        mix = [vm() for _ in range(8)]  # rho_cpu = 2
        assert model.slowdown(mix[0], mix) > 1.5

    def test_complementary_classes_contend_less(self, model):
        cpu_mix = [vm("fftw") for _ in range(4)]
        mixed = [vm("fftw"), vm("fftw"), vm("b_eff_io"), vm("b_eff_io")]
        assert model.slowdown(mixed[0], mixed) < model.slowdown(cpu_mix[0], cpu_mix)

    def test_slowdowns_bulk_matches_scalar(self, model):
        mix = [vm("fftw"), vm("sysbench"), vm("b_eff_io"), vm("fftw")]
        bulk = model.slowdowns(mix)
        for one_vm, value in zip(mix, bulk):
            assert value == pytest.approx(model.slowdown(one_vm, mix))

    def test_empty_mix(self, model):
        assert model.slowdowns([]) == []


class TestThrash:
    def test_no_thrash_within_ram(self, model):
        assert model.thrash_factor([vm() for _ in range(4)]) == 1.0

    def test_thrash_beyond_ram(self, model):
        mix = [vm() for _ in range(12)]  # 12 * 0.35 GB > 3.3 GB usable
        assert model.thrash_factor(mix) > 1.0

    def test_thrash_monotone_in_occupancy(self, model):
        f12 = model.thrash_factor([vm() for _ in range(12)])
        f14 = model.thrash_factor([vm() for _ in range(14)])
        assert f14 > f12


class TestInterference:
    def test_same_class_hurts_more(self, model):
        same = [vm("fftw"), vm("fftw")]
        cross = [vm("fftw"), vm("b_eff_io")]
        assert model.interference_factor(same[0], same) > model.interference_factor(
            cross[0], cross
        )

    def test_vm_must_be_member(self, model):
        outsider = vm()
        with pytest.raises(ValueError):
            model.interference_factor(outsider, [vm(), vm()])

    def test_duplicate_instances_counted_once_for_self(self, model):
        a = vm()
        mix = [a, a]  # same object twice: self excluded exactly once
        assert model.interference_factor(a, mix) == pytest.approx(
            1.0 + model.params.same_class_interference
        )


class TestBottleneck:
    def test_weighted_blend_ignores_unused_subsystems(self, model):
        # A saturated disk barely slows a CPU-bound code with a 2% disk demand.
        mix = [vm("fftw")] + [vm("bonnie") for _ in range(4)]
        loads = model.subsystem_loads(mix)
        assert loads[Subsystem.DISK] > 1.5
        stretch = model.bottleneck_factor(mix[0], loads)
        assert stretch < 1.2

    def test_virt_factor_grows_linearly(self, model):
        f2 = model.virt_factor([vm(), vm()])
        f3 = model.virt_factor([vm(), vm(), vm()])
        assert f3 - f2 == pytest.approx(model.params.virt_overhead_per_vm)

    def test_virt_factor_solo_is_one(self, model):
        assert model.virt_factor([vm()]) == 1.0


class TestSlowdownsAndLoads:
    """The fused fast path must equal the naive pair bit for bit.

    The simulator's mix-physics memo caches what this method returns
    (see ServerRuntime._mix_physics), so any last-bit divergence here
    would break the indexed-vs-naive identity contract.
    """

    NAMES = ("fftw", "sysbench", "bonnie")

    def mixes(self):
        import itertools
        import random

        rng = random.Random(20110516)
        yield []
        for n in range(1, 5):
            for names in itertools.product(self.NAMES, repeat=n):
                yield [
                    vm(
                        name,
                        scale=rng.choice([0.2, 1.0]),
                        contended=rng.choice([True, False]),
                    )
                    for name in names
                ]
        # A crowd deep into thrashing territory, duplicates included.
        yield [vm(rng.choice(self.NAMES)) for _ in range(14)]

    def test_bit_identical_to_naive_pair(self, model):
        for mix in self.mixes():
            fast_slowdowns, fast_loads = model.slowdowns_and_loads(mix)
            assert fast_slowdowns == model.slowdowns(mix)
            assert dict(fast_loads) == dict(model.subsystem_loads(mix))

    def test_duplicate_kinds_share_exact_floats(self, model):
        mix = [vm("sysbench"), vm("sysbench"), vm("sysbench")]
        slowdowns, _loads = model.slowdowns_and_loads(mix)
        assert slowdowns[0] == slowdowns[1] == slowdowns[2]
        assert slowdowns == model.slowdowns(mix)
