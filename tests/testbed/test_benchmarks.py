"""Unit tests for repro.testbed.benchmarks."""

import pytest

from repro.common.errors import ConfigurationError
from repro.testbed.benchmarks import (
    BENCHMARKS,
    WORKLOAD_CLASSES,
    BenchmarkSpec,
    WorkloadClass,
    canonical_benchmark,
    get_benchmark,
)
from repro.testbed.spec import SUBSYSTEMS, Subsystem


class TestRegistry:
    def test_paper_suite_present(self):
        for name in ("fftw", "hpl", "sysbench", "b_eff_io", "bonnie", "mpi_compute"):
            assert name in BENCHMARKS

    def test_canonical_per_class(self):
        assert canonical_benchmark(WorkloadClass.CPU).name == "fftw"
        assert canonical_benchmark(WorkloadClass.MEM).name == "sysbench"
        assert canonical_benchmark(WorkloadClass.IO).name == "b_eff_io"

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="fftw"):
            get_benchmark("linpackzz")

    def test_fftw_has_long_init_phase(self):
        # "single thread, with long initialization phase"
        fftw = get_benchmark("fftw")
        assert fftw.serial_fraction >= 0.25

    def test_class_signatures(self):
        assert get_benchmark("sysbench").demand(Subsystem.MEMORY) > 0.5
        assert get_benchmark("b_eff_io").demand(Subsystem.DISK) > 0.5
        assert get_benchmark("mpi_compute").demand(Subsystem.NETWORK) > 0.3

    def test_three_classes(self):
        assert len(WORKLOAD_CLASSES) == 3


class TestBenchmarkSpec:
    def _spec(self, **overrides):
        kwargs = dict(
            name="x",
            workload_class=WorkloadClass.CPU,
            t_ref_s=100.0,
            serial_fraction=0.1,
            demands={Subsystem.CPU: 1.0},
            ram_gb=0.5,
        )
        kwargs.update(overrides)
        return BenchmarkSpec(**kwargs)

    def test_missing_demands_default_to_zero(self):
        spec = self._spec()
        for subsystem in SUBSYSTEMS:
            assert spec.demand(subsystem) >= 0.0

    def test_phase_times_sum_to_t_ref(self):
        spec = self._spec(serial_fraction=0.3)
        assert spec.serial_time_s + spec.work_time_s == pytest.approx(spec.t_ref_s)

    def test_zero_t_ref_rejected(self):
        with pytest.raises(ConfigurationError):
            self._spec(t_ref_s=0.0)

    def test_serial_fraction_one_rejected(self):
        with pytest.raises(ConfigurationError):
            self._spec(serial_fraction=1.0)

    def test_all_zero_demands_rejected(self):
        with pytest.raises(ConfigurationError):
            self._spec(demands={Subsystem.CPU: 0.0})

    def test_negative_demand_rejected(self):
        with pytest.raises(ConfigurationError):
            self._spec(demands={Subsystem.CPU: -1.0})

    def test_demands_are_read_only(self):
        spec = self._spec()
        with pytest.raises(TypeError):
            spec.demands[Subsystem.CPU] = 2.0  # type: ignore[index]

    def test_ram_positive(self):
        with pytest.raises(ConfigurationError):
            self._spec(ram_gb=0.0)
