"""Unit tests for the power model."""

import pytest

from repro.testbed.benchmarks import get_benchmark
from repro.testbed.contention import ActiveVM, MixModel
from repro.testbed.power import instantaneous_power, mix_power
from repro.testbed.spec import SUBSYSTEMS, PowerSpec, Subsystem, default_server


@pytest.fixture
def power():
    return PowerSpec()


def zero_loads():
    return {s: 0.0 for s in SUBSYSTEMS}


class TestInstantaneousPower:
    def test_idle_draw(self, power):
        assert instantaneous_power(zero_loads(), 0, power) == 125.0

    def test_saturation_clamps(self, power):
        loads = {s: 5.0 for s in SUBSYSTEMS}  # heavily oversubscribed
        assert instantaneous_power(loads, 0, power) == pytest.approx(power.max_w)

    def test_per_vm_term(self, power):
        base = instantaneous_power(zero_loads(), 0, power)
        with_vms = instantaneous_power(zero_loads(), 3, power)
        assert with_vms - base == pytest.approx(3 * power.per_vm_w)

    def test_proportional_below_saturation(self, power):
        loads = zero_loads()
        loads[Subsystem.CPU] = 0.5
        draw = instantaneous_power(loads, 0, power)
        assert draw == pytest.approx(125.0 + 0.5 * power.dynamic_w[Subsystem.CPU])

    def test_negative_n_rejected(self, power):
        with pytest.raises(ValueError):
            instantaneous_power(zero_loads(), -1, power)

    def test_negative_load_rejected(self, power):
        loads = zero_loads()
        loads[Subsystem.DISK] = -0.1
        with pytest.raises(ValueError):
            instantaneous_power(loads, 0, power)

    def test_missing_subsystem_treated_as_zero(self, power):
        assert instantaneous_power({}, 0, power) == 125.0


class TestMixPower:
    def test_empty_mix_draws_idle(self):
        model = MixModel(default_server())
        assert mix_power(model, []) == 125.0

    def test_busy_mix_draws_more(self):
        model = MixModel(default_server())
        mix = [ActiveVM(get_benchmark("fftw")) for _ in range(4)]
        assert mix_power(model, mix) > 200.0

    def test_monotone_in_vm_count(self):
        model = MixModel(default_server())
        mixes = [[ActiveVM(get_benchmark("fftw"))] * n for n in (1, 2, 4)]
        draws = [mix_power(model, m) for m in mixes]
        assert draws == sorted(draws)
