"""Unit tests for repro.testbed.spec."""

import pytest

from repro.common.errors import ConfigurationError
from repro.testbed.spec import (
    SUBSYSTEMS,
    PowerSpec,
    ServerSpec,
    Subsystem,
    default_server,
)


class TestSubsystem:
    def test_four_dimensions(self):
        assert len(SUBSYSTEMS) == 4
        assert set(SUBSYSTEMS) == {
            Subsystem.CPU,
            Subsystem.MEMORY,
            Subsystem.DISK,
            Subsystem.NETWORK,
        }

    def test_string_values(self):
        assert Subsystem.CPU.value == "cpu"
        assert Subsystem("memory") is Subsystem.MEMORY


class TestPowerSpec:
    def test_paper_idle_power(self):
        assert PowerSpec().idle_w == 125.0

    def test_max_w_sums_dynamics(self):
        spec = PowerSpec()
        assert spec.max_w == 125.0 + sum(spec.dynamic_w[s] for s in SUBSYSTEMS)

    def test_negative_idle_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerSpec(idle_w=-1.0)

    def test_missing_subsystem_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerSpec(dynamic_w={Subsystem.CPU: 80.0})

    def test_negative_dynamic_rejected(self):
        bad = {s: 10.0 for s in SUBSYSTEMS}
        bad[Subsystem.DISK] = -5.0
        with pytest.raises(ConfigurationError):
            PowerSpec(dynamic_w=bad)


class TestServerSpec:
    def test_default_is_quad_core(self):
        server = default_server()
        assert server.capacity(Subsystem.CPU) == 4.0
        assert server.ram_gb == 4.0

    def test_usable_ram_excludes_dom0(self):
        server = default_server()
        assert server.usable_ram_gb == pytest.approx(server.ram_gb - server.reserved_ram_gb)
        assert 0 < server.usable_ram_gb < server.ram_gb

    def test_named(self):
        assert default_server("rack-7").name == "rack-7"

    def test_zero_capacity_rejected(self):
        caps = dict(default_server().capacities)
        caps[Subsystem.CPU] = 0.0
        with pytest.raises(ConfigurationError):
            ServerSpec(capacities=caps)

    def test_reserved_ram_bounds(self):
        with pytest.raises(ConfigurationError):
            ServerSpec(reserved_ram_gb=4.0)  # equal to ram_gb

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            ServerSpec(name="")

    def test_max_vms_validated(self):
        with pytest.raises(ConfigurationError):
            ServerSpec(max_vms=0)
