"""Unit tests for the Watts Up? meter emulation."""

import pytest

from repro.testbed.meter import (
    PowerMeter,
    exact_energy,
    exact_max_power,
)


SEGMENTS = [(0.0, 10.0, 100.0), (10.0, 20.0, 200.0)]


class TestExactIntegrals:
    def test_exact_energy(self):
        assert exact_energy(SEGMENTS) == pytest.approx(3000.0)

    def test_exact_max_power(self):
        assert exact_max_power(SEGMENTS) == 200.0

    def test_empty_profile(self):
        assert exact_energy([]) == 0.0
        assert exact_max_power([]) == 0.0

    def test_non_contiguous_rejected(self):
        with pytest.raises(ValueError, match="contiguous"):
            exact_energy([(0.0, 1.0, 5.0), (2.0, 3.0, 5.0)])

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            exact_energy([(0.0, 0.0, 5.0)])

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            exact_energy([(0.0, 1.0, -5.0)])


class TestSampling:
    def test_noiseless_sampling_close_to_exact(self):
        meter = PowerMeter()
        reading = meter.measure(SEGMENTS)
        # 1 Hz sampling of a step profile: small discretization error.
        assert reading.energy_j == pytest.approx(3000.0, rel=0.05)
        assert reading.max_power_w == 200.0

    def test_sample_count(self):
        meter = PowerMeter()
        samples = meter.sample([(0.0, 5.0, 50.0)])
        # t = 0..5 inclusive at 1 Hz.
        assert len(samples) == 6

    def test_partial_tail_sampled(self):
        meter = PowerMeter()
        samples = meter.sample([(0.0, 2.5, 50.0)])
        assert len(samples) == 4  # 0, 1, 2, 2.5

    def test_empty_profile(self):
        assert PowerMeter().sample([]) == []

    def test_custom_period(self):
        meter = PowerMeter(period_s=5.0)
        assert len(meter.sample([(0.0, 10.0, 10.0)])) == 3

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            PowerMeter(period_s=0.0)


class TestNoise:
    def test_noise_is_seeded(self):
        a = PowerMeter(accuracy=0.015, rng=1).measure(SEGMENTS)
        b = PowerMeter(accuracy=0.015, rng=1).measure(SEGMENTS)
        assert a.energy_j == b.energy_j

    def test_noise_changes_with_seed(self):
        a = PowerMeter(accuracy=0.015, rng=1).measure(SEGMENTS)
        b = PowerMeter(accuracy=0.015, rng=2).measure(SEGMENTS)
        assert a.energy_j != b.energy_j

    def test_noise_within_accuracy_class(self):
        # 1.5% meter: the energy integral over many samples should land
        # well within 1% of truth (noise averages out).
        meter = PowerMeter(accuracy=0.015, rng=7)
        reading = meter.measure([(0.0, 500.0, 150.0)])
        assert reading.energy_j == pytest.approx(150.0 * 500.0, rel=0.01)

    def test_negative_accuracy_rejected(self):
        with pytest.raises(ValueError):
            PowerMeter(accuracy=-0.1)

    def test_samples_never_negative(self):
        meter = PowerMeter(accuracy=0.5, rng=3)  # absurdly noisy
        samples = meter.sample([(0.0, 100.0, 1.0)])
        assert min(samples) >= 0.0


class TestReading:
    def test_mean_power(self):
        reading = PowerMeter().measure([(0.0, 10.0, 100.0)])
        assert reading.mean_power_w == pytest.approx(100.0)

    def test_duration(self):
        reading = PowerMeter().measure([(0.0, 10.0, 100.0)])
        assert reading.duration_s == pytest.approx(10.0)
