"""Calibration tests: the emulator must reproduce Fig. 2's shape.

The paper (Sect. III-B, Fig. 2) reports for FFTW: "the shortest
average execution time (the optimal scenario) is obtained with 9 VMs
running on a single server.  With more than 11 VMs the average
execution time increases significantly" -- becoming "comparable to the
average execution time of a VM when a set of benchmarks are executed
sequentially one after the other."
"""

import pytest

from repro.testbed.benchmarks import get_benchmark
from repro.testbed.runner import VMInstance, run_mix
from repro.testbed.spec import default_server


@pytest.fixture(scope="module")
def fftw_curve():
    server = default_server()
    fftw = get_benchmark("fftw")
    curve = {}
    for n in range(1, 17):
        vms = [VMInstance(f"vm{i}", fftw) for i in range(n)]
        curve[n] = run_mix(server, vms).avg_time_vm_s
    return curve


class TestFig2Shape:
    def test_optimum_at_nine_vms(self, fftw_curve):
        best = min(fftw_curve, key=fftw_curve.get)
        assert best == 9

    def test_avg_time_decreases_up_to_optimum(self, fftw_curve):
        for n in range(1, 9):
            assert fftw_curve[n + 1] < fftw_curve[n]

    def test_significant_increase_past_eleven(self, fftw_curve):
        # > 11 VMs: clearly worse than the optimum.
        assert fftw_curve[12] > 1.5 * fftw_curve[9]

    def test_sixteen_vms_comparable_to_sequential(self, fftw_curve):
        # Sequential execution: avg time per VM == solo time.
        solo = fftw_curve[1]
        assert fftw_curve[16] == pytest.approx(solo, rel=0.25)

    def test_mild_degradation_at_ten(self, fftw_curve):
        assert fftw_curve[10] < 1.25 * fftw_curve[9]


class TestEnergyCurve:
    def test_energy_per_vm_has_interior_minimum(self):
        server = default_server()
        fftw = get_benchmark("fftw")
        energies = {}
        for n in (1, 4, 7, 12, 16):
            vms = [VMInstance(f"vm{i}", fftw) for i in range(n)]
            energies[n] = run_mix(server, vms).energy_j / n
        best = min(energies, key=energies.get)
        assert 1 < best < 16
        assert energies[1] > energies[best]
        assert energies[16] > energies[best]
