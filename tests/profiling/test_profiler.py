"""Unit tests for the end-to-end application profiler."""

import pytest

from repro.profiling.profiler import ApplicationProfiler
from repro.testbed.benchmarks import BENCHMARKS, WorkloadClass, get_benchmark
from repro.testbed.spec import Subsystem


@pytest.fixture(scope="module")
def profiler():
    return ApplicationProfiler()


class TestProfiler:
    def test_fftw_is_cpu_class(self, profiler):
        report = profiler.profile(get_benchmark("fftw"))
        assert report.workload_class is WorkloadClass.CPU
        assert report.profile.is_intensive(Subsystem.CPU)

    def test_sysbench_is_mem_class(self, profiler):
        report = profiler.profile(get_benchmark("sysbench"))
        assert report.workload_class is WorkloadClass.MEM

    def test_beffio_is_io_class(self, profiler):
        report = profiler.profile(get_benchmark("b_eff_io"))
        assert report.workload_class is WorkloadClass.IO

    def test_mpi_compute_is_cpu_and_network_intensive(self, profiler):
        # The Fig. 1 right panel workload.
        report = profiler.profile(get_benchmark("mpi_compute"))
        assert report.profile.is_intensive(Subsystem.CPU)
        assert report.profile.is_intensive(Subsystem.NETWORK)
        assert report.workload_class is WorkloadClass.CPU

    def test_every_benchmark_classifies_as_its_declared_class(self, profiler):
        for spec in BENCHMARKS.values():
            report = profiler.profile(spec)
            assert report.workload_class is spec.workload_class, spec.name

    def test_solo_time_matches_t_ref(self, profiler):
        report = profiler.profile(get_benchmark("hpl"))
        assert report.solo_time_s == pytest.approx(900.0, rel=1e-6)

    def test_counters_attached(self, profiler):
        report = profiler.profile(get_benchmark("fftw"))
        assert len(report.counters) == len(report.trace)

    def test_summary_mentions_class(self, profiler):
        report = profiler.profile(get_benchmark("fftw"))
        assert "cpu" in report.summary()

    def test_profile_many_preserves_order(self, profiler):
        specs = [get_benchmark("fftw"), get_benchmark("bonnie")]
        reports = profiler.profile_many(specs)
        assert [r.benchmark_name for r in reports] == ["fftw", "bonnie"]

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            ApplicationProfiler(sample_period_s=0.0)
