"""Unit tests for utilization traces."""

import numpy as np
import pytest

from repro.profiling.traces import UtilizationTrace, sample_load_profile
from repro.testbed.spec import SUBSYSTEMS, Subsystem


def segment(t0, t1, cpu=0.0, mem=0.0, disk=0.0, net=0.0):
    return (
        t0,
        t1,
        {
            Subsystem.CPU: cpu,
            Subsystem.MEMORY: mem,
            Subsystem.DISK: disk,
            Subsystem.NETWORK: net,
        },
    )


class TestSampling:
    def test_empty_profile(self):
        trace = sample_load_profile([])
        assert len(trace) == 0
        assert trace.duration_s == 0.0

    def test_sample_count_includes_endpoint(self):
        trace = sample_load_profile([segment(0.0, 5.0, cpu=0.5)])
        assert len(trace) == 6

    def test_clamping(self):
        trace = sample_load_profile([segment(0.0, 2.0, cpu=2.5)])
        assert trace.peak_utilization(Subsystem.CPU) == 1.0

    def test_piecewise_values(self):
        trace = sample_load_profile(
            [segment(0.0, 2.0, cpu=0.2), segment(2.0, 4.0, cpu=0.8)]
        )
        cpu = trace.utilization[Subsystem.CPU]
        assert cpu[0] == pytest.approx(0.2)
        assert cpu[3] == pytest.approx(0.8)

    def test_scale_multiplier(self):
        trace = sample_load_profile(
            [segment(0.0, 2.0, cpu=0.25)], scale={Subsystem.CPU: 4.0}
        )
        assert trace.mean_utilization(Subsystem.CPU) == pytest.approx(1.0)

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            sample_load_profile([segment(0.0, 1.0)], scale={Subsystem.CPU: 0.0})

    def test_bad_period_rejected(self):
        with pytest.raises(ValueError):
            sample_load_profile([segment(0.0, 1.0)], period_s=0.0)


class TestTraceStatistics:
    @pytest.fixture
    def trace(self):
        return sample_load_profile(
            [segment(0.0, 5.0, cpu=0.9, disk=0.1), segment(5.0, 10.0, cpu=0.1, disk=0.1)]
        )

    def test_mean_utilization(self, trace):
        mean = trace.mean_utilization(Subsystem.CPU)
        assert 0.1 < mean < 0.9

    def test_busy_fraction(self, trace):
        busy = trace.busy_fraction(Subsystem.CPU, threshold=0.5)
        assert 0.3 < busy < 0.7

    def test_zero_subsystem(self, trace):
        assert trace.mean_utilization(Subsystem.NETWORK) == 0.0

    def test_as_rows_shape(self, trace):
        rows = trace.as_rows()
        assert len(rows) == len(trace)
        assert all(len(row) == 5 for row in rows)


class TestValidation:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            UtilizationTrace(
                times_s=np.arange(3.0),
                utilization={s: np.zeros(2 if s is Subsystem.CPU else 3) for s in SUBSYSTEMS},
            )

    def test_missing_subsystem_rejected(self):
        with pytest.raises(ValueError):
            UtilizationTrace(
                times_s=np.arange(3.0),
                utilization={Subsystem.CPU: np.zeros(3)},
            )
