"""Unit tests for performance-counter emulation."""

import numpy as np
import pytest

from repro.profiling.counters import emulate_counters
from repro.profiling.traces import sample_load_profile
from repro.testbed.benchmarks import get_benchmark
from repro.testbed.spec import Subsystem


def make_trace(cpu=0.9, mem=0.1, duration=10.0):
    seg = (
        0.0,
        duration,
        {
            Subsystem.CPU: cpu,
            Subsystem.MEMORY: mem,
            Subsystem.DISK: 0.0,
            Subsystem.NETWORK: 0.0,
        },
    )
    return sample_load_profile([seg])


class TestEmulateCounters:
    def test_sample_per_trace_point(self):
        trace = make_trace()
        samples = emulate_counters(trace, get_benchmark("fftw"))
        assert len(samples) == len(trace)

    def test_cpu_activity_drives_instructions(self):
        busy = emulate_counters(make_trace(cpu=1.0), get_benchmark("fftw"))
        idle = emulate_counters(make_trace(cpu=0.1), get_benchmark("fftw"))
        assert busy[0].instructions > 5 * idle[0].instructions

    def test_memory_activity_drives_l2_misses(self):
        # sysbench is memory-hungry: same utilization -> more misses
        # than a CPU-bound signature.
        trace = make_trace(cpu=0.3, mem=0.9)
        mem_bench = emulate_counters(trace, get_benchmark("sysbench"))
        cpu_bench = emulate_counters(trace, get_benchmark("fftw"))
        assert mem_bench[0].l2_misses > cpu_bench[0].l2_misses

    def test_l2_miss_intensity_normalized(self):
        trace = make_trace(mem=1.0)
        samples = emulate_counters(trace, get_benchmark("sysbench"))
        assert 0.0 <= samples[0].l2_miss_intensity <= 1.5

    def test_short_trace_yields_nothing(self):
        trace = sample_load_profile([])
        assert emulate_counters(trace, get_benchmark("fftw")) == []

    def test_jitter_requires_rng(self):
        with pytest.raises(ValueError):
            emulate_counters(make_trace(), get_benchmark("fftw"), jitter=0.1)

    def test_jitter_deterministic_with_seed(self):
        trace = make_trace()
        a = emulate_counters(trace, get_benchmark("fftw"), jitter=0.1, rng=np.random.default_rng(5))
        b = emulate_counters(trace, get_benchmark("fftw"), jitter=0.1, rng=np.random.default_rng(5))
        assert a[0].instructions == b[0].instructions

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            emulate_counters(make_trace(), get_benchmark("fftw"), jitter=-0.1)
