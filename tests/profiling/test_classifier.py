"""Unit tests for the intensity classifier."""

import pytest

from repro.profiling.classifier import (
    ClassifierThresholds,
    IntensityProfile,
    classify_trace,
)
from repro.profiling.traces import sample_load_profile
from repro.testbed.benchmarks import WorkloadClass
from repro.testbed.spec import Subsystem


def trace_with(cpu=0.0, mem=0.0, disk=0.0, net=0.0):
    seg = (
        0.0,
        10.0,
        {
            Subsystem.CPU: cpu,
            Subsystem.MEMORY: mem,
            Subsystem.DISK: disk,
            Subsystem.NETWORK: net,
        },
    )
    return sample_load_profile([seg])


class TestThresholds:
    def test_defaults_valid(self):
        thresholds = ClassifierThresholds()
        assert 0 < thresholds.threshold(Subsystem.CPU) <= 1

    def test_missing_subsystem_rejected(self):
        with pytest.raises(ValueError):
            ClassifierThresholds(thresholds={Subsystem.CPU: 0.5})

    def test_out_of_range_rejected(self):
        bad = {s: 0.5 for s in (Subsystem.CPU, Subsystem.MEMORY, Subsystem.DISK, Subsystem.NETWORK)}
        bad[Subsystem.DISK] = 0.0
        with pytest.raises(ValueError):
            ClassifierThresholds(thresholds=bad)


class TestClassification:
    def test_cpu_intensive(self):
        profile = classify_trace(trace_with(cpu=0.9))
        assert profile.is_intensive(Subsystem.CPU)
        assert profile.workload_class() is WorkloadClass.CPU

    def test_memory_intensive(self):
        profile = classify_trace(trace_with(cpu=0.3, mem=0.8))
        assert profile.workload_class() is WorkloadClass.MEM

    def test_io_takes_precedence(self):
        # Disk-intensive wins even with significant CPU.
        profile = classify_trace(trace_with(cpu=0.8, disk=0.8))
        assert profile.workload_class() is WorkloadClass.IO

    def test_multi_dimensional_intensity(self):
        profile = classify_trace(trace_with(cpu=0.9, net=0.7))
        assert profile.dimensions == 2
        assert profile.is_intensive(Subsystem.NETWORK)
        # Network-intensive without disk maps to CPU class (no network
        # dimension in the database).
        assert profile.workload_class() is WorkloadClass.CPU

    def test_nothing_significant_defaults_to_cpu(self):
        profile = classify_trace(trace_with(cpu=0.1))
        assert profile.dimensions == 0
        assert profile.workload_class() is WorkloadClass.CPU

    def test_mean_utilization_retained(self):
        profile = classify_trace(trace_with(cpu=0.6))
        assert profile.mean_utilization[Subsystem.CPU] == pytest.approx(0.6)

    def test_custom_thresholds(self):
        lax = ClassifierThresholds(
            thresholds={
                Subsystem.CPU: 0.05,
                Subsystem.MEMORY: 0.05,
                Subsystem.DISK: 0.05,
                Subsystem.NETWORK: 0.05,
            }
        )
        profile = classify_trace(trace_with(cpu=0.1), lax)
        assert profile.is_intensive(Subsystem.CPU)
