"""Shared fixtures.

The expensive artifacts -- the benchmarking campaign and the model
database built from it -- are session-scoped: they are deterministic
(no meter noise) and read-only, so every test can share them.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign.platformrunner import CampaignResult, run_campaign
from repro.core.model import ModelDatabase
from repro.testbed.spec import ServerSpec, default_server


@pytest.fixture(scope="session")
def server() -> ServerSpec:
    """The reference testbed server."""
    return default_server()


@pytest.fixture(scope="session")
def campaign(server: ServerSpec) -> CampaignResult:
    """A full deterministic benchmarking campaign (base + combined)."""
    return run_campaign(server=server)


@pytest.fixture(scope="session")
def database(campaign: CampaignResult) -> ModelDatabase:
    """The model database built from the shared campaign."""
    return ModelDatabase.from_campaign(campaign)


@pytest.fixture
def signal_file(tmp_path):
    """Factory writing temporal-signal JSON files for CLI/loader tests.

    ``signal_file(document)`` serializes the dict; ``signal_file(None,
    raw=...)`` writes the text verbatim for malformed-input tests.
    Each call gets a fresh file name.
    """
    counter = {"n": 0}

    def write(document, raw: "str | None" = None) -> str:
        counter["n"] += 1
        path = tmp_path / f"signal-{counter['n']}.json"
        text = raw if raw is not None else json.dumps(document)
        path.write_text(text, encoding="utf-8")
        return str(path)

    return write
