"""Tests for the thermal replay over simulation chronicles."""

import pytest

from repro.common.errors import ConfigurationError
from repro.ext.thermal import (
    ThermalAwareProactiveStrategy,
    ThermalParams,
    replay_chronicle,
    replay_thermal,
)
from repro.sim.chronicle import Chronicle
from repro.sim.datacenter import DatacenterConfig, DatacenterSimulator
from repro.strategies.proactive import ProactiveStrategy
from repro.testbed.benchmarks import WorkloadClass
from repro.workloads.assignment import PreparedJob
from repro.workloads.qos import QoSPolicy


def jobs(n=10, n_vms=3):
    return [
        PreparedJob(
            job_id=i,
            submit_time_s=(i - 1) * 120.0,
            workload_class=list(WorkloadClass)[i % 3],
            n_vms=n_vms,
            burst_id=i,
        )
        for i in range(1, n + 1)
    ]


class TestReplayChronicle:
    def test_constant_power_reaches_steady_state(self):
        params = ThermalParams()
        chronicle = Chronicle("s0")
        chronicle.record(0.0, 20 * params.time_constant_s, (1, 0, 0), 200.0, ["a"])
        summary = replay_chronicle(chronicle, params)
        expected = params.ambient_c + 200.0 * params.resistance_k_per_w
        assert summary.final_c == pytest.approx(expected, abs=0.1)
        assert summary.peak_c == pytest.approx(expected, abs=0.1)

    def test_cool_server_never_over_redline(self):
        params = ThermalParams()
        chronicle = Chronicle("s0")
        chronicle.record(0.0, 10_000.0, (1, 0, 0), 100.0, ["a"])
        summary = replay_chronicle(chronicle, params)
        assert summary.stayed_cool

    def test_hot_server_accumulates_redline_time(self):
        params = ThermalParams(redline_c=50.0)
        hot_power = (80.0 - params.ambient_c) / params.resistance_k_per_w
        chronicle = Chronicle("s0")
        chronicle.record(0.0, 50 * params.time_constant_s, (2, 0, 0), hot_power, ["a", "b"])
        summary = replay_chronicle(chronicle, params)
        assert summary.seconds_over_redline > 0
        assert summary.peak_c > params.redline_c

    def test_power_off_gap_cools(self):
        params = ThermalParams()
        chronicle = Chronicle("s0")
        chronicle.record(0.0, 1000.0, (1, 0, 0), 250.0, ["a"])
        chronicle.record(
            1000.0 + 20 * params.time_constant_s,
            1001.0 + 20 * params.time_constant_s,
            (1, 0, 0),
            0.0,
            ["b"],
        )
        summary = replay_chronicle(chronicle, params)
        assert summary.final_c == pytest.approx(params.ambient_c, abs=0.5)


class TestReplayThermal:
    def test_requires_chronicles(self, database):
        sim = DatacenterSimulator(DatacenterConfig(n_servers=2))
        result = sim.run(jobs(4), ProactiveStrategy(database), QoSPolicy.unlimited())
        with pytest.raises(ConfigurationError, match="chronicles"):
            replay_thermal(result)

    def test_thermal_aware_strategy_stays_cool(self, database):
        thermal = ThermalParams(ambient_c=30.0, redline_c=65.0)
        sim = DatacenterSimulator(DatacenterConfig(n_servers=4, record_chronicles=True))
        qos = QoSPolicy.unlimited()

        aware = sim.run(
            jobs(12), ThermalAwareProactiveStrategy(database, thermal, alpha=1.0), qos
        )
        replay_aware = replay_thermal(aware, thermal)
        # The power cap holds margin below the redline in closed loop.
        assert replay_aware.all_cool
        assert replay_aware.hottest_peak_c < thermal.redline_c

    def test_plain_energy_goal_runs_hotter(self, database):
        thermal = ThermalParams(ambient_c=30.0, redline_c=65.0)
        sim = DatacenterSimulator(DatacenterConfig(n_servers=4, record_chronicles=True))
        qos = QoSPolicy.unlimited()
        plain = sim.run(jobs(12), ProactiveStrategy(database, alpha=1.0), qos)
        aware = sim.run(
            jobs(12), ThermalAwareProactiveStrategy(database, thermal, alpha=1.0), qos
        )
        peak_plain = replay_thermal(plain, thermal).hottest_peak_c
        peak_aware = replay_thermal(aware, thermal).hottest_peak_c
        assert peak_aware <= peak_plain + 1e-9

    def test_summary_renders(self, database):
        sim = DatacenterSimulator(DatacenterConfig(n_servers=2, record_chronicles=True))
        result = sim.run(jobs(4), ProactiveStrategy(database), QoSPolicy.unlimited())
        text = replay_thermal(result).summary()
        assert "peak" in text and "redline" in text
