"""Unit tests for the reactive migration controller."""

import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.ext.migration import (
    MigrationPolicy,
    apply_migrations,
    plan_migrations,
)
from repro.sim.server import ServerRuntime
from repro.sim.vm import SimVM
from repro.testbed.benchmarks import WorkloadClass
from repro.testbed.spec import default_server


def make_vm(vm_id, workload_class=WorkloadClass.CPU):
    return SimVM(vm_id=vm_id, job_id=1, workload_class=workload_class, submit_time_s=0.0)


def loaded_server(server_id, n_cpu_vms, now=0.0):
    server = ServerRuntime(server_id, default_server())
    server.sync(now)
    for i in range(n_cpu_vms):
        server.add_vm(make_vm(f"{server_id}-v{i}"), now)
    return server


class TestPolicy:
    def test_defaults_valid(self):
        MigrationPolicy()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MigrationPolicy(overload_factor=1.0)
        with pytest.raises(ConfigurationError):
            MigrationPolicy(link_bandwidth_gbps=0.0)
        with pytest.raises(ConfigurationError):
            MigrationPolicy(max_migrations=0)


class TestPlanning:
    def test_balanced_cluster_plans_nothing(self, database):
        servers = [loaded_server("a", 2), loaded_server("b", 2)]
        assert plan_migrations(servers, database) == []

    def test_overloaded_server_triggers_migration(self, database):
        # Load one server to the CPU grid bound (estimated completion
        # far beyond the overload factor) next to an empty neighbour.
        osc = database.grid_bounds[0]
        servers = [loaded_server("hot", osc), loaded_server("cold", 0)]
        policy = MigrationPolicy(overload_factor=1.5)
        decisions = plan_migrations(servers, database, policy)
        assert decisions
        assert decisions[0].source_id == "hot"
        assert decisions[0].target_id == "cold"
        assert decisions[0].penalty_s > 0

    def test_max_migrations_cap(self, database):
        osc = database.grid_bounds[0]
        servers = [
            loaded_server("hot1", osc),
            loaded_server("hot2", osc),
            loaded_server("cold", 0),
        ]
        policy = MigrationPolicy(overload_factor=1.2, max_migrations=1)
        assert len(plan_migrations(servers, database, policy)) == 1

    def test_no_destination_no_migration(self, database):
        osc = database.grid_bounds[0]
        servers = [loaded_server("hot", osc), loaded_server("hot2", osc)]
        policy = MigrationPolicy(overload_factor=1.2, max_migrations=1)
        # Both servers are at the bound: nothing can be received...
        decisions = plan_migrations(servers, database, policy)
        for decision in decisions:
            # ...unless removal+addition stays within bounds, which at
            # the bound it cannot.
            assert decision.source_id != decision.target_id


class TestApplication:
    def test_apply_moves_vm_and_charges_penalty(self, database):
        osc = database.grid_bounds[0]
        servers = [loaded_server("hot", osc), loaded_server("cold", 0)]
        policy = MigrationPolicy(overload_factor=1.5)
        decisions = plan_migrations(servers, database, policy)
        moved_id = decisions[0].vm_id
        before = next(v for v in servers[0].vms if v.vm_id == moved_id)
        remaining_before = sum(before.remaining[before.stage:])

        applied = apply_migrations(decisions, servers, now_s=10.0)
        assert applied == len(decisions)
        assert all(v.vm_id != moved_id for v in servers[0].vms)
        moved = next(v for v in servers[1].vms if v.vm_id == moved_id)
        assert moved.server_id == "cold"
        remaining_after = sum(moved.remaining[moved.stage:])
        # Stop-and-copy penalty: extra work added (minus the 10 s of
        # progress made before the migration instant).
        assert remaining_after > remaining_before - 10.0

    def test_migration_improves_completion(self, database):
        """Reactive migration rescues a pathological initial placement."""
        osc = database.grid_bounds[0]

        def build():
            return [loaded_server("hot", osc), loaded_server("cold", 0)]

        def drain(servers):
            now = 0.0
            for _ in range(10_000):
                boundaries = [s.next_boundary(now) for s in servers]
                upcoming = [b for b in boundaries if b is not None]
                if not upcoming:
                    return now
                now = min(upcoming)
                for server in servers:
                    server.sync(now)
            raise AssertionError("drain did not converge")

        baseline = drain(build())

        migrated_servers = build()
        policy = MigrationPolicy(overload_factor=1.5, max_migrations=4)
        decisions = plan_migrations(migrated_servers, database, policy)
        assert decisions
        apply_migrations(decisions, migrated_servers, now_s=0.0)
        rebalanced = drain(migrated_servers)

        assert rebalanced < baseline

    def test_attach_finished_vm_rejected(self):
        server = ServerRuntime("s", default_server())
        server.sync(0.0)
        vm = make_vm("v")
        vm.advance(vm.benchmark.serial_time_s, 1.0)
        vm.advance(vm.benchmark.work_time_s, 1.0)
        with pytest.raises(SimulationError):
            server.attach_vm(vm, 0.0)
