"""Unit tests for the heterogeneous-hardware extension."""

import pytest

from repro.common.errors import ConfigurationError
from repro.ext.hetero import (
    HeteroProactiveStrategy,
    ServerClass,
    build_class_databases,
    default_classes,
)
from repro.ext.hetero.classes import class_specs
from repro.sim.datacenter import DatacenterConfig, DatacenterSimulator
from repro.strategies.base import ServerView, VMDescriptor
from repro.testbed.benchmarks import WorkloadClass
from repro.testbed.spec import Subsystem
from repro.workloads.assignment import PreparedJob
from repro.workloads.qos import QoSPolicy


@pytest.fixture(scope="module")
def classes():
    return default_classes()


@pytest.fixture(scope="module")
def databases(classes):
    return build_class_databases(classes)


class TestClasses:
    def test_default_two_classes(self, classes):
        assert [c.name for c in classes] == ["legacy", "modern"]
        assert classes[1].spec.capacity(Subsystem.CPU) == 8.0

    def test_per_class_databases(self, databases):
        assert set(databases) == {"legacy", "modern"}
        # The modern node consolidates more before contention: larger
        # CPU grid bound.
        assert databases["modern"].grid_bounds[0] > databases["legacy"].grid_bounds[0]

    def test_duplicate_class_names_rejected(self, classes):
        with pytest.raises(ConfigurationError, match="duplicate"):
            build_class_databases([classes[0], classes[0]])

    def test_class_specs_expansion(self, classes):
        specs, labels = class_specs(classes, {"legacy": 2, "modern": 1})
        assert len(specs) == 3
        assert labels == ("legacy", "legacy", "modern")
        assert specs[2].capacity(Subsystem.CPU) == 8.0

    def test_class_specs_unknown_class(self, classes):
        with pytest.raises(ConfigurationError, match="unknown"):
            class_specs(classes, {"quantum": 1})


class TestHeteroStrategy:
    def _views(self, labels):
        views = []
        for i, label in enumerate(labels):
            cpu_slots = 8 if label == "modern" else 4
            views.append(
                ServerView(
                    server_id=f"s{i}",
                    mix=(0, 0, 0),
                    max_vms=32 if label == "modern" else 24,
                    cpu_slots=cpu_slots,
                    powered_on=False,
                )
            )
        return views

    def _class_map(self, labels):
        return {f"s{i}": label for i, label in enumerate(labels)}

    def test_places_all_vms(self, databases):
        labels = ["legacy", "modern"]
        strategy = HeteroProactiveStrategy(databases, self._class_map(labels))
        batch = [VMDescriptor(f"v{i}", WorkloadClass.CPU) for i in range(6)]
        placement = strategy.place(batch, self._views(labels))
        assert placement is not None
        assert len(placement) == 6

    def test_unknown_server_class_rejected(self, databases):
        with pytest.raises(ConfigurationError):
            HeteroProactiveStrategy(databases, {"s0": "quantum"})

    def test_big_cpu_batch_lands_on_modern_node(self, databases):
        # 12 CPU VMs exceed the legacy grid bound but fit the modern
        # one; with alpha=0 (time) the modern node also runs them
        # faster.
        labels = ["legacy", "modern"]
        strategy = HeteroProactiveStrategy(databases, self._class_map(labels), alpha=0.0)
        batch = [VMDescriptor(f"v{i}", WorkloadClass.CPU) for i in range(12)]
        placement = strategy.place(batch, self._views(labels))
        assert placement is not None
        from collections import Counter

        counts = Counter(placement.values())
        assert counts.get("s1", 0) >= counts.get("s0", 0)

    def test_none_when_nothing_fits(self, databases):
        labels = ["legacy"]
        strategy = HeteroProactiveStrategy(databases, self._class_map(labels))
        osc, osm, osi = databases["legacy"].grid_bounds
        full_view = ServerView("s0", (osc, osm, osi), max_vms=24, cpu_slots=4, powered_on=True)
        assert strategy.place([VMDescriptor("v0", WorkloadClass.CPU)], [full_view]) is None


class TestHeteroSimulation:
    def test_end_to_end_on_mixed_cluster(self, classes, databases):
        specs, labels = class_specs(classes, {"legacy": 2, "modern": 1})
        config = DatacenterConfig(n_servers=3, server_specs=specs)
        simulator = DatacenterSimulator(config)
        class_map = {f"s{i:04d}": label for i, label in enumerate(labels)}
        strategy = HeteroProactiveStrategy(databases, class_map, alpha=0.5)
        jobs = [
            PreparedJob(job_id=i, submit_time_s=i * 30.0, workload_class=wc, n_vms=2, burst_id=i)
            for i, wc in enumerate(
                [WorkloadClass.CPU, WorkloadClass.MEM, WorkloadClass.IO, WorkloadClass.CPU],
                start=1,
            )
        ]
        result = simulator.run(jobs, strategy, QoSPolicy.unlimited())
        assert result.metrics.n_jobs == 4
        assert result.metrics.energy_j > 0

    def test_server_specs_length_checked(self, classes):
        specs, _ = class_specs(classes, {"legacy": 2})
        with pytest.raises(ConfigurationError):
            DatacenterConfig(n_servers=3, server_specs=specs)
