"""Unit tests for the learned surrogate model."""

import pytest

from repro.common.errors import ConfigurationError
from repro.ext.learning import fit_learned_model
from repro.strategies.base import ServerView, VMDescriptor
from repro.strategies.proactive import ProactiveStrategy
from repro.testbed.benchmarks import WorkloadClass


@pytest.fixture(scope="module")
def learned(database):
    return fit_learned_model(database, sample_fraction=0.5, rng=7)


class TestFit:
    def test_training_quality(self, learned):
        # Log-space RMSE well under 0.25 (~25% multiplicative error).
        assert learned.rmse_log_time < 0.25
        assert learned.rmse_log_energy < 0.25

    def test_holdout_accuracy(self, database, learned):
        # Median relative error across the FULL grid stays moderate.
        errors = [learned.relative_error(r) for r in database.records]
        time_errors = sorted(e[0] for e in errors)
        energy_errors = sorted(e[1] for e in errors)
        assert time_errors[len(time_errors) // 2] < 0.15
        assert energy_errors[len(energy_errors) // 2] < 0.15

    def test_deterministic_given_seed(self, database):
        a = fit_learned_model(database, rng=3)
        b = fit_learned_model(database, rng=3)
        key = database.records[5].key
        assert a.estimate(key).time_s == b.estimate(key).time_s

    def test_invalid_fraction(self, database):
        with pytest.raises(ConfigurationError):
            fit_learned_model(database, sample_fraction=0.0)

    def test_invalid_ridge(self, database):
        with pytest.raises(ConfigurationError):
            fit_learned_model(database, ridge=-1.0)


class TestModelInterface:
    def test_estimates_are_positive_inexact(self, learned, database):
        estimate = learned.estimate((3, 1, 1))
        assert estimate.time_s > 0
        assert estimate.energy_j > 0
        assert not estimate.exact

    def test_bounds_mirror_source(self, learned, database):
        assert learned.grid_bounds == database.grid_bounds
        assert learned.within_bounds((1, 1, 1))
        osc = database.grid_bounds[0]
        assert not learned.within_bounds((osc + 1, 0, 0))

    def test_empty_mix_rejected(self, learned):
        with pytest.raises(ValueError):
            learned.estimate((0, 0, 0))

    def test_reference_times_pass_through(self, learned, database):
        for wc in WorkloadClass:
            assert learned.reference_time(wc) == database.reference_time(wc)


class TestAllocatorOnLearnedModel:
    def test_proactive_strategy_runs_on_surrogate(self, learned):
        strategy = ProactiveStrategy(learned, alpha=0.5)  # type: ignore[arg-type]
        views = [
            ServerView(f"s{i}", (0, 0, 0), max_vms=24, cpu_slots=4, powered_on=False)
            for i in range(3)
        ]
        batch = [
            VMDescriptor("c0", WorkloadClass.CPU),
            VMDescriptor("c1", WorkloadClass.CPU),
            VMDescriptor("m0", WorkloadClass.MEM),
        ]
        placement = strategy.place(batch, views)
        assert placement is not None
        assert len(placement) == 3

    def test_learned_and_exact_agree_on_direction(self, learned, database):
        # Consolidating 2 CPU VMs is cheaper energy-wise than solo
        # placement under both models.
        solo = database.estimate((1, 0, 0)).energy_j * 2
        packed = database.estimate((2, 0, 0)).energy_j
        learned_solo = learned.estimate((1, 0, 0)).energy_j * 2
        learned_packed = learned.estimate((2, 0, 0)).energy_j
        assert packed < solo
        assert learned_packed < learned_solo
