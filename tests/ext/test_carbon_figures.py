"""Carbon figures: golden byte-stability, plus CLI flag validation.

The two carbon figures are pure functions of (vm_budget, seed,
alpha_carbon); their rendered JSON documents are committed under
``tests/ext/data`` and compared byte-for-byte, so any drift in the
signal math, the scorer, the shifter, or the simulator's accounting
shows up as a golden diff.  The CLI tests pin the usage-error surface:
malformed signal files and out-of-range knobs exit 2 through the same
typed-flag path as every other bad flag.
"""

import json
import os

import pytest

from repro.cli import build_parser, main
from repro.ext.carbon.figures import (
    CarbonFigure,
    CarbonStrategyPoint,
    carbon_figures,
    figure_document,
)

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")


def golden_bytes(name: str) -> str:
    with open(os.path.join(DATA_DIR, name), "r", encoding="utf-8") as handle:
        return handle.read()


def render(figure: CarbonFigure) -> str:
    return json.dumps(figure_document(figure), indent=2, sort_keys=True) + "\n"


@pytest.fixture(scope="module")
def figures(campaign):
    return carbon_figures(vm_budget=300, seed=7, campaign=campaign)


class TestGoldenFigures:
    def test_cost_figure_bytes_stable(self, figures):
        assert render(figures[0]) == golden_bytes("carbon_figure_cost.json")

    def test_carbon_figure_bytes_stable(self, figures):
        assert render(figures[1]) == golden_bytes("carbon_figure_gco2.json")

    def test_figure_shape(self, figures):
        cost_figure, carbon_figure = figures
        assert cost_figure.units == "EUR"
        assert carbon_figure.units == "gCO2"
        for figure in figures:
            assert len(figure.points) == 6  # the paper's strategy lineup
            for point in figure.points:
                assert point.no_shift > 0.0
                assert point.shifted > 0.0

    def test_saving_pct(self):
        point = CarbonStrategyPoint(strategy="X", no_shift=200.0, shifted=150.0)
        assert point.saving_pct == 25.0
        assert CarbonStrategyPoint("X", 0.0, 0.0).saving_pct == 0.0


class TestCliValidation:
    """Bad carbon flags exit 2 with a pointed message, like every flag."""

    def parse_fails(self, argv, capsys, needle):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(argv)
        assert excinfo.value.code == 2
        assert needle in capsys.readouterr().err

    def test_alpha_carbon_out_of_range(self, capsys):
        self.parse_fails(
            ["simulate", "--alpha-carbon", "1.5"], capsys, "within [0, 1]"
        )
        self.parse_fails(
            ["evaluate", "--alpha-carbon", "-0.1"], capsys, "within [0, 1]"
        )
        self.parse_fails(
            ["allocate", "--model", "m", "--alpha-carbon", "x"], capsys, "number"
        )

    def test_missing_signal_file(self, capsys):
        self.parse_fails(
            ["simulate", "--carbon-signal", "/does/not/exist.json"],
            capsys,
            "cannot read signal file",
        )

    def test_malformed_signal_file(self, capsys, signal_file):
        self.parse_fails(
            ["simulate", "--carbon-signal", signal_file(None, raw="{broken")],
            capsys,
            "not valid JSON",
        )
        self.parse_fails(
            [
                "simulate",
                "--price-signal",
                signal_file({"kind": "step", "period_s": 10.0, "points": []}),
            ],
            capsys,
            "non-empty array",
        )
        self.parse_fails(
            [
                "simulate",
                "--carbon-signal",
                signal_file(
                    {"kind": "step", "period_s": 10.0, "points": [[5.0, 1.0]]}
                ),
            ],
            capsys,
            "start at 0.0",
        )

    def test_bad_synthetic_seed(self, capsys):
        self.parse_fails(
            ["simulate", "--carbon-signal", "synthetic:banana"],
            capsys,
            "integer",
        )

    def test_knobs_require_a_signal(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["simulate", "--alpha-carbon", "0.5"])
        assert excinfo.value.code == 2
        assert "--alpha-carbon requires" in capsys.readouterr().err

    def test_shift_requires_signal_and_qos(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["evaluate", "--shift-deferrable"])
        assert excinfo.value.code == 2
        assert "--shift-deferrable requires" in capsys.readouterr().err
        with pytest.raises(SystemExit) as excinfo:
            main(["simulate", "--carbon-signal", "synthetic", "--shift-deferrable"])
        assert excinfo.value.code == 2
        assert "--qos-factor" in capsys.readouterr().err

    def test_alpha_carbon_rejects_time_budget(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "evaluate",
                    "--carbon-signal",
                    "synthetic",
                    "--alpha-carbon",
                    "0.5",
                    "--time-budget",
                    "1",
                ]
            )
        assert excinfo.value.code == 2
        assert "time-budget" in capsys.readouterr().err

    def test_alpha_carbon_requires_pa_strategy(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "simulate",
                    "--carbon-signal",
                    "synthetic",
                    "--alpha-carbon",
                    "0.5",
                    "--strategy",
                    "FF-2",
                ]
            )
        assert excinfo.value.code == 2
        assert "PA-<alpha>" in capsys.readouterr().err
