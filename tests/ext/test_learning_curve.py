"""Tests for the surrogate learning curve."""

import pytest

from repro.common.errors import ConfigurationError
from repro.ext.learning.curve import learning_curve


@pytest.fixture(scope="module")
def curve(database):
    return learning_curve(database, fractions=(0.2, 0.5, 1.0), rng=9)


class TestLearningCurve:
    def test_point_per_fraction(self, curve):
        assert [p.fraction for p in curve.points] == [0.2, 0.5, 1.0]

    def test_errors_decrease_overall(self, curve):
        first, last = curve.points[0], curve.points[-1]
        assert last.median_time_error <= first.median_time_error + 0.02
        assert last.median_energy_error <= first.median_energy_error + 0.02

    def test_full_budget_accuracy(self, curve):
        full = curve.points[-1]
        assert full.median_time_error < 0.12
        assert full.p90_time_error < 0.30

    def test_threshold_query(self, curve):
        fraction = curve.smallest_fraction_below(0.12)
        assert fraction is not None
        assert curve.smallest_fraction_below(0.0) is None

    def test_rows_shape(self, curve):
        rows = curve.rows()
        assert len(rows) == 3
        assert all(len(r) == 4 for r in rows)

    def test_fraction_validation(self, database):
        with pytest.raises(ConfigurationError):
            learning_curve(database, fractions=())
        with pytest.raises(ConfigurationError):
            learning_curve(database, fractions=(0.5, 0.2))
        with pytest.raises(ConfigurationError):
            learning_curve(database, fractions=(0.5, 1.5))

    def test_deterministic(self, database):
        a = learning_curve(database, fractions=(0.3,), rng=5)
        b = learning_curve(database, fractions=(0.3,), rng=5)
        assert a.points[0].median_time_error == b.points[0].median_time_error
