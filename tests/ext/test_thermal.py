"""Unit tests for the thermal extension."""

import math

import pytest

from repro.common.errors import ConfigurationError, ModelLookupError
from repro.core.allocator import ServerState
from repro.ext.thermal import (
    PowerCappedDatabase,
    ThermalAwareProactiveStrategy,
    ThermalParams,
    ThermalState,
    steady_state_temp_c,
    thermal_power_cap_w,
)
from repro.strategies.base import ServerView, VMDescriptor
from repro.testbed.benchmarks import WorkloadClass


class TestThermalModel:
    def test_steady_state(self):
        params = ThermalParams(resistance_k_per_w=0.2, ambient_c=20.0)
        assert steady_state_temp_c(200.0, params) == pytest.approx(60.0)

    def test_step_converges_to_steady_state(self):
        params = ThermalParams()
        state = ThermalState(params)
        for _ in range(50):
            state.step(200.0, params.time_constant_s)
        assert state.temperature_c == pytest.approx(
            steady_state_temp_c(200.0, params), abs=0.01
        )

    def test_exact_integration_is_step_size_invariant(self):
        params = ThermalParams()
        coarse = ThermalState(params)
        fine = ThermalState(params)
        coarse.step(180.0, 600.0)
        for _ in range(600):
            fine.step(180.0, 1.0)
        assert coarse.temperature_c == pytest.approx(fine.temperature_c, abs=1e-9)

    def test_cooling_when_power_drops(self):
        params = ThermalParams()
        state = ThermalState(params, initial_c=60.0)
        state.step(0.0, 10_000.0)
        assert state.temperature_c == pytest.approx(params.ambient_c, abs=0.5)

    def test_peak_tracked(self):
        state = ThermalState(ThermalParams(), initial_c=50.0)
        state.step(0.0, 10_000.0)
        assert state.peak_c == pytest.approx(50.0)

    def test_time_to_redline(self):
        params = ThermalParams(redline_c=60.0)
        state = ThermalState(params)
        hot_power = (70.0 - params.ambient_c) / params.resistance_k_per_w
        t = state.time_to_redline_s(hot_power)
        assert 0 < t < float("inf")
        state.step(hot_power, t)
        assert state.temperature_c == pytest.approx(params.redline_c, abs=0.01)

    def test_time_to_redline_infinite_when_cool(self):
        state = ThermalState(ThermalParams())
        assert state.time_to_redline_s(10.0) == float("inf")

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            ThermalParams(resistance_k_per_w=0.0)
        with pytest.raises(ConfigurationError):
            ThermalParams(ambient_c=80.0, redline_c=70.0)


class TestPowerCappedDatabase:
    def test_cap_formula(self):
        params = ThermalParams(resistance_k_per_w=0.2, ambient_c=20.0, redline_c=70.0)
        assert thermal_power_cap_w(params, margin_c=0.0) == pytest.approx(250.0)

    def test_hot_mixes_rejected(self, database):
        hottest = max(r.avg_power_w for r in database.records)
        coolest = min(r.avg_power_w for r in database.records)
        cap = (hottest + coolest) / 2
        capped = PowerCappedDatabase(database, cap)
        assert len(capped) < len(database)
        for record in capped.records:
            assert record.avg_power_w <= cap

    def test_within_bounds_respects_cap(self, database):
        hottest_record = max(database.records, key=lambda r: r.avg_power_w)
        capped = PowerCappedDatabase(database, hottest_record.avg_power_w - 1.0)
        assert database.within_bounds(hottest_record.key)
        assert not capped.within_bounds(hottest_record.key)

    def test_estimate_raises_above_cap(self, database):
        hottest_record = max(database.records, key=lambda r: r.avg_power_w)
        capped = PowerCappedDatabase(database, hottest_record.avg_power_w - 1.0)
        with pytest.raises(ModelLookupError):
            capped.estimate(hottest_record.key)

    def test_cool_mixes_pass_through(self, database):
        capped = PowerCappedDatabase(database, 1e9)
        key = database.records[0].key
        assert capped.estimate(key).time_s == database.estimate(key).time_s

    def test_invalid_cap(self, database):
        with pytest.raises(ConfigurationError):
            PowerCappedDatabase(database, 0.0)


class TestThermalAwareStrategy:
    def test_never_places_over_budget(self, database):
        thermal = ThermalParams()
        strategy = ThermalAwareProactiveStrategy(database, thermal, alpha=1.0)
        views = [
            ServerView(f"s{i}", (0, 0, 0), max_vms=24, cpu_slots=4, powered_on=False)
            for i in range(6)
        ]
        batch = [VMDescriptor(f"v{i}", WorkloadClass.CPU) for i in range(9)]
        placement = strategy.place(batch, views)
        assert placement is not None
        # Reconstruct per-server mixes and check their steady state.
        from collections import Counter

        per_server = Counter(placement.values())
        for server_id, count in per_server.items():
            estimate = database.estimate((count, 0, 0))
            steady = steady_state_temp_c(estimate.avg_power_w, thermal)
            assert steady < thermal.redline_c

    def test_worst_case_steady_temp_below_redline(self, database):
        thermal = ThermalParams()
        strategy = ThermalAwareProactiveStrategy(database, thermal, margin_c=3.0)
        assert strategy.worst_case_steady_temp_c() <= thermal.redline_c - 2.9

    def test_name(self, database):
        assert ThermalAwareProactiveStrategy(database, alpha=0.5).name == "PA-0.5-thermal"
