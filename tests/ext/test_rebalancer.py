"""Tests for reactive rebalancing inside the datacenter simulation."""

import pytest

from repro.common.errors import ConfigurationError
from repro.ext.migration import MigrationPolicy, ReactiveRebalancer
from repro.sim.datacenter import DatacenterConfig, DatacenterSimulator
from repro.strategies.firstfit import FirstFitStrategy
from repro.strategies.proactive import ProactiveStrategy
from repro.testbed.benchmarks import WorkloadClass
from repro.workloads.assignment import PreparedJob
from repro.workloads.qos import QoSPolicy


def burst_jobs(n_jobs=8, n_vms=4, gap=50.0):
    """Bursty same-class arrivals: the workload FF-3 mangles."""
    return [
        PreparedJob(
            job_id=i,
            submit_time_s=(i - 1) * gap,
            workload_class=WorkloadClass.MEM if i % 2 else WorkloadClass.CPU,
            n_vms=n_vms,
            burst_id=i,
        )
        for i in range(1, n_jobs + 1)
    ]


class TestReactiveRebalancer:
    def test_cooldown_validation(self, database):
        with pytest.raises(ConfigurationError):
            ReactiveRebalancer(database, cooldown_s=-1.0)

    def test_cooldown_throttles(self, database):
        rebalancer = ReactiveRebalancer(database, cooldown_s=1000.0)
        # First scan allowed; immediate second scan suppressed.
        touched, finished = rebalancer.maybe_rebalance([], 0.0)
        assert touched == [] and finished == []
        assert rebalancer.maybe_rebalance([], 1.0) == ([], [])

    def test_ff3_with_rebalancing_not_worse(self, database):
        """FF-3 packs blindly; the rebalancer cleans up after it."""
        sim = DatacenterSimulator(DatacenterConfig(n_servers=3))
        qos = QoSPolicy.unlimited()
        jobs = burst_jobs()
        plain = sim.run(jobs, FirstFitStrategy(3), qos)
        rebalancer = ReactiveRebalancer(
            database,
            policy=MigrationPolicy(overload_factor=2.0, max_migrations=4),
            cooldown_s=200.0,
        )
        rescued = sim.run(jobs, FirstFitStrategy(3), qos, rebalancer=rebalancer)
        assert rescued.metrics.n_jobs == plain.metrics.n_jobs
        assert rescued.metrics.makespan_s <= plain.metrics.makespan_s * 1.02

    def test_migrations_counted(self, database):
        sim = DatacenterSimulator(DatacenterConfig(n_servers=3))
        rebalancer = ReactiveRebalancer(
            database,
            policy=MigrationPolicy(overload_factor=1.5, max_migrations=4),
            cooldown_s=100.0,
        )
        sim.run(burst_jobs(n_jobs=10, gap=20.0), FirstFitStrategy(3), QoSPolicy.unlimited(), rebalancer=rebalancer)
        assert rebalancer.migrations_performed >= 0  # bookkeeping intact

    def test_proactive_triggers_fewer_migrations_than_ff3(self, database):
        """The paper's argument: proactive placement avoids the costly
        migrations a reactive system needs."""
        sim = DatacenterSimulator(DatacenterConfig(n_servers=3))
        qos = QoSPolicy.unlimited()
        jobs = burst_jobs(n_jobs=10, gap=20.0)
        policy = MigrationPolicy(overload_factor=2.0, max_migrations=4)

        ff3_rebalancer = ReactiveRebalancer(database, policy=policy, cooldown_s=100.0)
        sim.run(jobs, FirstFitStrategy(3), qos, rebalancer=ff3_rebalancer)

        pa_rebalancer = ReactiveRebalancer(database, policy=policy, cooldown_s=100.0)
        sim.run(jobs, ProactiveStrategy(database, alpha=0.5), qos, rebalancer=pa_rebalancer)

        assert pa_rebalancer.migrations_performed <= ff3_rebalancer.migrations_performed

    def test_simulation_consistency_with_rebalancer(self, database):
        """All jobs still complete exactly once with migration active."""
        sim = DatacenterSimulator(DatacenterConfig(n_servers=3))
        rebalancer = ReactiveRebalancer(
            database,
            policy=MigrationPolicy(overload_factor=1.5, max_migrations=6),
            cooldown_s=50.0,
        )
        jobs = burst_jobs(n_jobs=12, gap=15.0)
        result = sim.run(jobs, FirstFitStrategy(3), QoSPolicy.unlimited(), rebalancer=rebalancer)
        assert sorted(o.job_id for o in result.outcomes) == [j.job_id for j in jobs]
        assert result.metrics.energy_j > 0
