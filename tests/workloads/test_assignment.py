"""Unit tests for profile assignment and VM scaling."""

import pytest

from repro.common.errors import ConfigurationError
from repro.testbed.benchmarks import WorkloadClass
from repro.workloads.assignment import (
    AssignmentConfig,
    assign_profiles_and_vms,
    total_vms_requested,
    truncate_to_vm_budget,
)
from repro.workloads.swf import SWFRecord


def trace(n=50):
    return [
        SWFRecord(job_number=i + 1, submit_time=i * 10, run_time=100, status=1, allocated_procs=2)
        for i in range(n)
    ]


class TestAssignmentConfig:
    def test_defaults_match_paper(self):
        config = AssignmentConfig()
        assert (config.min_burst, config.max_burst) == (1, 5)
        assert (config.min_vms, config.max_vms) == (1, 4)

    def test_invalid_bounds(self):
        with pytest.raises(ConfigurationError):
            AssignmentConfig(min_burst=3, max_burst=2)
        with pytest.raises(ConfigurationError):
            AssignmentConfig(min_vms=0)


class TestAssignProfiles:
    def test_every_job_prepared(self):
        jobs = assign_profiles_and_vms(trace(), rng=1)
        assert len(jobs) == 50

    def test_vm_counts_in_range(self):
        jobs = assign_profiles_and_vms(trace(), rng=1)
        assert all(1 <= j.n_vms <= 4 for j in jobs)

    def test_burst_members_share_profile(self):
        jobs = assign_profiles_and_vms(trace(200), rng=2)
        by_burst: dict[int, set] = {}
        for job in jobs:
            by_burst.setdefault(job.burst_id, set()).add(job.workload_class)
        assert all(len(classes) == 1 for classes in by_burst.values())

    def test_burst_sizes_in_range(self):
        jobs = assign_profiles_and_vms(trace(200), rng=2)
        sizes: dict[int, int] = {}
        for job in jobs:
            sizes[job.burst_id] = sizes.get(job.burst_id, 0) + 1
        # All bursts within [1, 5]; the final burst may be truncated.
        assert all(1 <= s <= 5 for s in sizes.values())

    def test_all_classes_appear(self):
        jobs = assign_profiles_and_vms(trace(300), rng=3)
        assert {j.workload_class for j in jobs} == set(WorkloadClass)

    def test_deterministic(self):
        a = assign_profiles_and_vms(trace(), rng=7)
        b = assign_profiles_and_vms(trace(), rng=7)
        assert a == b

    def test_submit_order_preserved(self):
        jobs = assign_profiles_and_vms(trace(), rng=1)
        submits = [j.submit_time_s for j in jobs]
        assert submits == sorted(submits)


class TestVmBudget:
    def test_total_vms(self):
        jobs = assign_profiles_and_vms(trace(), rng=1)
        assert total_vms_requested(jobs) == sum(j.n_vms for j in jobs)

    def test_truncate_respects_budget(self):
        jobs = assign_profiles_and_vms(trace(200), rng=1)
        clipped = truncate_to_vm_budget(jobs, 100)
        assert total_vms_requested(clipped) <= 100
        # Keeps whole jobs from the front.
        assert [j.job_id for j in clipped] == [j.job_id for j in jobs[: len(clipped)]]

    def test_truncate_zero_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            truncate_to_vm_budget([], 0)
