"""Unit tests for the SWF reader/writer/merger."""

import pytest

from repro.common.errors import TraceFormatError
from repro.workloads.swf import (
    N_FIELDS,
    JobStatus,
    SWFRecord,
    merge_swf,
    read_swf,
    write_swf,
)


def record(job=1, submit=0, run=100, status=JobStatus.COMPLETED, procs=1):
    return SWFRecord(
        job_number=job,
        submit_time=submit,
        run_time=run,
        status=int(status),
        allocated_procs=procs,
    )


class TestRecord:
    def test_field_count(self):
        assert len(record().as_fields()) == N_FIELDS

    def test_from_fields_roundtrip(self):
        original = record(job=7, submit=33)
        assert SWFRecord.from_fields(original.as_fields()) == original

    def test_from_fields_wrong_arity(self):
        with pytest.raises(ValueError):
            SWFRecord.from_fields([1, 2, 3])

    def test_status_enum(self):
        assert record(status=JobStatus.FAILED).job_status is JobStatus.FAILED
        assert record().completed

    def test_unknown_status_maps_to_unknown(self):
        r = SWFRecord(job_number=1, submit_time=0, status=42)
        assert r.job_status is JobStatus.UNKNOWN

    def test_shifted(self):
        assert record(submit=10).shifted(5).submit_time == 15


class TestFileRoundTrip:
    def test_roundtrip(self, tmp_path):
        records = [record(job=1), record(job=2, submit=10)]
        path = tmp_path / "trace.swf"
        write_swf(records, path, comments=["; Version: 2.2", "UnixStartTime: 0"])
        comments, loaded = read_swf(path)
        assert loaded == records
        assert comments[0] == "; Version: 2.2"
        assert comments[1].startswith(";")  # prefix added when missing

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "trace.swf"
        line = " ".join(str(f) for f in record().as_fields())
        path.write_text(f"\n{line}\n\n")
        _, loaded = read_swf(path)
        assert len(loaded) == 1

    def test_wrong_field_count_rejected(self, tmp_path):
        path = tmp_path / "trace.swf"
        path.write_text("1 2 3\n")
        with pytest.raises(TraceFormatError, match="line 1"):
            read_swf(path)

    def test_non_integer_rejected(self, tmp_path):
        path = tmp_path / "trace.swf"
        fields = ["x"] + ["0"] * (N_FIELDS - 1)
        path.write_text(" ".join(fields) + "\n")
        with pytest.raises(TraceFormatError):
            read_swf(path)


class TestMerge:
    def test_merge_sorts_by_submit(self):
        a = [record(job=1, submit=100)]
        b = [record(job=1, submit=50)]
        merged = merge_swf([a, b])
        assert [r.submit_time for r in merged] == [50, 100]

    def test_merge_renumbers(self):
        a = [record(job=1, submit=0), record(job=2, submit=5)]
        b = [record(job=1, submit=3)]
        merged = merge_swf([a, b])
        assert [r.job_number for r in merged] == [1, 2, 3]

    def test_merge_empty(self):
        assert merge_swf([]) == []
        assert merge_swf([[], []]) == []
