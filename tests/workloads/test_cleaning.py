"""Unit tests for trace cleaning."""

import pytest

from repro.workloads.cleaning import clean_trace
from repro.workloads.swf import JobStatus, SWFRecord


def record(job=1, submit=0, run=100, status=JobStatus.COMPLETED, procs=1):
    return SWFRecord(
        job_number=job,
        submit_time=submit,
        run_time=run,
        status=int(status),
        allocated_procs=procs,
    )


class TestCleanTrace:
    def test_failed_removed(self):
        kept, report = clean_trace([record(status=JobStatus.FAILED), record(job=2)])
        assert len(kept) == 1
        assert report.failed == 1

    def test_cancelled_removed(self):
        kept, report = clean_trace([record(status=JobStatus.CANCELLED), record(job=2)])
        assert report.cancelled == 1
        assert len(kept) == 1

    @pytest.mark.parametrize(
        "bad",
        [
            record(run=0),
            record(run=-5),
            record(procs=0),
            record(submit=-10),
            record(status=JobStatus.UNKNOWN),
        ],
    )
    def test_anomalies_removed(self, bad):
        kept, report = clean_trace([bad, record(job=2, submit=5)])
        assert report.anomalies == 1
        assert len(kept) == 1

    def test_unknown_procs_allowed(self):
        # -1 = "unknown" is not an anomaly (VM scaling replaces it).
        kept, report = clean_trace([record(procs=-1)])
        assert len(kept) == 1

    def test_rebased_and_renumbered(self):
        kept, _ = clean_trace([record(job=9, submit=100), record(job=4, submit=150)])
        assert [r.submit_time for r in kept] == [0, 50]
        assert [r.job_number for r in kept] == [1, 2]

    def test_sorted_output(self):
        kept, _ = clean_trace([record(job=1, submit=50), record(job=2, submit=10)])
        assert [r.submit_time for r in kept] == [0, 40]

    def test_report_totals(self):
        records = [
            record(job=1),
            record(job=2, status=JobStatus.FAILED),
            record(job=3, status=JobStatus.CANCELLED),
            record(job=4, run=-1),
        ]
        kept, report = clean_trace(records)
        assert report.total == 4
        assert report.kept == 1
        assert report.removed == 3
        assert "kept 1/4" in report.summary()

    def test_empty_trace(self):
        kept, report = clean_trace([])
        assert kept == []
        assert report.total == 0
