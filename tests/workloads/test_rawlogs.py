"""Unit tests for raw grid-log parsing and SWF conversion."""

import pytest

from repro.common.errors import TraceFormatError
from repro.workloads.rawlogs import RawLogDialect, parse_raw_log, raw_log_to_swf
from repro.workloads.swf import JobStatus


CSV_LINES = [
    "# a comment",
    "1,1000,1010,1100,4,DONE",
    "2,1005,-1,-1,2,CANCELLED",
    "3,1010,1020,1060,1,FAILED",
]

KV_LINES = [
    "id=1 submit=1000 start=1010 end=1100 cpus=4 status=DONE",
    "id=2 submit=1005 start=-1 end=-1 cpus=2 status=CANCELLED",
]


class TestParseCSV:
    def test_parses_rows(self):
        rows = parse_raw_log(CSV_LINES, RawLogDialect.CSV)
        assert len(rows) == 3
        assert rows[0] == (1, 1000, 1010, 1100, 4, JobStatus.COMPLETED)

    def test_states_mapped(self):
        rows = parse_raw_log(CSV_LINES, RawLogDialect.CSV)
        assert rows[1][5] is JobStatus.CANCELLED
        assert rows[2][5] is JobStatus.FAILED

    def test_wrong_field_count(self):
        with pytest.raises(TraceFormatError, match="line 1"):
            parse_raw_log(["1,2,3"], RawLogDialect.CSV)

    def test_unknown_state(self):
        with pytest.raises(TraceFormatError, match="state"):
            parse_raw_log(["1,1,1,1,1,EXPLODED"], RawLogDialect.CSV)

    def test_non_integer(self):
        with pytest.raises(TraceFormatError):
            parse_raw_log(["x,1,1,1,1,DONE"], RawLogDialect.CSV)


class TestParseKeyValue:
    def test_parses_rows(self):
        rows = parse_raw_log(KV_LINES, RawLogDialect.KEYVALUE)
        assert rows[0][:2] == (1, 1000)

    def test_missing_key(self):
        with pytest.raises(TraceFormatError, match="missing"):
            parse_raw_log(["id=1 submit=5"], RawLogDialect.KEYVALUE)

    def test_malformed_token(self):
        with pytest.raises(TraceFormatError, match="malformed"):
            parse_raw_log(["id=1 submit=5 bogus start=1 end=2 cpus=1 status=DONE"], RawLogDialect.KEYVALUE)

    def test_dialects_agree(self):
        csv_rows = parse_raw_log(["1,1000,1010,1100,4,DONE"], RawLogDialect.CSV)
        kv_rows = parse_raw_log(KV_LINES[:1], RawLogDialect.KEYVALUE)
        assert csv_rows == kv_rows


class TestToSWF:
    def test_rebase_to_zero(self):
        rows = parse_raw_log(CSV_LINES, RawLogDialect.CSV)
        records = raw_log_to_swf(rows)
        assert min(r.submit_time for r in records) == 0

    def test_wait_and_run_derived(self):
        rows = parse_raw_log(["1,1000,1010,1100,4,DONE"], RawLogDialect.CSV)
        record = raw_log_to_swf(rows)[0]
        assert record.wait_time == 10
        assert record.run_time == 90
        assert record.allocated_procs == 4

    def test_never_started_jobs_carry_unknowns(self):
        rows = parse_raw_log(CSV_LINES, RawLogDialect.CSV)
        records = raw_log_to_swf(rows)
        cancelled = next(r for r in records if r.status == JobStatus.CANCELLED)
        assert cancelled.wait_time == -1
        assert cancelled.run_time == -1

    def test_sorted_output(self):
        rows = parse_raw_log(CSV_LINES, RawLogDialect.CSV)
        records = raw_log_to_swf(rows)
        submits = [r.submit_time for r in records]
        assert submits == sorted(submits)

    def test_empty(self):
        assert raw_log_to_swf([]) == []

    def test_no_rebase_option(self):
        rows = parse_raw_log(["1,1000,1010,1100,4,DONE"], RawLogDialect.CSV)
        record = raw_log_to_swf(rows, rebase=False)[0]
        assert record.submit_time == 1000
