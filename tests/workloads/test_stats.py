"""Unit tests for workload trace statistics."""

import pytest

from repro.workloads.assignment import assign_profiles_and_vms
from repro.workloads.cleaning import clean_trace
from repro.workloads.stats import prepared_stats, trace_stats
from repro.workloads.swf import JobStatus, SWFRecord
from repro.workloads.synthetic import EGEETraceConfig, generate_egee_like_trace


def record(job=1, submit=0, run=100, status=JobStatus.COMPLETED):
    return SWFRecord(job_number=job, submit_time=submit, run_time=run, status=int(status), allocated_procs=1)


class TestTraceStats:
    def test_basic_fields(self):
        records = [record(job=i, submit=i * 10) for i in range(1, 11)]
        stats = trace_stats(records)
        assert stats.n_jobs == 10
        assert stats.span_s == 90.0
        assert stats.completed_fraction == 1.0
        assert stats.interarrival_mean_s == pytest.approx(10.0)

    def test_status_fractions(self):
        records = [
            record(job=1),
            record(job=2, status=JobStatus.FAILED),
            record(job=3, status=JobStatus.CANCELLED),
            record(job=4, status=JobStatus.FAILED),
        ]
        stats = trace_stats(records)
        assert stats.failed_fraction == 0.5
        assert stats.cancelled_fraction == 0.25

    def test_uniform_arrivals_not_bursty(self):
        records = [record(job=i, submit=i * 10) for i in range(1, 50)]
        assert not trace_stats(records).is_bursty

    def test_synthetic_trace_is_bursty(self):
        trace = generate_egee_like_trace(EGEETraceConfig(n_jobs=1500), rng=4)
        stats = trace_stats(trace)
        assert stats.is_bursty  # cluster-process arrivals
        assert 0.1 < stats.failed_fraction < 0.3

    def test_runtime_percentiles_ignore_unknowns(self):
        records = [record(job=1, run=-1), record(job=2, run=100), record(job=3, run=300)]
        stats = trace_stats(records)
        assert stats.runtime_median_s == pytest.approx(200.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            trace_stats([])

    def test_summary_renders(self):
        text = trace_stats([record()]).summary()
        assert "1 jobs" in text


class TestPreparedStats:
    def test_from_pipeline(self):
        trace = generate_egee_like_trace(EGEETraceConfig(n_jobs=800), rng=5)
        cleaned, _ = clean_trace(trace)
        jobs = assign_profiles_and_vms(cleaned, rng=6)
        stats = prepared_stats(jobs)
        assert stats.n_jobs == len(jobs)
        assert stats.n_vms == sum(j.n_vms for j in jobs)
        # Paper's parameters: 1-4 VMs/job uniform -> mean ~2.5;
        # bursts 1-5 uniform -> mean ~3.
        assert 2.2 < stats.mean_vms_per_job < 2.8
        assert 2.3 < stats.mean_burst_size < 3.7
        # Uniform class assignment: roughly even thirds.
        for share in stats.class_shares.values():
            assert 0.22 < share < 0.45

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            prepared_stats([])

    def test_summary_renders(self):
        trace = generate_egee_like_trace(EGEETraceConfig(n_jobs=100), rng=5)
        cleaned, _ = clean_trace(trace)
        jobs = assign_profiles_and_vms(cleaned, rng=6)
        assert "VMs/job" in prepared_stats(jobs).summary()
