"""Unit tests for the synthetic EGEE-like trace generator."""

import pytest

from repro.common.errors import ConfigurationError
from repro.workloads.rawlogs import RawLogDialect
from repro.workloads.swf import JobStatus
from repro.workloads.synthetic import (
    EGEETraceConfig,
    generate_egee_like_trace,
    generate_raw_grid_logs,
)


class TestConfig:
    def test_defaults_valid(self):
        EGEETraceConfig()

    def test_fractions_must_fit(self):
        with pytest.raises(ConfigurationError):
            EGEETraceConfig(failed_fraction=0.6, cancelled_fraction=0.5)

    def test_n_jobs_positive(self):
        with pytest.raises(ConfigurationError):
            EGEETraceConfig(n_jobs=0)


class TestRawLogs:
    @pytest.fixture(scope="class")
    def logs(self):
        return generate_raw_grid_logs(EGEETraceConfig(n_jobs=500), rng=1)

    def test_multiple_sites(self, logs):
        assert len(logs) == 3

    def test_mixed_dialects(self, logs):
        dialects = {dialect for dialect, _ in logs}
        assert dialects == {RawLogDialect.CSV, RawLogDialect.KEYVALUE}

    def test_total_job_count(self, logs):
        assert sum(len(lines) for _, lines in logs) == 500

    def test_deterministic(self):
        a = generate_raw_grid_logs(EGEETraceConfig(n_jobs=50), rng=9)
        b = generate_raw_grid_logs(EGEETraceConfig(n_jobs=50), rng=9)
        assert a == b

    def test_seed_changes_output(self):
        a = generate_raw_grid_logs(EGEETraceConfig(n_jobs=50), rng=1)
        b = generate_raw_grid_logs(EGEETraceConfig(n_jobs=50), rng=2)
        assert a != b


class TestFullTrace:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_egee_like_trace(EGEETraceConfig(n_jobs=2000), rng=5)

    def test_all_jobs_survive_conversion(self, trace):
        assert len(trace) == 2000

    def test_contains_failures_and_cancellations(self, trace):
        statuses = {r.job_status for r in trace}
        assert JobStatus.FAILED in statuses
        assert JobStatus.CANCELLED in statuses
        assert JobStatus.COMPLETED in statuses

    def test_failure_fraction_near_config(self, trace):
        failed = sum(1 for r in trace if r.job_status is JobStatus.FAILED)
        assert 0.12 < failed / len(trace) < 0.25

    def test_contains_anomalies(self, trace):
        # Negative runtimes or zero-CPU rows must exist for cleaning.
        assert any(r.run_time < 0 and r.status == JobStatus.COMPLETED for r in trace) or any(
            r.allocated_procs == 0 for r in trace
        )

    def test_sorted_and_renumbered(self, trace):
        submits = [r.submit_time for r in trace]
        assert submits == sorted(submits)
        assert [r.job_number for r in trace] == list(range(1, len(trace) + 1))

    def test_bursty_arrivals(self, trace):
        # A cluster process has many tiny inter-arrival gaps and some
        # large ones; a Poisson process of the same rate would not show
        # this many zero-gaps.
        gaps = [b.submit_time - a.submit_time for a, b in zip(trace, trace[1:])]
        zero_gaps = sum(1 for g in gaps if g <= 2)
        assert zero_gaps > len(gaps) * 0.3
