"""Unit tests for the QoS policy."""

import pytest

from repro.common.errors import ConfigurationError
from repro.testbed.benchmarks import WORKLOAD_CLASSES, WorkloadClass
from repro.workloads.qos import QoSPolicy


class TestQoSPolicy:
    def test_deadline_is_submit_plus_budget(self):
        policy = QoSPolicy(
            max_response_s={
                WorkloadClass.CPU: 1000.0,
                WorkloadClass.MEM: 2000.0,
                WorkloadClass.IO: 3000.0,
            }
        )
        assert policy.deadline_for(WorkloadClass.CPU, 500.0) == 1500.0
        assert policy.max_response(WorkloadClass.IO) == 3000.0

    def test_missing_class_rejected(self):
        with pytest.raises(ConfigurationError):
            QoSPolicy(max_response_s={WorkloadClass.CPU: 1000.0})

    def test_non_positive_rejected(self):
        bad = {c: 100.0 for c in WORKLOAD_CLASSES}
        bad[WorkloadClass.MEM] = 0.0
        with pytest.raises(ConfigurationError):
            QoSPolicy(max_response_s=bad)

    def test_from_optima_scales_reference_times(self, campaign):
        policy = QoSPolicy.from_optima(campaign.optima, factor=4.0)
        assert policy.max_response(WorkloadClass.CPU) == pytest.approx(4 * 600.0)
        assert policy.max_response(WorkloadClass.IO) == pytest.approx(4 * 800.0)

    def test_from_optima_requires_factor_above_one(self, campaign):
        with pytest.raises(ConfigurationError):
            QoSPolicy.from_optima(campaign.optima, factor=1.0)

    def test_unlimited_never_binds(self):
        policy = QoSPolicy.unlimited()
        assert policy.deadline_for(WorkloadClass.CPU, 5.0) == float("inf")
