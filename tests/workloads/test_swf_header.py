"""Tests for SWF header generation and parsing."""

import pytest

from repro.workloads.swf import SWFRecord, read_swf, write_swf
from repro.workloads.swf_header import build_swf_header, parse_swf_header


def record(job=1, submit=0, procs=4):
    return SWFRecord(
        job_number=job, submit_time=submit, run_time=100, status=1, allocated_procs=procs
    )


class TestBuildHeader:
    def test_standard_fields_present(self):
        lines = build_swf_header([record(), record(job=2, submit=500, procs=8)])
        parsed = parse_swf_header(lines)
        assert parsed["Version"] == "2.2"
        assert parsed["MaxJobs"] == "2"
        assert parsed["MaxProcs"] == "8"
        assert parsed["StartTime"] == "0"
        assert parsed["EndTime"] == "500"

    def test_empty_trace(self):
        lines = build_swf_header([])
        parsed = parse_swf_header(lines)
        assert parsed["MaxJobs"] == "0"
        assert "StartTime" not in parsed

    def test_extras_override(self):
        lines = build_swf_header([record()], extra={"Note": "synthetic", "Version": "9.9"})
        parsed = parse_swf_header(lines)
        assert parsed["Note"] == "synthetic"
        assert parsed["Version"] == "9.9"

    def test_standard_order(self):
        lines = build_swf_header([record()])
        keys = [parse_swf_header([l]).popitem()[0] for l in lines]
        assert keys.index("Version") < keys.index("MaxJobs") < keys.index("UnixStartTime")

    def test_unknown_procs_ignored_for_maxprocs(self):
        lines = build_swf_header([record(procs=-1)])
        assert "MaxProcs" not in parse_swf_header(lines)


class TestParseHeader:
    def test_skips_malformed(self):
        parsed = parse_swf_header(["; just a note", "; Key: Value"])
        assert parsed == {"Key": "Value"}

    def test_last_duplicate_wins(self):
        parsed = parse_swf_header(["; K: a", "; K: b"])
        assert parsed["K"] == "b"

    def test_colons_in_value(self):
        parsed = parse_swf_header(["; TimeZoneString: UTC+01:00"])
        assert parsed["TimeZoneString"] == "UTC+01:00"


class TestFileRoundTrip:
    def test_header_survives_write_read(self, tmp_path):
        records = [record(), record(job=2, submit=60)]
        header = build_swf_header(records)
        path = tmp_path / "trace.swf"
        write_swf(records, path, comments=header)
        comments, loaded = read_swf(path)
        parsed = parse_swf_header(comments)
        assert parsed["MaxJobs"] == "2"
        assert loaded == records
