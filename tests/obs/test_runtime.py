"""Unit tests for the observability runtime (bundle + process default)."""

import io

from repro import obs
from repro.obs.registry import MetricsRegistry
from repro.obs.runtime import (
    NULL_OBS,
    Observability,
    get_observability,
    observed,
    set_observability,
)
from repro.obs.tracer import NULL_TRACER


class TestBundle:
    def test_defaults(self):
        bundle = Observability()
        assert bundle.enabled is True
        assert bundle.tracer is NULL_TRACER
        assert isinstance(bundle.registry, MetricsRegistry)

    def test_disabled(self):
        bundle = Observability.disabled()
        assert bundle.enabled is False

    def test_snapshot_delegates_to_registry(self):
        bundle = Observability()
        bundle.registry.counter("x").inc(2)
        assert bundle.snapshot()["counters"]["x"] == 2


class TestProcessDefault:
    def test_default_is_null_obs(self):
        assert get_observability() is NULL_OBS

    def test_set_returns_previous_and_none_restores(self):
        bundle = Observability()
        previous = set_observability(bundle)
        try:
            assert previous is NULL_OBS
            assert get_observability() is bundle
        finally:
            set_observability(None)
        assert get_observability() is NULL_OBS

    def test_observed_installs_and_restores(self):
        with observed() as bundle:
            assert get_observability() is bundle
            assert bundle.enabled is True
        assert get_observability() is NULL_OBS

    def test_observed_builds_tracer_from_sink(self):
        sink = io.StringIO()
        with observed(trace_sink=sink, deterministic=True) as bundle:
            with bundle.tracer.span("a"):
                pass
        assert sink.getvalue().count("\n") == 2

    def test_observed_restores_on_exception(self):
        try:
            with observed():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert get_observability() is NULL_OBS

    def test_module_level_snapshot_reads_current_default(self):
        registry = MetricsRegistry()
        registry.counter("x").inc(7)
        with observed(registry=registry):
            assert obs.snapshot()["counters"]["x"] == 7
