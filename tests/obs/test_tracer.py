"""Unit tests for the JSONL span tracer."""

import io
import json

from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer


def events_of(sink: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in sink.getvalue().splitlines()]


class TestEventSchema:
    def test_every_event_carries_the_required_fields(self):
        sink = io.StringIO()
        tracer = Tracer(sink, deterministic=True)
        with tracer.span("outer", t_sim=10.0, a=1):
            tracer.point("tick", t_sim=11.0)
            with tracer.span("inner"):
                pass
        for event in events_of(sink):
            assert {"event", "span_id", "parent_id", "name", "t_wall", "t_sim",
                    "attrs"} <= event.keys()

    def test_open_close_pair_and_nesting(self):
        sink = io.StringIO()
        tracer = Tracer(sink, deterministic=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer_open, inner_open, inner_close, outer_close = events_of(sink)
        assert outer_open["event"] == "open" and outer_open["parent_id"] is None
        assert inner_open["parent_id"] == outer_open["span_id"]
        assert inner_close["span_id"] == inner_open["span_id"]
        assert outer_close["event"] == "close"

    def test_point_inherits_current_span(self):
        sink = io.StringIO()
        tracer = Tracer(sink, deterministic=True)
        with tracer.span("outer"):
            tracer.point("tick")
        point = events_of(sink)[1]
        assert point["event"] == "point"
        assert point["parent_id"] == events_of(sink)[0]["span_id"]


class TestClocks:
    def test_deterministic_clock_counts_events(self):
        sink = io.StringIO()
        tracer = Tracer(sink, deterministic=True)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [event["t_wall"] for event in events_of(sink)] == [0.0, 1.0, 2.0, 3.0]

    def test_wall_clock_rebases_to_first_event(self):
        readings = iter([100.0, 100.5, 101.25])
        sink = io.StringIO()
        tracer = Tracer(sink, clock=lambda: next(readings))
        with tracer.span("a"):
            tracer.point("p")
        walls = [event["t_wall"] for event in events_of(sink)]
        assert walls == [0.0, 0.5, 1.25]

    def test_t_sim_passed_through_and_null_by_default(self):
        sink = io.StringIO()
        tracer = Tracer(sink, deterministic=True)
        span = tracer.start("a", t_sim=42.0)
        span.end(t_sim=99.0)
        tracer.point("p")
        open_event, close_event, point_event = events_of(sink)
        assert open_event["t_sim"] == 42.0
        assert close_event["t_sim"] == 99.0
        assert point_event["t_sim"] is None


class TestDetachedSpans:
    def test_detached_spans_overlap_without_corrupting_the_stack(self):
        sink = io.StringIO()
        tracer = Tracer(sink, deterministic=True)
        with tracer.span("run"):
            job_a = tracer.start("job", detached=True, job_id=1)
            job_b = tracer.start("job", detached=True, job_id=2)
            job_a.end()
            with tracer.span("inner"):
                pass
            job_b.end()
        events = events_of(sink)
        run_id = events[0]["span_id"]
        inner_open = [e for e in events if e["name"] == "inner"][0]
        assert inner_open["parent_id"] == run_id  # jobs never became current
        job_opens = [e for e in events if e["name"] == "job" and e["event"] == "open"]
        assert all(e["parent_id"] == run_id for e in job_opens)

    def test_double_end_is_idempotent(self):
        sink = io.StringIO()
        tracer = Tracer(sink, deterministic=True)
        span = tracer.start("a")
        span.end()
        span.end()
        assert len(events_of(sink)) == 2


class TestDeterminism:
    def test_equal_sequences_give_byte_identical_traces(self):
        def run():
            sink = io.StringIO()
            tracer = Tracer(sink, deterministic=True)
            with tracer.span("outer", n=3):
                for i in range(3):
                    with tracer.span("step", t_sim=float(i), i=i):
                        pass
            return sink.getvalue()

        assert run() == run()


class TestLifecycle:
    def test_to_path_writes_and_closes(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer.to_path(str(path), deterministic=True)
        with tracer.span("a"):
            pass
        tracer.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        json.loads(lines[0])

    def test_n_events(self):
        tracer = Tracer(io.StringIO(), deterministic=True)
        assert tracer.n_events == 0
        with tracer.span("a"):
            pass
        assert tracer.n_events == 2


class TestNullTracer:
    def test_shared_instance_is_disabled(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)

    def test_all_operations_are_no_ops(self):
        span = NULL_TRACER.start("a", t_sim=1.0, detached=True, k="v")
        span.end(outcome="ok")
        with NULL_TRACER.span("b"):
            NULL_TRACER.point("c")
        NULL_TRACER.close()
        assert NULL_TRACER.n_events == 0
