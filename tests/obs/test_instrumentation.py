"""Integration tests: the instrumented stack under an enabled bundle.

The headline guarantees:

* two equal-seed ``run_evaluation`` runs produce *identical* metrics
  snapshots (and byte-identical deterministic traces),
* every trace event parses as JSON and carries span_id / t_wall / t_sim,
* the disabled (default) path records nothing and stays cheap.
"""

import io
import json
import time

import pytest

from repro.core.allocator import ProactiveAllocator, ServerState, VMRequest
from repro.experiments.config import SMALLER
from repro.experiments.evaluation import run_evaluation
from repro.obs.registry import MetricsRegistry
from repro.obs.runtime import NULL_OBS, Observability, get_observability, observed
from repro.obs.tracer import Tracer
from repro.testbed.benchmarks import WorkloadClass


def requests(n=5):
    return [VMRequest(f"vm{i}", WorkloadClass.CPU) for i in range(n)]


def servers(n=3):
    return [ServerState(f"s{i}") for i in range(n)]


class TestAllocatorInstrumentation:
    def test_counters_and_spans_recorded(self, database):
        sink = io.StringIO()
        with observed(trace_sink=sink, deterministic=True) as bundle:
            plan = ProactiveAllocator(database, alpha=0.5).allocate(
                requests(), servers()
            )
        counters = bundle.snapshot()["counters"]
        assert counters["allocator.calls"] == 1
        provenance = plan.search_provenance
        assert counters["allocator.partitions_enumerated"] == (
            provenance.partitions_enumerated
        )
        assert counters["allocator.grid_hits"] == provenance.grid_hits
        events = [json.loads(line) for line in sink.getvalue().splitlines()]
        names = [event["name"] for event in events]
        assert names == ["allocator.allocate", "allocator.allocate"]
        assert events[1]["attrs"]["outcome"] == "ok"

    def test_explicit_bundle_overrides_default(self, database):
        bundle = Observability()
        allocator = ProactiveAllocator(database, obs=bundle)
        allocator.allocate(requests(), servers())
        assert bundle.registry.counter("allocator.calls").value == 1
        assert get_observability() is NULL_OBS

    def test_disabled_default_records_nothing(self, database):
        before = len(NULL_OBS.registry)
        ProactiveAllocator(database).allocate(requests(), servers())
        assert len(NULL_OBS.registry) == before

    def test_failed_allocation_counted_and_span_closed(self, database):
        from repro.common.errors import AllocationError

        sink = io.StringIO()
        osc, osm, osi = database.grid_bounds
        full = [ServerState("s0", allocated=(osc, osm, osi))]
        with observed(trace_sink=sink, deterministic=True) as bundle:
            with pytest.raises(AllocationError):
                ProactiveAllocator(database).allocate(requests(1), full)
        counters = bundle.snapshot()["counters"]
        (error_key,) = [key for key in counters if key.startswith("allocator.errors")]
        assert counters[error_key] == 1
        events = [json.loads(line) for line in sink.getvalue().splitlines()]
        assert events[-1]["event"] == "close"


class TestEvaluationDeterminism:
    @pytest.fixture(scope="class")
    def tiny_config(self):
        return SMALLER.scaled(60)

    def run_once(self, campaign, config):
        sink = io.StringIO()
        with observed(trace_sink=sink, deterministic=True) as bundle:
            run_evaluation(configs=[config], campaign=campaign)
            snapshot = bundle.snapshot()
        return snapshot, sink.getvalue()

    def test_equal_seed_runs_snapshot_identically(self, campaign, tiny_config):
        first_snapshot, first_trace = self.run_once(campaign, tiny_config)
        second_snapshot, second_trace = self.run_once(campaign, tiny_config)
        assert json.dumps(first_snapshot, sort_keys=True) == json.dumps(
            second_snapshot, sort_keys=True
        )
        assert first_trace == second_trace

    def test_trace_schema(self, campaign, tiny_config):
        _, trace = self.run_once(campaign, tiny_config)
        lines = trace.splitlines()
        assert lines
        for line in lines:
            event = json.loads(line)
            assert {"event", "span_id", "name", "t_wall", "t_sim"} <= event.keys()
            assert event["event"] in ("open", "close", "point")
        names = {json.loads(line)["name"] for line in lines}
        assert {"eval.prepare_workload", "eval.cell", "sim.run", "sim.job",
                "allocator.allocate"} <= names

    def test_expected_metric_families_present(self, campaign, tiny_config):
        snapshot, _ = self.run_once(campaign, tiny_config)
        counters = snapshot["counters"]
        assert counters["eval.cells"] > 0
        assert any(key.startswith("sim.vms_placed") for key in counters)
        assert any(key.startswith("strategy.plans") for key in counters)
        assert any(key.startswith("sim.queue_depth") for key in snapshot["gauges"])
        histograms = snapshot["histograms"]
        volatile = [
            key for key in histograms if key.startswith("eval.cell_wall_s")
        ]
        assert volatile
        # Wall-clock-valued series must not leak timings into the snapshot.
        assert all("sum" not in histograms[key] for key in volatile)


class TestDisabledOverhead:
    def test_noop_path_stays_cheap(self, database):
        """Loose guard: the disabled predicate must not meaningfully slow
        ``allocate`` (the strict 5% gate runs in the perf bench)."""
        allocator = ProactiveAllocator(database, alpha=0.5)
        reqs, srvs = requests(5), servers(3)
        allocator.allocate(reqs, srvs)  # warm caches

        def best_of(runs=5, repeat=3):
            best = float("inf")
            for _ in range(runs):
                start = time.perf_counter()
                for _ in range(repeat):
                    allocator.allocate(reqs, srvs)
                best = min(best, time.perf_counter() - start)
            return best

        baseline = best_of()
        with observed(trace_sink=io.StringIO()):
            enabled = best_of()
        # Generous anti-flake bound; the point is catching accidental
        # always-on tracing, not micro-benchmarking in CI.
        assert baseline < enabled * 3 + 0.05
        assert enabled < baseline * 3 + 0.05
