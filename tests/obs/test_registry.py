"""Unit tests for the metrics registry."""

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.obs.registry import DEFAULT_BUCKETS, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("calls")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("calls")
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_same_name_and_labels_share_an_instrument(self):
        registry = MetricsRegistry()
        registry.counter("calls", kind="a").inc()
        registry.counter("calls", kind="a").inc()
        assert registry.counter("calls", kind="a").value == 2

    def test_different_labels_are_distinct(self):
        registry = MetricsRegistry()
        registry.counter("calls", kind="a").inc()
        assert registry.counter("calls", kind="b").value == 0


class TestGauge:
    def test_tracks_value_and_extrema(self):
        gauge = MetricsRegistry().gauge("queue")
        gauge.set(3)
        gauge.set(7)
        gauge.set(1)
        assert gauge.value == 1
        assert gauge.max == 7
        assert gauge.min == 1
        assert gauge.updates == 3


class TestHistogram:
    def test_observations_land_in_buckets(self):
        histogram = MetricsRegistry().histogram("lat", buckets=(1.0, 10.0))
        for value in (0.5, 0.7, 5.0, 100.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.bucket_counts == [2, 1, 1]
        assert histogram.min == 0.5
        assert histogram.max == 100.0
        assert histogram.mean == pytest.approx(106.2 / 4)

    def test_default_buckets_used(self):
        histogram = MetricsRegistry().histogram("lat")
        assert histogram.buckets == tuple(sorted(DEFAULT_BUCKETS))

    def test_empty_bucket_list_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().histogram("lat", buckets=())


class TestTypeSafety:
    def test_type_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.gauge("x")


class TestSnapshot:
    def test_keys_render_prometheus_style(self):
        registry = MetricsRegistry()
        registry.counter("sim.jobs_placed", strategy="PA-0.5").inc(3)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {'sim.jobs_placed{strategy="PA-0.5"}': 3}

    def test_labels_sorted_within_key(self):
        registry = MetricsRegistry()
        registry.counter("c", b="2", a="1").inc()
        assert list(registry.snapshot()["counters"]) == ['c{a="1",b="2"}']

    def test_snapshot_is_json_serializable_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("z").inc()
        registry.counter("a").inc()
        registry.gauge("g").set(2)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        json.dumps(snapshot)
        assert list(snapshot["counters"]) == ["a", "z"]

    def test_volatile_histogram_hides_wall_clock_stats(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", volatile=True, buckets=(1.0,))
        histogram.observe(0.123)
        entry = registry.snapshot()["histograms"]["lat"]
        assert entry["count"] == 1
        assert entry["volatile"] is True
        assert "sum" not in entry and "buckets" not in entry
        full = registry.snapshot(include_volatile=True)["histograms"]["lat"]
        assert full["sum"] == pytest.approx(0.123)

    def test_equal_recordings_give_equal_snapshots(self):
        def record(registry):
            registry.counter("calls", kind="a").inc(2)
            registry.gauge("depth").set(4)
            registry.histogram("wait", buckets=(1.0, 5.0)).observe(3.0)

        first, second = MetricsRegistry(), MetricsRegistry()
        record(first)
        record(second)
        assert json.dumps(first.snapshot(), sort_keys=True) == json.dumps(
            second.snapshot(), sort_keys=True
        )


class TestHelpers:
    def test_counter_values_filters_by_prefix(self):
        registry = MetricsRegistry()
        registry.counter("allocator.calls").inc(2)
        registry.counter("sim.jobs").inc(5)
        assert registry.counter_values("allocator.") == {"allocator.calls": 2}

    def test_merge_counts_prefixes_and_accumulates(self):
        registry = MetricsRegistry()
        registry.merge_counts({"hits": 3, "misses": 1}, prefix="cache.")
        registry.merge_counts({"hits": 2}, prefix="cache.")
        assert registry.counter("cache.hits").value == 5
        assert registry.counter("cache.misses").value == 1

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        assert len(registry) == 1
        registry.reset()
        assert len(registry) == 0
        assert registry.counter("x").value == 0
