"""Unit tests for the exception hierarchy."""

import pytest

from repro.common.errors import (
    AllocationError,
    ConfigurationError,
    InfeasibleAllocationError,
    ModelLookupError,
    QoSViolationError,
    ReproError,
    SimulationError,
    TraceFormatError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            AllocationError,
            InfeasibleAllocationError,
            QoSViolationError,
            TraceFormatError,
            SimulationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_allocation_family(self):
        assert issubclass(InfeasibleAllocationError, AllocationError)
        assert issubclass(QoSViolationError, AllocationError)


class TestModelLookupError:
    def test_is_a_key_error(self):
        assert issubclass(ModelLookupError, KeyError)

    def test_carries_key(self):
        err = ModelLookupError((1, 2, 3))
        assert err.key == (1, 2, 3)
        assert "(1, 2, 3)" in str(err)

    def test_custom_message(self):
        err = ModelLookupError((0, 0, 1), "boom")
        assert str(err) == "boom"

    def test_catchable_as_key_error(self):
        with pytest.raises(KeyError):
            raise ModelLookupError((1, 1, 1))


class TestTraceFormatError:
    def test_line_number_in_message(self):
        err = TraceFormatError("bad field", line_number=42)
        assert "line 42" in str(err)
        assert err.line_number == 42

    def test_without_line_number(self):
        err = TraceFormatError("bad header")
        assert str(err) == "bad header"
        assert err.line_number is None
