"""Unit tests for repro.common.quantities."""

import pytest

from repro.common.quantities import (
    Joules,
    Seconds,
    Watts,
    energy_delay_product,
    integrate_power_samples,
    kilojoules,
    watt_hours,
)


class TestUnitTypes:
    def test_seconds_is_a_float(self):
        assert Seconds(3.5) == 3.5
        assert isinstance(Seconds(3.5), float)

    def test_arithmetic_decays_to_float(self):
        ratio = Seconds(10.0) / Seconds(5.0)
        assert ratio == 2.0

    def test_reprs_carry_units(self):
        assert repr(Seconds(1.5)) == "1.5s"
        assert repr(Joules(2.0)) == "2J"
        assert repr(Watts(125.0)) == "125W"


class TestConversions:
    def test_watt_hours(self):
        assert watt_hours(3600.0) == 1.0

    def test_kilojoules(self):
        assert kilojoules(14250.0) == 14.25


class TestEnergyDelayProduct:
    def test_basic(self):
        assert energy_delay_product(10.0, 5.0) == 50.0

    def test_zero_allowed(self):
        assert energy_delay_product(0.0, 5.0) == 0.0

    @pytest.mark.parametrize("energy,time", [(-1.0, 5.0), (5.0, -1.0)])
    def test_negative_rejected(self, energy, time):
        with pytest.raises(ValueError):
            energy_delay_product(energy, time)


class TestIntegratePowerSamples:
    def test_empty(self):
        assert integrate_power_samples([]) == 0.0

    def test_single_sample_counts_one_period(self):
        assert integrate_power_samples([100.0], period_s=2.0) == 200.0

    def test_constant_power_trapezoid(self):
        # 3 samples at 1 Hz span 2 seconds at constant 50 W -> 100 J.
        assert integrate_power_samples([50.0, 50.0, 50.0]) == pytest.approx(100.0)

    def test_ramp(self):
        # 0 -> 100 W over one period: trapezoid gives 50 J.
        assert integrate_power_samples([0.0, 100.0]) == pytest.approx(50.0)

    def test_period_scales_energy(self):
        base = integrate_power_samples([10.0, 30.0], period_s=1.0)
        double = integrate_power_samples([10.0, 30.0], period_s=2.0)
        assert double == pytest.approx(2 * base)

    def test_bad_period_rejected(self):
        with pytest.raises(ValueError):
            integrate_power_samples([1.0], period_s=0.0)
