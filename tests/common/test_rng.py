"""Unit tests for repro.common.rng."""

import numpy as np
import pytest

from repro.common.rng import DEFAULT_SEED, SeedSequenceFactory, derive_rng


class TestDeriveRng:
    def test_none_is_deterministic_default(self):
        a = derive_rng(None).random()
        b = derive_rng(None).random()
        assert a == b  # None maps to a fixed seed, NOT OS entropy

    def test_int_seed(self):
        assert derive_rng(7).random() == derive_rng(7).random()

    def test_distinct_seeds_distinct_streams(self):
        assert derive_rng(1).random() != derive_rng(2).random()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(3)
        assert derive_rng(gen) is gen

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            derive_rng(-1)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            derive_rng("seed")  # type: ignore[arg-type]

    def test_numpy_integer_accepted(self):
        seed = np.int64(11)
        assert derive_rng(seed).random() == derive_rng(11).random()


class TestSeedSequenceFactory:
    def test_children_differ_by_label(self):
        factory = SeedSequenceFactory(99)
        assert factory.child("a").random() != factory.child("b").random()

    def test_same_label_same_stream(self):
        assert (
            SeedSequenceFactory(99).child("x").random()
            == SeedSequenceFactory(99).child("x").random()
        )

    def test_different_roots_differ(self):
        assert (
            SeedSequenceFactory(1).child("x").random()
            != SeedSequenceFactory(2).child("x").random()
        )

    def test_child_seed_stable(self):
        assert (
            SeedSequenceFactory(5).child_seed("trace")
            == SeedSequenceFactory(5).child_seed("trace")
        )

    def test_empty_label_rejected(self):
        with pytest.raises(ValueError):
            SeedSequenceFactory(1).child("")

    def test_negative_root_rejected(self):
        with pytest.raises(ValueError):
            SeedSequenceFactory(-2)

    def test_default_seed_exposed(self):
        assert SeedSequenceFactory().root_seed == DEFAULT_SEED
