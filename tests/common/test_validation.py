"""Unit tests for repro.common.validation."""

import pytest

from repro.common.validation import (
    check_fraction,
    check_non_negative,
    check_non_negative_int,
    check_nonempty,
    check_positive,
    check_positive_int,
    check_sorted,
    parse_alpha,
    parse_count,
    parse_format,
    parse_jobs,
    parse_port,
    parse_time_budget,
    typed_flag,
)


class TestScalarCheckers:
    def test_positive_accepts(self):
        assert check_positive("x", 1.5) == 1.5

    def test_positive_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0.0)

    def test_non_negative_accepts_zero(self):
        assert check_non_negative("x", 0.0) == 0.0

    def test_non_negative_rejects(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -0.1)

    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_fraction_accepts(self, value):
        assert check_fraction("alpha", value) == value

    @pytest.mark.parametrize("value", [-0.01, 1.01])
    def test_fraction_rejects(self, value):
        with pytest.raises(ValueError, match="alpha"):
            check_fraction("alpha", value)


class TestIntCheckers:
    def test_positive_int(self):
        assert check_positive_int("n", 3) == 3

    def test_positive_int_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int("n", 0)

    def test_positive_int_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int("n", True)

    def test_positive_int_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int("n", 3.0)  # type: ignore[arg-type]

    def test_non_negative_int_accepts_zero(self):
        assert check_non_negative_int("n", 0) == 0


class TestSharedParsers:
    """The single validation path behind CLI flags and service bodies.

    Each ``parse_*`` accepts both the CLI's string form and the
    service's decoded-JSON form, and its ``ValueError`` message is the
    one text both surfaces show (exit 2 vs HTTP 400) -- parity with a
    live server is pinned in ``tests/service/test_server.py``.
    """

    @pytest.mark.parametrize("value", ["0.5", 0.5, 1, "1"])
    def test_alpha_accepts_strings_and_numbers(self, value):
        assert parse_alpha(value) == float(value)

    @pytest.mark.parametrize("value", ["-0.1", 1.5, "two", None])
    def test_alpha_rejects_with_named_message(self, value):
        with pytest.raises(ValueError, match="alpha must be"):
            parse_alpha(value)

    @pytest.mark.parametrize("value", ["0", 0, -2, "1.5", "four", None])
    def test_jobs_rejects(self, value):
        with pytest.raises(ValueError, match="jobs must be an integer >= 1"):
            parse_jobs(value)

    def test_format_normalizes_case(self):
        assert parse_format(" JSON ") == "json"
        with pytest.raises(ValueError, match="format must be one of"):
            parse_format("yaml")

    @pytest.mark.parametrize("value", ["0", -1.5, "nan", "inf", "soon", None])
    def test_time_budget_rejects(self, value):
        with pytest.raises(ValueError, match="time-budget must be"):
            parse_time_budget(value)

    @pytest.mark.parametrize("value", [0, "0", 8765, "65535"])
    def test_port_accepts(self, value):
        assert parse_port(value) == int(value)

    @pytest.mark.parametrize("value", [-1, 65536, "http", None])
    def test_port_rejects(self, value):
        with pytest.raises(ValueError, match=r"port must be an integer in \[0, 65535\]"):
            parse_port(value)

    def test_count_rejects_floats_and_bools(self):
        assert parse_count("n_servers", 4) == 4
        for bad in (2.5, True, 0, "4"):
            with pytest.raises(ValueError, match="n_servers must be an integer >= 1"):
                parse_count("n_servers", bad)

    def test_typed_flag_converts_to_argparse_error(self):
        import argparse

        typed = typed_flag(parse_alpha)
        assert typed("0.5") == 0.5
        with pytest.raises(argparse.ArgumentTypeError) as excinfo:
            typed("1.5")
        # Identical text to the bare parser: the CLI and the service
        # reject the same value with the same message.
        with pytest.raises(ValueError) as bare:
            parse_alpha("1.5")
        assert str(excinfo.value) == str(bare.value)


class TestSequenceCheckers:
    def test_nonempty_passes_through(self):
        assert check_nonempty("xs", [1]) == [1]

    def test_nonempty_rejects(self):
        with pytest.raises(ValueError, match="xs"):
            check_nonempty("xs", [])

    def test_sorted_ok(self):
        check_sorted("xs", [1.0, 1.0, 2.0])

    def test_sorted_rejects(self):
        with pytest.raises(ValueError, match="index 2"):
            check_sorted("xs", [1.0, 3.0, 2.0])
