"""Unit tests for repro.common.validation."""

import pytest

from repro.common.validation import (
    check_fraction,
    check_non_negative,
    check_non_negative_int,
    check_nonempty,
    check_positive,
    check_positive_int,
    check_sorted,
)


class TestScalarCheckers:
    def test_positive_accepts(self):
        assert check_positive("x", 1.5) == 1.5

    def test_positive_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0.0)

    def test_non_negative_accepts_zero(self):
        assert check_non_negative("x", 0.0) == 0.0

    def test_non_negative_rejects(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -0.1)

    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_fraction_accepts(self, value):
        assert check_fraction("alpha", value) == value

    @pytest.mark.parametrize("value", [-0.01, 1.01])
    def test_fraction_rejects(self, value):
        with pytest.raises(ValueError, match="alpha"):
            check_fraction("alpha", value)


class TestIntCheckers:
    def test_positive_int(self):
        assert check_positive_int("n", 3) == 3

    def test_positive_int_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int("n", 0)

    def test_positive_int_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int("n", True)

    def test_positive_int_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int("n", 3.0)  # type: ignore[arg-type]

    def test_non_negative_int_accepts_zero(self):
        assert check_non_negative_int("n", 0) == 0


class TestSequenceCheckers:
    def test_nonempty_passes_through(self):
        assert check_nonempty("xs", [1]) == [1]

    def test_nonempty_rejects(self):
        with pytest.raises(ValueError, match="xs"):
            check_nonempty("xs", [])

    def test_sorted_ok(self):
        check_sorted("xs", [1.0, 1.0, 2.0])

    def test_sorted_rejects(self):
        with pytest.raises(ValueError, match="index 2"):
            check_sorted("xs", [1.0, 3.0, 2.0])
