"""Tests for the top-level package API."""

import subprocess
import sys

import pytest

import repro
from repro import ModelDatabase, ProactiveAllocator, ServerState, VMRequest, build_model


class TestTopLevelAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_build_model_one_liner(self):
        database = build_model()
        assert isinstance(database, ModelDatabase)
        assert len(database) > 0

    def test_docstring_example(self):
        database = build_model()
        plan = ProactiveAllocator(database, alpha=1.0).allocate(
            [VMRequest("vm0", "cpu"), VMRequest("vm1", "cpu")],
            [ServerState("rack-0")],
        )
        assert plan.n_vms == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_module_entry_point(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0
        assert "allocate" in result.stdout


class TestSubpackageImports:
    @pytest.mark.parametrize(
        "module",
        [
            "repro.common",
            "repro.testbed",
            "repro.profiling",
            "repro.campaign",
            "repro.core",
            "repro.workloads",
            "repro.sim",
            "repro.strategies",
            "repro.experiments",
            "repro.ext.thermal",
            "repro.ext.hetero",
            "repro.ext.learning",
            "repro.ext.migration",
        ],
    )
    def test_imports_cleanly(self, module):
        __import__(module)

    def test_no_import_cycles_at_package_root(self):
        # A fresh interpreter must import the root without the heavy
        # subpackages being pulled in transitively going sideways.
        result = subprocess.run(
            [sys.executable, "-c", "import repro; print('ok')"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.stdout.strip() == "ok"
