"""Tests for the top-level package API."""

import subprocess
import sys

import pytest

import repro
from repro import ModelDatabase, ProactiveAllocator, ServerState, VMRequest, build_model


class TestTopLevelAPI:
    def test_version(self):
        assert repro.__version__ == "1.7.0"

    def test_build_model_one_liner(self):
        database = build_model()
        assert isinstance(database, ModelDatabase)
        assert len(database) > 0

    def test_docstring_example(self):
        database = build_model()
        plan = ProactiveAllocator(database, alpha=1.0).allocate(
            [VMRequest("vm0", "cpu"), VMRequest("vm1", "cpu")],
            [ServerState("rack-0")],
        )
        assert plan.n_vms == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_module_entry_point(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0
        assert "allocate" in result.stdout


class TestStableFacade:
    def test_every_name_in_all_resolves(self):
        from repro import api

        for name in api.__all__:
            assert getattr(api, name) is not None, name

    def test_no_extra_public_names(self):
        """The facade exports exactly what __all__ declares."""
        from repro import api

        public = {
            name
            for name in dir(api)
            if not name.startswith("_") and not name.startswith("repro")
        }
        declared = set(api.__all__)
        # Imported-but-undeclared helpers are allowed only if they are
        # modules; anything else must be declared.
        undeclared = {
            name
            for name in public - declared
            if not type(getattr(api, name)).__name__ == "module"
        }
        assert undeclared == set()

    def test_core_workflow_through_facade_only(self):
        from repro import api

        database = api.build_model()
        plan = api.ProactiveAllocator(database, alpha=0.5).allocate(
            [api.VMRequest("vm0", api.WorkloadClass.CPU)],
            [api.ServerState("rack-0")],
        )
        assert plan.n_vms == 1
        assert isinstance(plan, api.AllocationPlan)

    def test_service_exports_are_the_service_layer(self):
        # Exercised by name on purpose: the api-dead-export audit
        # requires every facade export to be referenced somewhere in
        # the linted tests, and `serve`/`Service` are otherwise only
        # reached through BackgroundService.
        from repro import api
        from repro.service import Service, serve

        assert api.Service is Service
        assert api.serve is serve
        assert callable(api.BackgroundService)

    def test_observability_exports(self):
        from repro import api

        registry = api.MetricsRegistry()
        registry.counter("x").inc()
        with api.observed(registry=registry) as bundle:
            assert api.get_observability() is bundle
            assert api.snapshot()["counters"]["x"] == 1


class TestDeprecationShims:
    """The deprecated provenance accessors warn with pinned text.

    The wording is part of the 1.x contract: downstream code filtering
    on the message (or reading the migration hint from a log) must not
    see it drift between minor releases.  Changing either string is an
    API change and belongs in a major version.
    """

    PLAN_TEXT = (
        "AllocationPlan.provenance is deprecated and will be removed "
        "in 2.0; read AllocationPlan.search_provenance (or the "
        "repro.obs metrics registry) instead"
    )
    STRATEGY_TEXT = (
        "ProactiveStrategy.last_provenance is deprecated and will be "
        "removed in 2.0; read last_plan.search_provenance (per plan) "
        "or the repro.obs metrics registry (totals) instead"
    )

    def test_plan_provenance_warning_text(self):
        from repro import api

        database = api.build_model()
        plan = api.ProactiveAllocator(database, alpha=0.5).allocate(
            [api.VMRequest("vm0", api.WorkloadClass.CPU)],
            [api.ServerState("s0")],
        )
        with pytest.warns(DeprecationWarning) as caught:
            provenance = plan.provenance
        assert provenance == plan.search_provenance
        assert str(caught.list[0].message) == self.PLAN_TEXT

    def test_strategy_last_provenance_warning_text(self):
        from repro import api
        from repro.strategies.proactive import ProactiveStrategy

        strategy = ProactiveStrategy(api.build_model(), alpha=0.5)
        with pytest.warns(DeprecationWarning) as caught:
            assert strategy.last_provenance is None
        assert str(caught.list[0].message) == self.STRATEGY_TEXT


class TestSubpackageImports:
    @pytest.mark.parametrize(
        "module",
        [
            "repro.common",
            "repro.obs",
            "repro.testbed",
            "repro.profiling",
            "repro.campaign",
            "repro.core",
            "repro.workloads",
            "repro.sim",
            "repro.strategies",
            "repro.experiments",
            "repro.service",
            "repro.ext.thermal",
            "repro.ext.hetero",
            "repro.ext.learning",
            "repro.ext.migration",
        ],
    )
    def test_imports_cleanly(self, module):
        __import__(module)

    def test_no_import_cycles_at_package_root(self):
        # A fresh interpreter must import the root without the heavy
        # subpackages being pulled in transitively going sideways.
        result = subprocess.run(
            [sys.executable, "-c", "import repro; print('ok')"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.stdout.strip() == "ok"
