"""Unit tests for the declarative fault-spec layer.

Validation must fail at parse time with actionable messages (the CLI
turns :class:`FaultSpecError` into an exit-2 usage error), and
materialization must be a pure function of ``(spec, n_servers)``.
"""

import json

import pytest

from repro.common.errors import FaultSpecError
from repro.faults import (
    FaultAction,
    FaultEvent,
    FaultKind,
    FaultSpec,
    RandomFaults,
    WorkerFaultPlan,
    materialize,
    random_crash_spec,
)


def crash(t=10.0, server=0):
    return FaultEvent(kind=FaultKind.SERVER_CRASH, time_s=t, server=server)


class TestFaultEventValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(FaultSpecError, match="time_s must be >= 0"):
            FaultEvent(kind=FaultKind.SERVER_CRASH, time_s=-1.0, server=0)

    @pytest.mark.parametrize(
        "kind",
        [FaultKind.SERVER_CRASH, FaultKind.SERVER_RECOVER, FaultKind.SLOWDOWN],
    )
    def test_server_kinds_require_server(self, kind):
        with pytest.raises(FaultSpecError, match="'server' must be a server index"):
            FaultEvent(kind=kind, time_s=1.0, duration_s=5.0)

    def test_negative_server_rejected(self):
        with pytest.raises(FaultSpecError, match="server index >= 0"):
            FaultEvent(kind=FaultKind.SERVER_CRASH, time_s=1.0, server=-2)

    def test_abort_requires_vm(self):
        with pytest.raises(FaultSpecError, match="'vm' must name the VM"):
            FaultEvent(kind=FaultKind.VM_ABORT, time_s=1.0)

    def test_slowdown_requires_positive_duration(self):
        with pytest.raises(FaultSpecError, match="duration_s must be > 0"):
            FaultEvent(kind=FaultKind.SLOWDOWN, time_s=1.0, server=0, factor=2.0)

    def test_slowdown_factor_below_one_rejected(self):
        with pytest.raises(FaultSpecError, match="factor must be >= 1"):
            FaultEvent(
                kind=FaultKind.SLOWDOWN, time_s=1.0, server=0, duration_s=5.0, factor=0.5
            )

    def test_worker_failure_requires_task(self):
        with pytest.raises(FaultSpecError, match="'task' must be a task index"):
            FaultEvent(kind=FaultKind.WORKER_FAILURE)

    def test_worker_failure_times_at_least_one(self):
        with pytest.raises(FaultSpecError, match="'times' must be >= 1"):
            FaultEvent(kind=FaultKind.WORKER_FAILURE, task=0, times=0)

    def test_kind_accepts_string_value(self):
        event = FaultEvent(kind="server_crash", time_s=1.0, server=0)
        assert event.kind is FaultKind.SERVER_CRASH


class TestRandomFaultsValidation:
    def test_negative_rate_rejected(self):
        with pytest.raises(FaultSpecError, match="crash_rate_per_1000s must be >= 0"):
            RandomFaults(crash_rate_per_1000s=-1.0)

    def test_inverted_window_rejected(self):
        with pytest.raises(FaultSpecError, match="window_t0_s < window_t1_s"):
            RandomFaults(crash_rate_per_1000s=1.0, window_t0_s=100.0, window_t1_s=50.0)

    def test_nonpositive_recovery_rejected(self):
        with pytest.raises(FaultSpecError, match="recover_after_s must be > 0"):
            RandomFaults(crash_rate_per_1000s=1.0, recover_after_s=0.0)


class TestFaultSpec:
    def test_empty_spec_is_empty(self):
        assert FaultSpec().is_empty()

    def test_zero_rate_random_is_empty(self):
        spec = FaultSpec(random=RandomFaults(crash_rate_per_1000s=0.0))
        assert spec.is_empty()

    def test_events_make_it_nonempty(self):
        assert not FaultSpec(events=(crash(),)).is_empty()

    def test_negative_seed_rejected(self):
        with pytest.raises(FaultSpecError, match="seed must be >= 0"):
            FaultSpec(seed=-1)

    def test_worker_failures_sum_per_task(self):
        spec = FaultSpec(
            events=(
                FaultEvent(kind=FaultKind.WORKER_FAILURE, task=3, times=2),
                FaultEvent(kind=FaultKind.WORKER_FAILURE, task=3, times=1),
                FaultEvent(kind=FaultKind.WORKER_FAILURE, task=0),
            )
        )
        assert dict(spec.worker_failures) == {3: 3, 0: 1}

    def test_sim_events_exclude_worker_failures(self):
        spec = FaultSpec(
            events=(crash(), FaultEvent(kind=FaultKind.WORKER_FAILURE, task=0))
        )
        assert [e.kind for e in spec.sim_events] == [FaultKind.SERVER_CRASH]


class TestFromDict:
    def test_round_trip(self):
        spec = FaultSpec(
            events=(
                crash(),
                FaultEvent(
                    kind=FaultKind.SLOWDOWN, time_s=5.0, server=1, duration_s=10.0, factor=2.0
                ),
                FaultEvent(kind=FaultKind.VM_ABORT, time_s=20.0, vm="j1-0"),
                FaultEvent(kind=FaultKind.WORKER_FAILURE, task=2, times=3),
            ),
            random=RandomFaults(crash_rate_per_1000s=1.5, recover_after_s=60.0),
            seed=7,
        )
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = random_crash_spec(seed=3, crash_rate_per_1000s=2.0)
        assert FaultSpec.from_json(json.dumps(spec.to_dict())) == spec

    def test_non_object_rejected(self):
        with pytest.raises(FaultSpecError, match="must be a JSON object"):
            FaultSpec.from_dict([1, 2, 3])

    def test_unknown_top_level_keys_rejected(self):
        with pytest.raises(FaultSpecError, match=r"unknown fault spec keys: \['evnts'\]"):
            FaultSpec.from_dict({"evnts": []})

    def test_unknown_kind_lists_valid_kinds(self):
        with pytest.raises(FaultSpecError, match="unknown fault kind 'meteor'"):
            FaultSpec.from_dict({"events": [{"kind": "meteor"}]})

    def test_unknown_event_keys_rejected(self):
        with pytest.raises(FaultSpecError, match=r"events\[0\]: unknown keys \['when'\]"):
            FaultSpec.from_dict(
                {"events": [{"kind": "server_crash", "server": 0, "when": 5}]}
            )

    def test_event_validation_errors_carry_index(self):
        with pytest.raises(FaultSpecError, match=r"events\[1\].*time_s must be >= 0"):
            FaultSpec.from_dict(
                {
                    "events": [
                        {"kind": "server_crash", "server": 0},
                        {"kind": "server_crash", "server": 0, "time_s": -5},
                    ]
                }
            )

    def test_event_must_be_an_object(self):
        with pytest.raises(FaultSpecError, match=r"events\[0\] must be an object"):
            FaultSpec.from_dict({"events": [5]})

    def test_uncoercible_field_reported_as_bad_value(self):
        with pytest.raises(FaultSpecError, match=r"events\[0\]: bad field value"):
            FaultSpec.from_dict(
                {"events": [{"kind": "server_crash", "server": 0, "time_s": "soon"}]}
            )

    def test_random_must_be_an_object(self):
        with pytest.raises(FaultSpecError, match="'random' must be an object"):
            FaultSpec.from_dict({"random": "often"})

    def test_events_must_be_a_list(self):
        with pytest.raises(FaultSpecError, match="'events' must be a list"):
            FaultSpec.from_dict({"events": "server_crash"})

    def test_bool_seed_rejected(self):
        with pytest.raises(FaultSpecError, match="seed must be an integer"):
            FaultSpec.from_dict({"seed": True})

    def test_random_requires_rate(self):
        with pytest.raises(FaultSpecError, match="'crash_rate_per_1000s' is required"):
            FaultSpec.from_dict({"random": {"window_t1_s": 100.0}})

    def test_random_unknown_keys_rejected(self):
        with pytest.raises(FaultSpecError, match=r"random: unknown keys \['rate'\]"):
            FaultSpec.from_dict({"random": {"rate": 1.0}})

    def test_invalid_json_rejected(self):
        with pytest.raises(FaultSpecError, match="not valid JSON"):
            FaultSpec.from_json("{not json")

    def test_missing_file_rejected(self):
        with pytest.raises(FaultSpecError, match="cannot read fault spec"):
            FaultSpec.from_path("/nonexistent/faults.json")

    def test_from_path_reads_file(self, tmp_path):
        path = tmp_path / "faults.json"
        path.write_text(json.dumps({"events": [crash().to_dict()]}))
        spec = FaultSpec.from_path(str(path))
        assert spec.events[0].kind is FaultKind.SERVER_CRASH


class TestWorkerFaultPlan:
    def test_empty_plan_is_falsy(self):
        assert not WorkerFaultPlan()

    def test_lookup(self):
        plan = WorkerFaultPlan(failures={2: 3})
        assert plan.failures_for(2) == 3
        assert plan.failures_for(0) == 0

    def test_bad_index_rejected(self):
        with pytest.raises(FaultSpecError, match="task index must be an int >= 0"):
            WorkerFaultPlan(failures={-1: 2})

    def test_bad_count_rejected(self):
        with pytest.raises(FaultSpecError, match="failure count must be an int >= 1"):
            WorkerFaultPlan(failures={0: 0})


class TestMaterialize:
    def test_deterministic(self):
        spec = random_crash_spec(
            seed=11, crash_rate_per_1000s=5.0, recover_after_s=120.0,
            extra_events=(crash(t=50.0, server=0),),
        )
        assert materialize(spec, 4) == materialize(spec, 4)

    def test_sorted_by_time(self):
        spec = random_crash_spec(seed=2, crash_rate_per_1000s=4.0, recover_after_s=30.0)
        times = [e.time_s for e in materialize(spec, 3).timeline]
        assert times == sorted(times)

    def test_simultaneous_faults_keep_declaration_order(self):
        spec = FaultSpec(
            events=(
                crash(t=10.0, server=1),
                FaultEvent(kind=FaultKind.SERVER_RECOVER, time_s=10.0, server=1),
            )
        )
        actions = [e.action for e in materialize(spec, 2).timeline]
        assert actions == [FaultAction.CRASH, FaultAction.RECOVER]

    def test_slowdown_expands_to_start_end_pair(self):
        spec = FaultSpec(
            events=(
                FaultEvent(
                    kind=FaultKind.SLOWDOWN, time_s=5.0, server=0, duration_s=10.0, factor=3.0
                ),
            )
        )
        timeline = materialize(spec, 1).timeline
        assert [e.action for e in timeline] == [
            FaultAction.SLOWDOWN_START,
            FaultAction.SLOWDOWN_END,
        ]
        assert timeline[0].factor == pytest.approx(3.0)
        assert timeline[1].time_s == pytest.approx(15.0)

    def test_worker_plan_carried_through(self):
        spec = FaultSpec(events=(FaultEvent(kind=FaultKind.WORKER_FAILURE, task=1, times=2),))
        schedule = materialize(spec, 1)
        assert schedule.worker_plan.failures_for(1) == 2
        assert not schedule  # no sim timeline entries

    def test_out_of_range_server_rejected(self):
        spec = FaultSpec(events=(crash(server=5),))
        with pytest.raises(FaultSpecError, match="targets server 5 but the cluster has 2"):
            materialize(spec, 2)

    def test_nonpositive_cluster_rejected(self):
        with pytest.raises(FaultSpecError, match="n_servers must be >= 1"):
            materialize(FaultSpec(), 0)

    def test_random_streams_are_per_server(self):
        # More servers must only ADD entries; existing servers' crash
        # times are a pure function of (seed, server index).
        spec = random_crash_spec(seed=9, crash_rate_per_1000s=3.0)
        small = [e for e in materialize(spec, 2).timeline]
        large = [e for e in materialize(spec, 4).timeline if e.server in (0, 1)]
        assert small == large

    def test_zero_rate_yields_empty_timeline(self):
        spec = random_crash_spec(seed=1, crash_rate_per_1000s=0.0)
        assert materialize(spec, 8).timeline == ()

    def test_no_recovery_means_one_crash_per_server(self):
        spec = random_crash_spec(
            seed=4, crash_rate_per_1000s=50.0, recover_after_s=None
        )
        timeline = materialize(spec, 3).timeline
        assert all(e.action is FaultAction.CRASH for e in timeline)
        crashed = [e.server for e in timeline]
        assert len(crashed) == len(set(crashed)) <= 3

    def test_crashes_within_window(self):
        spec = random_crash_spec(
            seed=6, crash_rate_per_1000s=20.0, window_s=(100.0, 500.0),
            recover_after_s=10.0,
        )
        crashes = [
            e for e in materialize(spec, 2).timeline if e.action is FaultAction.CRASH
        ]
        assert crashes, "rate 20/1000s over 400 s across 2 servers should crash"
        assert all(100.0 < e.time_s < 500.0 for e in crashes)
