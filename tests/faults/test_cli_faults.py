"""CLI surface of fault injection: ``repro evaluate --faults``.

Malformed specs must die at argument-parse time with exit code 2 (the
same usage-error path as ``--jobs``/``--alpha``); a spec whose server
targets do not fit the simulated clouds exits 2 at run time with a
clear message; a valid spec threads through to the evaluation and the
JSON document echoes it.
"""

import json

import pytest

from repro.cli import build_parser, main
from repro.faults import FaultSpec


def write_spec(tmp_path, document, name="faults.json"):
    path = tmp_path / name
    path.write_text(json.dumps(document) if isinstance(document, dict) else document)
    return str(path)


#: Benign chaos for 1-server scaled clouds: a transient slowdown plus
#: retried worker failures -- never removes capacity permanently.
BENIGN = {
    "events": [
        {"kind": "slowdown", "time_s": 100.0, "server": 0, "duration_s": 300.0,
         "factor": 1.5},
        {"kind": "worker_failure", "task": 0, "times": 2},
    ],
    "seed": 3,
}


class TestParseTimeValidation:
    def parse(self, spec_path):
        return build_parser().parse_args(["evaluate", "--faults", spec_path])

    def expect_exit_2(self, spec_path, capsys, message):
        with pytest.raises(SystemExit) as excinfo:
            self.parse(spec_path)
        assert excinfo.value.code == 2
        assert message in capsys.readouterr().err

    def test_valid_spec_accepted(self, tmp_path):
        args = self.parse(write_spec(tmp_path, BENIGN))
        assert isinstance(args.faults, FaultSpec)
        assert args.faults.seed == 3
        assert dict(args.faults.worker_failures) == {0: 2}

    def test_faults_defaults_to_none(self):
        assert build_parser().parse_args(["evaluate"]).faults is None

    def test_missing_file_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            self.parse("/nonexistent/faults.json")
        assert excinfo.value.code == 2
        assert "cannot read fault spec" in capsys.readouterr().err

    def test_malformed_json_exits_2(self, tmp_path, capsys):
        self.expect_exit_2(
            write_spec(tmp_path, "{broken"), capsys, "not valid JSON"
        )

    def test_unknown_kind_exits_2(self, tmp_path, capsys):
        self.expect_exit_2(
            write_spec(tmp_path, {"events": [{"kind": "meteor_strike"}]}),
            capsys,
            "unknown fault kind 'meteor_strike'",
        )

    def test_negative_time_exits_2(self, tmp_path, capsys):
        self.expect_exit_2(
            write_spec(
                tmp_path,
                {"events": [{"kind": "server_crash", "server": 0, "time_s": -5}]},
            ),
            capsys,
            "time_s must be >= 0",
        )

    def test_unknown_spec_key_exits_2(self, tmp_path, capsys):
        self.expect_exit_2(
            write_spec(tmp_path, {"evnts": []}), capsys, "unknown fault spec keys"
        )


class TestEvaluateWithFaults:
    def test_out_of_range_server_exits_2_at_runtime(self, tmp_path, capsys):
        # Parse-time validation cannot know the cloud sizes; the
        # materialization inside run_evaluation reports it instead.
        spec_path = write_spec(
            tmp_path,
            {"events": [{"kind": "server_crash", "server": 500, "time_s": 10.0}]},
        )
        assert main(
            ["evaluate", "--vm-budget", "60", "--quiet", "--faults", spec_path]
        ) == 2
        err = capsys.readouterr().err
        assert "repro evaluate: error:" in err
        assert "targets server 500" in err

    def test_benign_faults_run_to_completion_as_json(self, tmp_path, capsys):
        spec_path = write_spec(tmp_path, BENIGN)
        assert main(
            ["evaluate", "--vm-budget", "60", "--quiet", "--format", "json",
             "--faults", spec_path]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema_version"] == "1"
        assert document["command"] == "evaluate"
        # The JSON document echoes the normalized spec for provenance,
        # stamped with the wire-schema version like every document.
        faults = document["faults"]
        assert faults.pop("schema_version") == "1"
        assert faults == FaultSpec.from_dict(BENIGN).to_dict()
        assert len(document["outcomes"]) > 0

    def test_no_faults_reported_as_null(self, capsys):
        assert main(
            ["evaluate", "--vm-budget", "60", "--quiet", "--format", "json"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["faults"] is None
