"""Chaos tests: fault injection against the datacenter simulator.

The accounting invariants pinned here: crashes lose work but never
energy already burned, evicted VMs keep their identity and deadline
(faults can only add SLA violations), no-op injections are recorded
with ``applied=False`` and change nothing, and the whole faulted run
is deterministic -- same (schedule, trace, strategy, seed) twice gives
identical outcomes, metrics and fault logs.
"""

import pytest

from repro.common.errors import SimulationError
from repro.faults import (
    FAULTS_INJECTED,
    FAULTS_REALLOCATIONS,
    FaultEvent,
    FaultKind,
    FaultSpec,
    materialize,
)
from repro.obs.runtime import observed
from repro.sim.datacenter import DatacenterConfig, DatacenterSimulator
from repro.strategies import FirstFitStrategy
from repro.testbed.benchmarks import WorkloadClass
from repro.workloads.assignment import PreparedJob
from repro.workloads.qos import QoSPolicy

#: Solo fftw (CPU class) reference runtime on the default server.
SOLO_S = 600.0


def job(job_id=1, submit=0.0, n_vms=1):
    return PreparedJob(
        job_id=job_id,
        submit_time_s=submit,
        workload_class=WorkloadClass.CPU,
        n_vms=n_vms,
        burst_id=job_id,
    )


def spec(*events):
    return FaultSpec(events=tuple(events))


def crash(t, server=0):
    return FaultEvent(kind=FaultKind.SERVER_CRASH, time_s=t, server=server)


def recover(t, server=0):
    return FaultEvent(kind=FaultKind.SERVER_RECOVER, time_s=t, server=server)


def abort(t, vm):
    return FaultEvent(kind=FaultKind.VM_ABORT, time_s=t, vm=vm)


def slowdown(t, duration_s, factor, server=0):
    return FaultEvent(
        kind=FaultKind.SLOWDOWN, time_s=t, server=server, duration_s=duration_s,
        factor=factor,
    )


def run(jobs, fault_spec=None, n_servers=2, qos=None, record_chronicles=False):
    config = DatacenterConfig(n_servers=n_servers, record_chronicles=record_chronicles)
    simulator = DatacenterSimulator(config)
    schedule = (
        materialize(fault_spec, n_servers) if fault_spec is not None else None
    )
    return simulator.run(
        jobs,
        FirstFitStrategy(1),
        qos if qos is not None else QoSPolicy.unlimited(),
        faults=schedule,
    )


class TestServerCrash:
    def test_crash_restarts_evicted_vm_elsewhere(self):
        result = run([job()], spec(crash(100.0)))
        assert result.metrics.n_jobs == 1
        # Work restarts from scratch on the surviving server.
        outcome = result.outcomes[0]
        assert outcome.completion_time_s == pytest.approx(100.0 + SOLO_S, rel=1e-6)

    def test_crash_record_carries_eviction_details(self):
        result = run([job()], spec(crash(100.0)))
        [record] = result.fault_log
        assert record.applied
        assert record.kind == "crash"
        assert record.target == "s0000"
        assert record.vm_ids == ("j1-0",)
        assert record.lost_work_s == pytest.approx(100.0, rel=1e-6)

    def test_burned_energy_stays_accounted(self):
        plain = run([job()])
        faulted = run([job()], spec(crash(100.0)))
        # 100 s of discarded progress still drew power: strictly more
        # energy than the clean run, not a refund.
        assert faulted.metrics.energy_j > plain.metrics.energy_j

    def test_crash_can_only_add_sla_violations(self):
        qos = QoSPolicy(max_response_s={wc: SOLO_S + 50.0 for wc in WorkloadClass})
        plain = run([job()], qos=qos)
        faulted = run([job()], spec(crash(100.0)), qos=qos)
        assert plain.metrics.sla_violations == 0
        assert faulted.metrics.sla_violations == 1

    def test_crash_with_nowhere_to_go_fails_loudly(self):
        with pytest.raises(SimulationError, match="unfinished"):
            run([job()], spec(crash(100.0)), n_servers=1)

    def test_crash_then_recover_resumes_single_server(self):
        result = run([job()], spec(crash(100.0), recover(150.0)), n_servers=1)
        assert result.outcomes[0].completion_time_s == pytest.approx(
            150.0 + SOLO_S, rel=1e-6
        )

    def test_crash_on_failed_server_is_noop(self):
        result = run(
            [job()], spec(crash(100.0), crash(110.0), recover(150.0)), n_servers=1
        )
        noop = result.fault_log[1]
        assert not noop.applied
        assert noop.detail == "already failed"
        assert noop.vm_ids == ()

    def test_recover_on_healthy_server_is_noop(self):
        result = run([job()], spec(recover(100.0)))
        [record] = result.fault_log
        assert not record.applied
        assert record.detail == "not failed"

    def test_crash_of_idle_server_after_completion(self):
        # Applies cleanly (nothing to evict) and must not corrupt the
        # final energy sync even though it lands past the makespan.
        result = run([job()], spec(crash(SOLO_S + 400.0)))
        [record] = result.fault_log
        assert record.applied
        assert record.vm_ids == ()
        assert result.metrics.makespan_s == pytest.approx(SOLO_S, rel=1e-6)

    def test_multi_vm_job_evicted_and_replaced_as_group(self):
        result = run([job(n_vms=3)], spec(crash(100.0)))
        [record] = result.fault_log
        assert set(record.vm_ids) == {"j1-0", "j1-1", "j1-2"}
        assert record.lost_work_s > 100.0  # 3 VMs each lose their progress
        assert result.metrics.n_jobs == 1


class TestVMAbort:
    def test_abort_restarts_one_vm(self):
        result = run([job()], spec(abort(200.0, "j1-0")), n_servers=1)
        assert result.outcomes[0].completion_time_s == pytest.approx(
            200.0 + SOLO_S, rel=1e-6
        )
        [record] = result.fault_log
        assert record.applied
        assert record.kind == "abort_vm"
        assert record.lost_work_s == pytest.approx(200.0, rel=1e-6)

    def test_abort_unknown_vm_is_noop(self):
        result = run([job()], spec(abort(100.0, "no-such-vm")))
        [record] = result.fault_log
        assert not record.applied
        assert record.detail == "unknown VM"

    def test_abort_after_completion_is_noop(self):
        result = run([job()], spec(abort(SOLO_S + 100.0, "j1-0")))
        [record] = result.fault_log
        assert not record.applied
        assert result.metrics.makespan_s == pytest.approx(SOLO_S, rel=1e-6)

    def test_abort_queued_vm_is_noop(self):
        # Job 2 waits behind job 1 on a full server; aborting a VM that
        # has not started yet cannot apply.
        jobs = [job(job_id=1, n_vms=4), job(job_id=2, n_vms=4)]
        result = run(jobs, spec(abort(100.0, "j2-0")), n_servers=1)
        [record] = result.fault_log
        assert not record.applied
        assert "pending" in record.detail or "VM is" in record.detail


class TestSlowdown:
    def test_slowdown_stretches_execution(self):
        # Factor 2 over [100, 300): 200 wall seconds yield 100 s of
        # progress, pushing completion from 600 to 700.
        result = run([job()], spec(slowdown(100.0, 200.0, 2.0)), n_servers=1)
        assert result.outcomes[0].completion_time_s == pytest.approx(
            SOLO_S + 100.0, rel=1e-6
        )

    def test_slowdown_records_start_and_end(self):
        result = run([job()], spec(slowdown(100.0, 200.0, 2.0)), n_servers=1)
        kinds = [record.kind for record in result.fault_log]
        assert kinds == ["slowdown_start", "slowdown_end"]
        assert all(record.applied for record in result.fault_log)

    def test_slowdown_on_failed_server_is_noop(self):
        result = run(
            [job()], spec(crash(50.0), slowdown(100.0, 50.0, 2.0)), n_servers=2
        )
        start = next(r for r in result.fault_log if r.kind == "slowdown_start")
        end = next(r for r in result.fault_log if r.kind == "slowdown_end")
        assert not start.applied and start.detail == "server failed"
        assert not end.applied

    def test_factor_one_slowdown_changes_nothing(self):
        plain = run([job()])
        unity = run([job()], spec(slowdown(100.0, 200.0, 1.0)))
        assert unity.outcomes == plain.outcomes
        assert unity.metrics == plain.metrics


class TestDeterminismAndNoFault:
    def test_same_schedule_same_result(self):
        chaos = spec(
            crash(80.0), recover(140.0), abort(220.0, "j2-0"),
            slowdown(50.0, 100.0, 1.5, server=1),
        )
        jobs = [job(job_id=1, n_vms=2), job(job_id=2, submit=30.0, n_vms=2)]
        first = run(jobs, chaos, n_servers=3)
        second = run(jobs, chaos, n_servers=3)
        assert first.outcomes == second.outcomes
        assert first.metrics == second.metrics
        assert first.fault_log == second.fault_log

    def test_empty_schedule_is_bit_identical_to_no_faults(self):
        jobs = [job(job_id=1, n_vms=2), job(job_id=2, submit=30.0)]
        plain = run(jobs)
        empty = run(jobs, FaultSpec())
        assert empty == plain
        assert empty.fault_log == ()


class TestObservability:
    def test_fault_counters_match_the_log(self):
        chaos = spec(crash(100.0), recover(9999.0), abort(4000.0, "j1-0"))
        with observed(deterministic=True) as bundle:
            result = run([job(n_vms=2)], chaos)
            injected = sum(
                bundle.registry.counter_values(FAULTS_INJECTED).values()
            )
            reallocated = sum(
                bundle.registry.counter_values(FAULTS_REALLOCATIONS).values()
            )
        applied = [record for record in result.fault_log if record.applied]
        assert injected == len(applied)
        # Crash evicts 2 VMs, both re-placed; the abort at 4000 s lands
        # after completion (no-op) and the recover targets a healthy
        # server, so only the crash contributes re-allocations.
        assert reallocated == 2

    def test_no_fault_run_emits_no_fault_counters(self):
        with observed(deterministic=True) as bundle:
            run([job()])
            snapshot = bundle.snapshot()
        assert not [key for key in snapshot["counters"] if key.startswith("faults.")]

    def test_chronicle_notes_crash_and_replacement(self):
        result = run([job()], spec(crash(100.0)), record_chronicles=True)
        crash_notes = [n for n in result.chronicles[0].notes if n.kind == "crash"]
        replace_notes = [n for n in result.chronicles[1].notes if n.kind == "replace"]
        assert len(crash_notes) == 1
        assert crash_notes[0].detail == "evicted=1"
        assert len(replace_notes) == 1
        assert replace_notes[0].detail == "j1-0"
