"""Fault injection must preserve the engine's determinism contract.

Same (workload, strategy lineup, fault spec) must give bit-identical
results -- outcome tuples, merged metrics snapshots, deterministic
traces -- at any worker count, and an empty spec must leave the
fault-free paths byte-identical (no stray counters, no fault records).
"""

from __future__ import annotations

import io
import json

import pytest

from repro.experiments.config import SMALLER
from repro.experiments.evaluation import run_evaluation
from repro.ext.carbon import (
    CarbonOptions,
    TemporalSignals,
    daily_carbon_signal,
    double_peak_price_signal,
)
from repro.faults import FaultEvent, FaultKind, FaultSpec, RandomFaults
from repro.obs.runtime import observed

SCALE = 300

#: The carbon scenario at full tilt -- live signals, 3-way scoring and
#: temporal shifting -- must uphold the exact same identity contract as
#: the plain lineup, so the suite runs once without and once with it.
CARBON = CarbonOptions(
    signals=TemporalSignals(
        carbon=daily_carbon_signal(7), price=double_peak_price_signal(7)
    ),
    alpha_carbon=0.25,
    shift_deferrable=True,
)

#: Chaos that always leaves the (2-server) scaled cluster able to
#: finish: the crash recovers, the slowdown ends, and worker failures
#: are retried by the engine.  Cell (task) indexes 0..5 cover the
#: paper's 6-strategy lineup over one cloud.
CHAOS = FaultSpec(
    events=(
        FaultEvent(kind=FaultKind.SERVER_CRASH, time_s=900.0, server=1),
        FaultEvent(kind=FaultKind.SERVER_RECOVER, time_s=1200.0, server=1),
        FaultEvent(
            kind=FaultKind.SLOWDOWN, time_s=300.0, server=0, duration_s=400.0, factor=1.5
        ),
        FaultEvent(kind=FaultKind.WORKER_FAILURE, task=1, times=2),
        FaultEvent(kind=FaultKind.WORKER_FAILURE, task=4, times=1),
    ),
)


@pytest.fixture(scope="module")
def tiny_config():
    return SMALLER.scaled(SCALE)


def run_once(campaign, config, jobs, faults, carbon=None):
    sink = io.StringIO()
    with observed(trace_sink=sink, deterministic=True) as bundle:
        result = run_evaluation(
            configs=[config], campaign=campaign, jobs=jobs, faults=faults, carbon=carbon
        )
        snapshot = bundle.snapshot()
    return result, snapshot, sink.getvalue()


@pytest.fixture(params=[None, CARBON], ids=["plain", "carbon"])
def carbon_options(request):
    return request.param


class TestFaultedSerialParallelIdentity:
    def test_faulted_run_identical_at_any_worker_count(
        self, campaign, tiny_config, carbon_options
    ):
        serial, serial_snapshot, serial_trace = run_once(
            campaign, tiny_config, jobs=1, faults=CHAOS, carbon=carbon_options
        )
        parallel, parallel_snapshot, parallel_trace = run_once(
            campaign, tiny_config, jobs=4, faults=CHAOS, carbon=carbon_options
        )
        assert serial.outcomes == parallel.outcomes
        assert serial == parallel
        assert json.dumps(serial_snapshot, sort_keys=True) == json.dumps(
            parallel_snapshot, sort_keys=True
        )
        assert serial_trace == parallel_trace

    def test_fault_counters_present_and_identical(self, campaign, tiny_config):
        _, snapshot, _ = run_once(campaign, tiny_config, jobs=2, faults=CHAOS)
        counters = snapshot["counters"]
        assert any(key.startswith("faults.injected") for key in counters)
        assert any(key.startswith("faults.retries") for key in counters)
        # 2 + 1 worker failures, all retried to success.
        assert sum(v for k, v in counters.items() if k.startswith("faults.retries")) == 3

    def test_faulted_run_repeats_bit_identical(
        self, campaign, tiny_config, carbon_options
    ):
        first = run_once(campaign, tiny_config, jobs=2, faults=CHAOS, carbon=carbon_options)
        second = run_once(campaign, tiny_config, jobs=2, faults=CHAOS, carbon=carbon_options)
        assert first[0] == second[0]
        assert json.dumps(first[1], sort_keys=True) == json.dumps(
            second[1], sort_keys=True
        )
        assert first[2] == second[2]

    def test_carbon_counters_present_under_chaos(self, campaign, tiny_config):
        result, snapshot, _ = run_once(
            campaign, tiny_config, jobs=2, faults=CHAOS, carbon=CARBON
        )
        counters = snapshot["counters"]
        assert any(key.startswith("carbon.grams") for key in counters)
        assert any(key.startswith("cost.currency") for key in counters)
        assert any(key.startswith("shift.moved_jobs") for key in counters)
        assert all(outcome.carbon_g > 0.0 for outcome in result.outcomes)

    def test_carbon_counters_absent_without_signals(self, campaign, tiny_config):
        _, snapshot, _ = run_once(campaign, tiny_config, jobs=2, faults=CHAOS)
        counters = snapshot["counters"]
        assert not any(key.startswith("carbon.") for key in counters)
        assert not any(key.startswith("cost.") for key in counters)
        assert not any(key.startswith("shift.") for key in counters)


class TestEmptySpecIsInert:
    def test_empty_spec_identical_to_no_faults(self, campaign, tiny_config):
        plain = run_once(campaign, tiny_config, jobs=1, faults=None)
        empty = run_once(campaign, tiny_config, jobs=1, faults=FaultSpec())
        assert plain[0] == empty[0]
        assert json.dumps(plain[1], sort_keys=True) == json.dumps(
            empty[1], sort_keys=True
        )
        assert plain[2] == empty[2]

    def test_zero_rate_random_spec_identical_to_no_faults(self, campaign, tiny_config):
        plain = run_once(campaign, tiny_config, jobs=1, faults=None)
        zero = run_once(
            campaign,
            tiny_config,
            jobs=1,
            faults=FaultSpec(random=RandomFaults(crash_rate_per_1000s=0.0), seed=5),
        )
        assert plain[0] == zero[0]
        assert json.dumps(plain[1], sort_keys=True) == json.dumps(
            zero[1], sort_keys=True
        )
