"""Fault injection must preserve the engine's determinism contract.

Same (workload, strategy lineup, fault spec) must give bit-identical
results -- outcome tuples, merged metrics snapshots, deterministic
traces -- at any worker count, and an empty spec must leave the
fault-free paths byte-identical (no stray counters, no fault records).
"""

from __future__ import annotations

import io
import json

import pytest

from repro.experiments.config import SMALLER
from repro.experiments.evaluation import run_evaluation
from repro.faults import FaultEvent, FaultKind, FaultSpec, RandomFaults
from repro.obs.runtime import observed

SCALE = 300

#: Chaos that always leaves the (2-server) scaled cluster able to
#: finish: the crash recovers, the slowdown ends, and worker failures
#: are retried by the engine.  Cell (task) indexes 0..5 cover the
#: paper's 6-strategy lineup over one cloud.
CHAOS = FaultSpec(
    events=(
        FaultEvent(kind=FaultKind.SERVER_CRASH, time_s=900.0, server=1),
        FaultEvent(kind=FaultKind.SERVER_RECOVER, time_s=1200.0, server=1),
        FaultEvent(
            kind=FaultKind.SLOWDOWN, time_s=300.0, server=0, duration_s=400.0, factor=1.5
        ),
        FaultEvent(kind=FaultKind.WORKER_FAILURE, task=1, times=2),
        FaultEvent(kind=FaultKind.WORKER_FAILURE, task=4, times=1),
    ),
)


@pytest.fixture(scope="module")
def tiny_config():
    return SMALLER.scaled(SCALE)


def run_once(campaign, config, jobs, faults):
    sink = io.StringIO()
    with observed(trace_sink=sink, deterministic=True) as bundle:
        result = run_evaluation(
            configs=[config], campaign=campaign, jobs=jobs, faults=faults
        )
        snapshot = bundle.snapshot()
    return result, snapshot, sink.getvalue()


class TestFaultedSerialParallelIdentity:
    def test_faulted_run_identical_at_any_worker_count(self, campaign, tiny_config):
        serial, serial_snapshot, serial_trace = run_once(
            campaign, tiny_config, jobs=1, faults=CHAOS
        )
        parallel, parallel_snapshot, parallel_trace = run_once(
            campaign, tiny_config, jobs=4, faults=CHAOS
        )
        assert serial.outcomes == parallel.outcomes
        assert serial == parallel
        assert json.dumps(serial_snapshot, sort_keys=True) == json.dumps(
            parallel_snapshot, sort_keys=True
        )
        assert serial_trace == parallel_trace

    def test_fault_counters_present_and_identical(self, campaign, tiny_config):
        _, snapshot, _ = run_once(campaign, tiny_config, jobs=2, faults=CHAOS)
        counters = snapshot["counters"]
        assert any(key.startswith("faults.injected") for key in counters)
        assert any(key.startswith("faults.retries") for key in counters)
        # 2 + 1 worker failures, all retried to success.
        assert sum(v for k, v in counters.items() if k.startswith("faults.retries")) == 3

    def test_faulted_run_repeats_bit_identical(self, campaign, tiny_config):
        first = run_once(campaign, tiny_config, jobs=2, faults=CHAOS)
        second = run_once(campaign, tiny_config, jobs=2, faults=CHAOS)
        assert first[0] == second[0]
        assert json.dumps(first[1], sort_keys=True) == json.dumps(
            second[1], sort_keys=True
        )
        assert first[2] == second[2]


class TestEmptySpecIsInert:
    def test_empty_spec_identical_to_no_faults(self, campaign, tiny_config):
        plain = run_once(campaign, tiny_config, jobs=1, faults=None)
        empty = run_once(campaign, tiny_config, jobs=1, faults=FaultSpec())
        assert plain[0] == empty[0]
        assert json.dumps(plain[1], sort_keys=True) == json.dumps(
            empty[1], sort_keys=True
        )
        assert plain[2] == empty[2]

    def test_zero_rate_random_spec_identical_to_no_faults(self, campaign, tiny_config):
        plain = run_once(campaign, tiny_config, jobs=1, faults=None)
        zero = run_once(
            campaign,
            tiny_config,
            jobs=1,
            faults=FaultSpec(random=RandomFaults(crash_rate_per_1000s=0.0), seed=5),
        )
        assert plain[0] == zero[0]
        assert json.dumps(plain[1], sort_keys=True) == json.dumps(
            zero[1], sort_keys=True
        )
