"""Unit tests for the ASCII figure rendering."""

import pytest

from repro.experiments.ascii import bar_chart, line_curve


class TestBarChart:
    SERIES = {
        "SMALLER": [("FF", 100.0), ("PA-1", 60.0)],
        "LARGER": [("FF", 80.0), ("PA-1", 55.0)],
    }

    def test_contains_all_cells(self):
        text = bar_chart(self.SERIES, title="Makespan")
        assert "Makespan" in text
        assert text.count("FF") == 2
        assert text.count("PA-1") == 2

    def test_bars_scale_with_values(self):
        text = bar_chart(self.SERIES)
        lines = [l for l in text.splitlines() if "|" in l]
        ff_smaller = next(l for l in lines if l.startswith("FF") and "SMALLER" in l)
        pa_smaller = next(l for l in lines if l.startswith("PA-1") and "SMALLER" in l)
        assert ff_smaller.count("#") > pa_smaller.count("#")

    def test_value_format(self):
        text = bar_chart(self.SERIES, value_format="{:.1f}")
        assert "100.0" in text

    def test_zero_values(self):
        text = bar_chart({"A": [("x", 0.0)]})
        assert "|" in text

    def test_width_validated(self):
        with pytest.raises(ValueError):
            bar_chart(self.SERIES, width=2)

    def test_missing_cell_skipped(self):
        series = {"A": [("x", 1.0)], "B": [("y", 2.0)]}
        text = bar_chart(series)
        assert "x" in text and "y" in text


class TestLineCurve:
    def test_contains_points(self):
        text = line_curve([1, 2, 3], [10.0, 5.0, 20.0], title="curve")
        assert "curve" in text
        assert text.count("*") == 3

    def test_peak_row_annotated(self):
        text = line_curve([1, 2], [0.0, 50.0])
        assert "50" in text

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            line_curve([1, 2], [1.0])

    def test_height_validated(self):
        with pytest.raises(ValueError):
            line_curve([1], [1.0], height=2)

    def test_empty_series(self):
        assert line_curve([], [], title="t") == "t"

    def test_labels_rendered(self):
        text = line_curve([1], [1.0], x_label="n", y_label="s")
        assert "x: n" in text and "y: s" in text

    def test_minimum_visible(self):
        # The Fig. 2 use case: the optimum must be on a lower row than
        # the solo point.
        text = line_curve([1, 2, 3], [600.0, 300.0, 650.0])
        rows = text.splitlines()
        col_of = {}
        for r, row in enumerate(rows):
            for c, ch in enumerate(row):
                if ch == "*":
                    col_of[c] = r
        levels = [col_of[c] for c in sorted(col_of)]
        assert levels[1] > levels[0]  # middle point lower on screen
