"""Experiment tests: the Fig. 3 algorithm contract."""

import pytest

from repro.experiments.fig3_algorithm import fig3_contract


@pytest.fixture(scope="module")
def result(campaign):
    return fig3_contract(campaign=campaign)


class TestFig3Contract:
    def test_all_four_inputs_consumed(self, result):
        assert result.all_inputs_used

    def test_output_is_partition_and_allocation(self, result):
        plan = result.plan
        # Blocks partition the request set.
        placed = sorted(vm for a in plan.assignments for vm in a.vm_ids)
        assert placed == ["c0", "c1", "i0", "m0"]
        # Every block is bound to a server with an estimate.
        for assignment in plan.assignments:
            assert assignment.server_id.startswith("s")
            assert assignment.estimate.time_s > 0

    def test_qos_constraints_respected(self, result):
        assert result.plan.qos_satisfied

    def test_search_space_enumerated(self, result):
        # Brute force over (type-)partitions: the candidate count the
        # search considered is the full family for the batch.
        assert result.n_candidate_partitions == 11  # type partitions of (2,1,1)

    def test_alpha_changes_outcome(self, campaign):
        frugal = fig3_contract(campaign=campaign, alpha=1.0)
        fast = fig3_contract(campaign=campaign, alpha=0.0)
        assert frugal.plan.estimated_energy_j <= fast.plan.estimated_energy_j + 1e-9
        assert fast.plan.estimated_makespan_s <= frugal.plan.estimated_makespan_s + 1e-9
