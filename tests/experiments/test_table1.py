"""Experiment tests: Table I parameters."""

import pytest

from repro.experiments.table1_parameters import table1_parameters
from repro.testbed.benchmarks import WorkloadClass


@pytest.fixture(scope="module")
def result():
    return table1_parameters()


class TestTable1:
    def test_osp_cpu_is_nine(self, result):
        assert result.optima.optima(WorkloadClass.CPU).osp == 9

    def test_ose_below_osp_for_cpu(self, result):
        # Energy-optimal consolidation is more conservative than
        # performance-optimal for the CPU class on this testbed.
        entry = result.optima.optima(WorkloadClass.CPU)
        assert entry.ose < entry.osp

    def test_os_bound_consistency(self, result):
        for workload_class in WorkloadClass:
            entry = result.optima.optima(workload_class)
            assert entry.os_bound == max(entry.osp, entry.ose)

    def test_rows_render(self, result):
        rows = result.rows()
        assert rows[0] == ["", "CPU", "Memory", "I/O"]
        assert len(rows) == 5
        assert all(len(row) == 4 for row in rows)

    def test_reference_times(self, result):
        assert result.optima.tc == pytest.approx(600.0, rel=1e-6)
        assert result.optima.tm == pytest.approx(700.0, rel=1e-6)
        assert result.optima.ti == pytest.approx(800.0, rel=1e-6)
