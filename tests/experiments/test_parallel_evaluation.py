"""Serial/parallel identity of the evaluation fan-out.

``run_evaluation(jobs=N)`` must be bit-identical to ``jobs=1``: same
outcome tuple, same merged metrics snapshot, same deterministic trace.
The scale here is small (the point is identity, not throughput; the
speedup gate lives in ``benchmarks/bench_perf_parallel.py``).
"""

from __future__ import annotations

import io
import json
import time

import pytest

from repro.experiments.config import SMALLER
from repro.experiments.evaluation import run_evaluation
from repro.obs.runtime import observed
from repro.sim.datacenter import DatacenterConfig, DatacenterSimulator
from repro.strategies import paper_strategies
from repro.workloads.qos import QoSPolicy

SCALE = 300


@pytest.fixture(scope="module")
def tiny_config():
    return SMALLER.scaled(SCALE)


class TestSerialParallelIdentity:
    def run_once(self, campaign, config, jobs):
        sink = io.StringIO()
        with observed(trace_sink=sink, deterministic=True) as bundle:
            result = run_evaluation(configs=[config], campaign=campaign, jobs=jobs)
            snapshot = bundle.snapshot()
        return result, snapshot, sink.getvalue()

    def test_outcomes_snapshot_and_trace_identical(self, campaign, tiny_config):
        serial, serial_snapshot, serial_trace = self.run_once(
            campaign, tiny_config, jobs=1
        )
        parallel, parallel_snapshot, parallel_trace = self.run_once(
            campaign, tiny_config, jobs=4
        )
        assert serial.outcomes == parallel.outcomes
        assert serial == parallel
        assert json.dumps(serial_snapshot, sort_keys=True) == json.dumps(
            parallel_snapshot, sort_keys=True
        )
        assert serial_trace == parallel_trace

    def test_parallel_without_observability(self, campaign, tiny_config):
        serial = run_evaluation(configs=[tiny_config], campaign=campaign, jobs=1)
        parallel = run_evaluation(configs=[tiny_config], campaign=campaign, jobs=2)
        assert serial.outcomes == parallel.outcomes

    def test_unpicklable_strategy_factory_falls_back(self, campaign, tiny_config):
        lineup = lambda db: paper_strategies(db)[:2]  # noqa: E731
        with observed() as bundle:
            result = run_evaluation(
                configs=[tiny_config], campaign=campaign, strategies=lineup, jobs=2
            )
        assert len(result.outcomes) == 2
        assert bundle.snapshot()["counters"]["exec.fallback_serial"] == 1


class TestCellIndex:
    def test_lookup_matches_linear_scan(self, campaign, tiny_config):
        result = run_evaluation(configs=[tiny_config], campaign=campaign)
        for outcome in result.outcomes:
            assert result.cell(outcome.cloud, outcome.strategy) is outcome

    def test_missing_cell_raises_keyerror(self, campaign, tiny_config):
        result = run_evaluation(configs=[tiny_config], campaign=campaign)
        with pytest.raises(KeyError, match="no outcome"):
            result.cell("nope", "FF")

    def test_index_does_not_affect_equality(self, campaign, tiny_config):
        first = run_evaluation(configs=[tiny_config], campaign=campaign)
        second = run_evaluation(configs=[tiny_config], campaign=campaign)
        first.cell(first.outcomes[0].cloud, first.outcomes[0].strategy)
        assert first == second  # the cached index is not a field


class TestHoistedInvariants:
    def test_equal_to_per_cell_construction(self, campaign, tiny_config, server):
        """Hoisting QoS/simulator construction out of the strategy loop
        must not change any cell: rebuild everything per cell and
        compare."""
        result = run_evaluation(configs=[tiny_config], campaign=campaign)
        from repro.core.model import ModelDatabase
        from repro.experiments.evaluation import prepare_workload

        database = ModelDatabase.from_campaign(campaign)
        jobs, _ = prepare_workload(tiny_config)
        for index, strategy in enumerate(paper_strategies(database)):
            qos = QoSPolicy.from_optima(
                campaign.optima, factor=tiny_config.qos_factor
            )
            simulator = DatacenterSimulator(
                DatacenterConfig(
                    n_servers=tiny_config.n_servers, server_spec=server
                )
            )
            fresh = simulator.run(jobs, strategy, qos)
            outcome = result.outcomes[index]
            assert outcome.strategy == fresh.strategy_name
            assert outcome.makespan_s == fresh.metrics.makespan_s
            assert outcome.energy_j == fresh.metrics.energy_j
            assert outcome.sla_violation_pct == fresh.metrics.sla_violation_pct


class TestOutcomeEquality:
    def test_wall_time_excluded_from_comparison(self, campaign, tiny_config):
        first = run_evaluation(configs=[tiny_config], campaign=campaign)
        time.sleep(0.01)
        second = run_evaluation(configs=[tiny_config], campaign=campaign)
        for left, right in zip(first.outcomes, second.outcomes):
            assert left == right
