"""Unit tests for the evaluation configuration."""

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.config import LARGER, SMALLER, EvaluationConfig


class TestPaperConfigs:
    def test_larger_is_about_15_percent_bigger(self):
        ratio = LARGER.n_servers / SMALLER.n_servers
        assert 1.10 < ratio < 1.20

    def test_paper_vm_budget(self):
        assert SMALLER.vm_budget == 10_000
        assert LARGER.vm_budget == 10_000

    def test_labels(self):
        assert SMALLER.label == "SMALLER"
        assert LARGER.label == "LARGER"


class TestValidation:
    def test_bad_servers(self):
        with pytest.raises(ConfigurationError):
            EvaluationConfig(label="x", n_servers=0)

    def test_bad_budget(self):
        with pytest.raises(ConfigurationError):
            EvaluationConfig(label="x", n_servers=1, vm_budget=0)

    def test_bad_qos_factor(self):
        with pytest.raises(ConfigurationError):
            EvaluationConfig(label="x", n_servers=1, qos_factor=1.0)


class TestScaled:
    def test_servers_scale_proportionally(self):
        scaled = SMALLER.scaled(2500)
        assert scaled.n_servers == round(SMALLER.n_servers * 0.25)
        assert scaled.vm_budget == 2500

    def test_load_pressure_preserved(self):
        # The per-server arrival pressure ~ n_servers * burst interval
        # stays constant: interval scales as 1/ratio.
        scaled = SMALLER.scaled(2500)
        full_interval = SMALLER.mean_burst_gap_s + 6.0
        scaled_interval = scaled.mean_burst_gap_s + 6.0
        assert scaled_interval == pytest.approx(full_interval / 0.25)

    def test_identity_scale(self):
        same = SMALLER.scaled(SMALLER.vm_budget)
        assert same.n_servers == SMALLER.n_servers
        assert same.mean_burst_gap_s == pytest.approx(SMALLER.mean_burst_gap_s)

    def test_scaled_keeps_seed_and_label(self):
        scaled = LARGER.scaled(1000)
        assert scaled.label == "LARGER"
        assert scaled.seed == LARGER.seed

    def test_bad_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            SMALLER.scaled(0)

    def test_minimum_one_server(self):
        tiny = SMALLER.scaled(10)
        assert tiny.n_servers >= 1
