"""Experiment tests: Table II database."""

import pytest

from repro.campaign.combined_tests import expected_combination_count
from repro.core.model import ModelDatabase
from repro.experiments.table2_database import table2_database


@pytest.fixture(scope="module")
def result():
    return table2_database()


class TestTable2:
    def test_combined_count_matches_formula(self, result):
        osc, osm, osi = result.campaign.optima.grid_bounds
        assert result.expected_combined == expected_combination_count(osc, osm, osi)

    def test_database_holds_base_plus_combined(self, result):
        osc, osm, osi = result.campaign.optima.grid_bounds
        assert result.n_records == result.expected_combined + osc + osm + osi

    def test_sample_rows_schema(self, result):
        rows = result.sample_rows(limit=5)
        assert rows[0] == ["Ncpu", "Nmem", "Nio", "Time", "avgTimeVM", "Energy", "MaxPower", "EDP"]
        assert len(rows) == 6

    def test_round_trip_through_files(self, result, tmp_path):
        db_path = tmp_path / "db.csv"
        aux_path = tmp_path / "aux.csv"
        result.database.save(db_path, aux_path)
        loaded = ModelDatabase.from_files(db_path, aux_path)
        assert len(loaded) == result.n_records
        assert loaded.grid_bounds == result.database.grid_bounds

    def test_lookup_cost_logarithmic_shape(self, result):
        # Structural check: lookups go through bisect on sorted keys.
        keys = result.database.keys()
        assert list(keys) == sorted(keys)
