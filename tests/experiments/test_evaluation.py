"""Experiment tests: the Figs. 5-7 evaluation at reduced scale.

The full 10,000-VM evaluation runs in the benchmark suite; here a
proportionally scaled version (same load pressure, ~1/8 of the VMs)
checks the qualitative relations the paper reports.
"""

import pytest

from repro.experiments.config import LARGER, SMALLER
from repro.experiments.evaluation import prepare_workload, run_evaluation
from repro.experiments.report import format_series_table, headline_claims
from repro.workloads.assignment import total_vms_requested


# Quarter scale: small enough for CI, large enough that the clusters
# (16/19 servers) retain the statistical multiplexing the full-size
# clouds rely on.  Scaling below ~2000 VMs (<10 servers) makes queueing
# variance dominate and the paper's relations wash out.
SCALE = 2500


@pytest.fixture(scope="module")
def result(campaign):
    return run_evaluation(
        configs=[SMALLER.scaled(SCALE), LARGER.scaled(SCALE)],
        campaign=campaign,
    )


class TestWorkloadPreparation:
    def test_vm_budget_respected(self):
        jobs, n_vms = prepare_workload(SMALLER.scaled(SCALE))
        assert n_vms <= SCALE
        assert n_vms > SCALE * 0.9
        assert total_vms_requested(jobs) == n_vms

    def test_deterministic(self):
        a, _ = prepare_workload(SMALLER.scaled(SCALE))
        b, _ = prepare_workload(SMALLER.scaled(SCALE))
        assert a == b


class TestEvaluationStructure:
    def test_all_cells_present(self, result):
        assert len(result.outcomes) == 12  # 6 strategies x 2 clouds
        assert result.strategies == ("FF", "FF-2", "FF-3", "PA-1", "PA-0", "PA-0.5")

    def test_cell_lookup(self, result):
        cell = result.cell("SMALLER", "FF")
        assert cell.cloud == "SMALLER"
        with pytest.raises(KeyError):
            result.cell("SMALLER", "nope")

    def test_series_extraction(self, result):
        series = result.series("makespan_s")
        assert set(series) == {"SMALLER", "LARGER"}
        assert len(series["SMALLER"]) == 6

    def test_table_rendering(self, result):
        text = format_series_table(result.series("energy_j"), title="Energy (J)")
        assert "Energy (J)" in text
        assert "PA-0.5" in text


class TestPaperRelations:
    """The qualitative claims of Figs. 5-7 and the result prose."""

    def test_proactive_beats_ff_family_makespan(self, result):
        for cloud in ("SMALLER", "LARGER"):
            best_pa = min(result.cell(cloud, s).makespan_s for s in ("PA-1", "PA-0", "PA-0.5"))
            for ff in ("FF", "FF-2", "FF-3"):
                assert best_pa < result.cell(cloud, ff).makespan_s, (cloud, ff)

    def test_proactive_saves_energy_vs_ff_family(self, result):
        for claims in headline_claims(result):
            assert claims.avg_energy_saving_pct > 5.0

    def test_pa1_saves_energy_vs_pa0(self, result):
        for cloud in ("SMALLER", "LARGER"):
            assert (
                result.cell(cloud, "PA-1").energy_j
                <= result.cell(cloud, "PA-0").energy_j
            )

    def test_ff3_is_the_worst_ff(self, result):
        for cloud in ("SMALLER", "LARGER"):
            ff3 = result.cell(cloud, "FF-3")
            assert ff3.makespan_s >= result.cell(cloud, "FF-2").makespan_s
            assert ff3.energy_j >= result.cell(cloud, "FF").energy_j

    def test_smaller_cloud_is_more_loaded(self, result):
        # Makespans higher in SMALLER than in LARGER (for FF, which
        # queues): the load-pressure relationship of Sect. IV-E.
        assert (
            result.cell("SMALLER", "FF").makespan_s
            >= result.cell("LARGER", "FF").makespan_s
        )

    def test_proactive_sla_not_worse_than_ff(self, result):
        for claims in headline_claims(result):
            assert claims.pa_worst_minus_ff_best_sla_pp <= 5.0

    def test_makespan_sla_correlation_positive(self, result):
        for claims in headline_claims(result):
            assert claims.makespan_sla_correlation > 0.5
