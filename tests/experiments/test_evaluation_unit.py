"""Unit-level tests for the evaluation plumbing (fast paths only)."""

import pytest

from repro.experiments.config import SMALLER
from repro.experiments.evaluation import run_evaluation
from repro.strategies.firstfit import FirstFitStrategy


class TestRunEvaluationPlumbing:
    def test_custom_strategy_factory(self, campaign):
        """The strategies callable controls the lineup entirely."""
        config = SMALLER.scaled(400)
        result = run_evaluation(
            configs=[config],
            strategies=lambda db: [FirstFitStrategy(1), FirstFitStrategy(2)],
            campaign=campaign,
        )
        assert result.strategies == ("FF", "FF-2")
        assert len(result.outcomes) == 2
        assert all(o.cloud == "SMALLER" for o in result.outcomes)

    def test_progress_messages_emitted(self, campaign):
        messages = []
        run_evaluation(
            configs=[SMALLER.scaled(300)],
            strategies=lambda db: [FirstFitStrategy(2)],
            campaign=campaign,
            progress=messages.append,
        )
        assert any("trace" in m for m in messages)
        assert any("FF-2" in m for m in messages)

    def test_outcomes_carry_wall_time(self, campaign):
        result = run_evaluation(
            configs=[SMALLER.scaled(300)],
            strategies=lambda db: [FirstFitStrategy(2)],
            campaign=campaign,
        )
        assert result.outcomes[0].wall_time_s > 0

    def test_campaign_reuse_skips_rebuild(self, campaign):
        """Passing a campaign must not re-run it (same optima object)."""
        result = run_evaluation(
            configs=[SMALLER.scaled(300)],
            strategies=lambda db: [FirstFitStrategy(2)],
            campaign=campaign,
        )
        assert result.campaign is campaign
