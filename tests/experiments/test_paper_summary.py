"""Tests for the one-shot reproduction summary."""

import pytest

from repro.experiments.paper_summary import reproduce_paper


@pytest.fixture(scope="module")
def reproduction():
    return reproduce_paper(vm_budget=2500)


class TestReproducePaper:
    def test_fig2_and_fig4_match(self, reproduction):
        assert reproduction.fig2_optimum_matches
        assert reproduction.fig4_matches

    def test_report_covers_every_artifact(self, reproduction):
        report = reproduction.report
        for marker in (
            "Fig. 1",
            "Fig. 2",
            "Table I",
            "Table II",
            "Fig. 4",
            "Fig. 5",
            "Fig. 6",
            "Fig. 7",
            "Headline claims",
        ):
            assert marker in report, marker

    def test_report_quotes_paper_values(self, reproduction):
        report = reproduction.report
        assert "paper: 9" in report
        assert "1380s" in report
        assert "14.25kJ" in report
        assert "up to 18%" in report

    def test_evaluation_has_both_clouds(self, reproduction):
        clouds = {o.cloud for o in reproduction.evaluation.outcomes}
        assert clouds == {"SMALLER", "LARGER"}

    def test_progress_callback(self):
        messages = []
        reproduce_paper(vm_budget=400, progress=messages.append)
        assert any("campaign" in m for m in messages)
        assert any("Fig" in m for m in messages)
