"""Experiment tests: the Fig. 4 worked example, exactly as printed."""

import pytest

from repro.experiments.fig4_accounting import (
    EXPECTED_ENERGY_J,
    EXPECTED_EXEC_TIME_S,
    fig4_worked_example,
)


class TestFig4WorkedExample:
    def test_exec_time_vm1_is_1380s(self):
        result = fig4_worked_example()
        assert result.exec_time_vm1_s == pytest.approx(1380.0, abs=1e-12)

    def test_energy_is_14_25_kj(self):
        result = fig4_worked_example()
        assert result.energy_j == pytest.approx(14_250.0, abs=1e-12)

    def test_matches_paper_flag(self):
        assert fig4_worked_example().matches_paper

    def test_expected_constants(self):
        assert EXPECTED_EXEC_TIME_S == 1380.0
        assert EXPECTED_ENERGY_J == 14_250.0
