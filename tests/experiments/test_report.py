"""Unit tests for headline-claim extraction and table formatting."""

import pytest

from repro.experiments.evaluation import EvaluationResult, StrategyOutcome
from repro.experiments.report import (
    _correlation,
    format_series_table,
    headline_claims,
)


def outcome(cloud, strategy, makespan, energy, sla=0.0):
    return StrategyOutcome(
        cloud=cloud,
        strategy=strategy,
        makespan_s=makespan,
        energy_j=energy,
        sla_violation_pct=sla,
        mean_response_s=makespan / 10,
        max_queue_length=0,
        wall_time_s=1.0,
    )


def synthetic_result():
    cells = [
        # FF family: slow and hungry.
        outcome("SMALLER", "FF", 1000.0, 500.0, sla=30.0),
        outcome("SMALLER", "FF-2", 900.0, 450.0, sla=10.0),
        outcome("SMALLER", "FF-3", 1200.0, 700.0, sla=60.0),
        # PA family: faster and frugal.
        outcome("SMALLER", "PA-1", 850.0, 300.0, sla=2.0),
        outcome("SMALLER", "PA-0", 800.0, 330.0, sla=1.0),
        outcome("SMALLER", "PA-0.5", 820.0, 310.0, sla=1.5),
    ]
    return EvaluationResult(outcomes=tuple(cells), n_jobs=10, n_vms=25, campaign=None)


class TestHeadlineClaims:
    def test_improvements_computed(self):
        claims = headline_claims(synthetic_result())[0]
        # best PA (800) vs worst FF (1200): 33.3%
        assert claims.max_makespan_improvement_pct == pytest.approx(100 * 400 / 1200)
        # vs plain FF (1000): 20%
        assert claims.makespan_improvement_vs_ff_pct == pytest.approx(20.0)

    def test_energy_savings(self):
        claims = headline_claims(synthetic_result())[0]
        ff_avg = (500 + 450 + 700) / 3
        pa_avg = (300 + 330 + 310) / 3
        assert claims.avg_energy_saving_pct == pytest.approx(100 * (ff_avg - pa_avg) / ff_avg)

    def test_pa_goal_deltas(self):
        claims = headline_claims(synthetic_result())[0]
        assert claims.pa0_vs_pa1_makespan_pct == pytest.approx(100 * 50 / 850)
        assert claims.pa1_vs_pa0_energy_pct == pytest.approx(100 * 30 / 330)

    def test_sla_comparison(self):
        claims = headline_claims(synthetic_result())[0]
        # worst PA 2.0 minus best FF 10.0 = -8 pp.
        assert claims.pa_worst_minus_ff_best_sla_pp == pytest.approx(-8.0)

    def test_correlation_positive_for_consistent_data(self):
        claims = headline_claims(synthetic_result())[0]
        assert claims.makespan_sla_correlation > 0.8

    def test_missing_strategy_raises(self):
        partial = EvaluationResult(
            outcomes=(outcome("SMALLER", "FF", 1.0, 1.0),),
            n_jobs=1,
            n_vms=1,
            campaign=None,
        )
        with pytest.raises(KeyError, match="missing"):
            headline_claims(partial)


class TestCorrelation:
    def test_perfect_positive(self):
        assert _correlation([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert _correlation([1, 2, 3], [30, 20, 10]) == pytest.approx(-1.0)

    def test_constant_side_is_zero(self):
        assert _correlation([1, 1, 1], [1, 2, 3]) == 0.0


class TestFormatSeriesTable:
    def test_layout(self):
        series = {
            "SMALLER": [("FF", 100.0), ("PA-1", 50.0)],
            "LARGER": [("FF", 90.0)],
        }
        text = format_series_table(series, "{:.0f}", title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "LARGER" in lines[1] and "SMALLER" in lines[1]
        # PA-1 has no LARGER cell: dash placeholder.
        pa_line = next(l for l in lines if l.startswith("PA-1"))
        assert "-" in pa_line
