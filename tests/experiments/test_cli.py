"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import _parse_batch, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    @pytest.mark.parametrize(
        "argv",
        [
            ["profile"],
            ["campaign", "-o", "/tmp/x"],
            ["allocate", "--model", "/tmp/x"],
            ["evaluate", "--vm-budget", "100"],
            ["fig2"],
        ],
    )
    def test_known_commands_parse(self, argv):
        args = build_parser().parse_args(argv)
        assert args.command == argv[0]


class TestBatchSpec:
    def test_parse_counts(self):
        batch = _parse_batch("4cpu,2mem,1io")
        classes = [r.workload_class.value for r in batch]
        assert classes.count("cpu") == 4
        assert classes.count("mem") == 2
        assert classes.count("io") == 1

    def test_implicit_count_of_one(self):
        assert len(_parse_batch("cpu")) == 1

    @pytest.mark.parametrize("spec", ["4gpu", "cpu4", "4 cpu x", "nonsense"])
    def test_bad_component_rejected_with_exit_code_2(self, spec, capsys):
        with pytest.raises(SystemExit) as excinfo:
            _parse_batch(spec)
        assert excinfo.value.code == 2
        assert "bad batch component" in capsys.readouterr().err

    def test_empty_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            _parse_batch(",")
        assert excinfo.value.code == 2


class TestArgValidation:
    @pytest.mark.parametrize("alpha", ["-0.1", "1.5", "two"])
    def test_alpha_out_of_range_exits_2(self, alpha, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(
                ["allocate", "--model", "/tmp/x", "--alpha", alpha]
            )
        assert excinfo.value.code == 2
        assert "alpha" in capsys.readouterr().err

    @pytest.mark.parametrize("alpha", ["0", "1", "0.5"])
    def test_alpha_in_range_accepted(self, alpha):
        args = build_parser().parse_args(
            ["allocate", "--model", "/tmp/x", "--alpha", alpha]
        )
        assert args.alpha == float(alpha)

    def test_bad_format_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["evaluate", "--format", "yaml"])
        assert excinfo.value.code == 2

    @pytest.mark.parametrize("jobs", ["0", "-2", "1.5", "four"])
    @pytest.mark.parametrize("command", ["evaluate", "reproduce"])
    def test_bad_jobs_rejected_with_exit_code_2(self, command, jobs, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args([command, "--jobs", jobs])
        assert excinfo.value.code == 2
        assert "jobs must be an integer >= 1" in capsys.readouterr().err

    @pytest.mark.parametrize("command", ["evaluate", "reproduce"])
    def test_jobs_accepted_and_defaults_to_serial(self, command):
        assert build_parser().parse_args([command, "--jobs", "4"]).jobs == 4
        assert build_parser().parse_args([command]).jobs == 1

    @pytest.mark.parametrize("budget", ["0", "-1.5", "nan", "inf", "soon"])
    @pytest.mark.parametrize("command", ["allocate", "evaluate"])
    def test_bad_time_budget_rejected_with_exit_code_2(
        self, command, budget, capsys
    ):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args([command, "--time-budget", budget])
        assert excinfo.value.code == 2
        assert "time-budget" in capsys.readouterr().err

    @pytest.mark.parametrize("command", ["allocate", "evaluate"])
    def test_time_budget_accepted_and_defaults_to_none(self, command):
        base = ["--model", "/tmp/x"] if command == "allocate" else []
        args = build_parser().parse_args(
            [command, *base, "--time-budget", "2.5"]
        )
        assert args.time_budget == 2.5
        assert build_parser().parse_args([command, *base]).time_budget is None


class TestCommands:
    def test_profile_command(self, capsys):
        assert main(["profile", "fftw"]) == 0
        out = capsys.readouterr().out
        assert "fftw" in out and "class=cpu" in out

    def test_fig2_command(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "optimum at 9 VMs" in out

    def test_evaluate_with_jobs(self, capsys):
        assert main(["evaluate", "--vm-budget", "60", "--jobs", "2", "--quiet"]) == 0
        assert "Fig. 5: makespan" in capsys.readouterr().out

    def test_campaign_then_allocate(self, tmp_path, capsys):
        assert main(["campaign", "-o", str(tmp_path), "--quiet"]) == 0
        assert (tmp_path / "model_database.csv").exists()
        assert (tmp_path / "auxiliary.csv").exists()
        assert main(
            ["allocate", "--model", str(tmp_path), "--alpha", "1.0", "--vms", "3cpu"]
        ) == 0
        out = capsys.readouterr().out
        assert "makespan" in out


class TestObservabilityFlags:
    @pytest.fixture(scope="class")
    def model_dir(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("model")
        assert main(["campaign", "-o", str(path), "--quiet"]) == 0
        return path

    def test_allocate_json_format(self, model_dir, capsys):
        assert main(
            ["allocate", "--model", str(model_dir), "--vms", "2cpu,1mem",
             "--format", "json"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema_version"] == "1"
        assert document["command"] == "allocate"
        plan = document["plan"]
        assert plan["schema_version"] == "1"
        assert plan["qos_satisfied"] in (True, False)
        assert len(plan["assignments"]) >= 1
        assert plan["search_provenance"]["partitions_enumerated"] > 0
        assert document["metrics"]["counters"]["allocator.calls"] == 1

    def test_allocate_trace_and_metrics_files(self, model_dir, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        assert main(
            ["allocate", "--model", str(model_dir), "--vms", "2cpu",
             "--trace", str(trace), "--metrics", str(metrics)]
        ) == 0
        capsys.readouterr()
        events = [json.loads(line) for line in trace.read_text().splitlines()]
        assert events, "trace file must hold at least one event"
        for event in events:
            assert {"event", "span_id", "name", "t_wall", "t_sim"} <= event.keys()
        snapshot = json.loads(metrics.read_text())
        assert snapshot["schema_version"] == "1"
        assert snapshot["counters"]["allocator.calls"] == 1

    def test_allocate_json_echoes_time_budget(self, model_dir, capsys):
        assert main(
            ["allocate", "--model", str(model_dir), "--vms", "2cpu",
             "--time-budget", "30", "--format", "json"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["time_budget_s"] == 30.0
        assert document["plan"]["search_provenance"]["anytime"] is True
        assert main(
            ["allocate", "--model", str(model_dir), "--vms", "2cpu",
             "--format", "json"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["time_budget_s"] is None
        assert document["plan"]["search_provenance"]["anytime"] is False

    def test_text_format_unchanged_by_default(self, model_dir, capsys):
        assert main(["allocate", "--model", str(model_dir), "--vms", "2cpu"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        with pytest.raises(json.JSONDecodeError):
            json.loads(out)
