"""Unit tests for the command-line interface."""

import pytest

from repro.cli import _parse_batch, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    @pytest.mark.parametrize(
        "argv",
        [
            ["profile"],
            ["campaign", "-o", "/tmp/x"],
            ["allocate", "--model", "/tmp/x"],
            ["evaluate", "--vm-budget", "100"],
            ["fig2"],
        ],
    )
    def test_known_commands_parse(self, argv):
        args = build_parser().parse_args(argv)
        assert args.command == argv[0]


class TestBatchSpec:
    def test_parse_counts(self):
        batch = _parse_batch("4cpu,2mem,1io")
        classes = [r.workload_class.value for r in batch]
        assert classes.count("cpu") == 4
        assert classes.count("mem") == 2
        assert classes.count("io") == 1

    def test_implicit_count_of_one(self):
        assert len(_parse_batch("cpu")) == 1

    def test_bad_component_rejected(self):
        with pytest.raises(SystemExit):
            _parse_batch("4gpu")

    def test_empty_rejected(self):
        with pytest.raises(SystemExit):
            _parse_batch(",")


class TestCommands:
    def test_profile_command(self, capsys):
        assert main(["profile", "fftw"]) == 0
        out = capsys.readouterr().out
        assert "fftw" in out and "class=cpu" in out

    def test_fig2_command(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "optimum at 9 VMs" in out

    def test_campaign_then_allocate(self, tmp_path, capsys):
        assert main(["campaign", "-o", str(tmp_path), "--quiet"]) == 0
        assert (tmp_path / "model_database.csv").exists()
        assert (tmp_path / "auxiliary.csv").exists()
        assert main(
            ["allocate", "--model", str(tmp_path), "--alpha", "1.0", "--vms", "3cpu"]
        ) == 0
        out = capsys.readouterr().out
        assert "makespan" in out
