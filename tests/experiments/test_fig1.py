"""Experiment tests: Fig. 1 profiles."""

import pytest

from repro.experiments.fig1_profiles import fig1_profiles
from repro.testbed.spec import Subsystem


@pytest.fixture(scope="module")
def result():
    return fig1_profiles()


class TestFig1:
    def test_left_panel_is_cpu_only(self, result):
        profile = result.cpu_intensive.profile
        assert profile.is_intensive(Subsystem.CPU)
        assert not profile.is_intensive(Subsystem.NETWORK)
        assert not profile.is_intensive(Subsystem.DISK)

    def test_right_panel_is_cpu_and_network(self, result):
        profile = result.cpu_network_intensive.profile
        assert profile.is_intensive(Subsystem.CPU)
        assert profile.is_intensive(Subsystem.NETWORK)

    def test_series_exported_for_both_panels(self, result):
        series = result.series()
        assert set(series) == {"cpu_intensive", "cpu_network_intensive"}
        for rows in series.values():
            assert len(rows) > 100  # ~1 sample/second over the run
            assert all(len(row) == 5 for row in rows)

    def test_utilization_windows_visible(self, result):
        # Fig. 1 shows low-demand init windows then a busy phase.
        trace = result.cpu_intensive.trace
        busy = trace.busy_fraction(Subsystem.CPU, threshold=0.8)
        assert 0.3 < busy < 0.95
