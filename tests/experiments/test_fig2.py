"""Experiment tests: Fig. 2 FFTW base curve."""

import pytest

from repro.experiments.fig2_basecurve import fig2_basecurve


@pytest.fixture(scope="module")
def result():
    return fig2_basecurve()


class TestFig2:
    def test_paper_optimum_nine_vms(self, result):
        assert result.optimal_n == 9

    def test_covers_one_to_sixteen(self, result):
        assert result.n_vms == tuple(range(1, 17))

    def test_solo_time_is_reference(self, result):
        assert result.solo_time_s == pytest.approx(600.0, rel=1e-6)

    def test_significant_degradation_past_eleven(self, result):
        assert result.degradation_at(12) > 1.5
        assert result.degradation_at(16) > 3.0

    def test_mild_at_ten(self, result):
        assert result.degradation_at(10) < 1.3

    def test_total_times_monotone(self, result):
        # Total completion time always grows with the VM count even
        # though the per-VM average has an interior optimum.
        totals = result.total_time_s
        assert all(b > a for a, b in zip(totals, totals[1:]))
