"""Shim for environments whose setuptools cannot do PEP-660 editable
installs (no ``wheel`` package available offline).  All metadata lives
in ``pyproject.toml``; this file only enables ``pip install -e .`` via
the legacy ``setup.py develop`` path.
"""

from setuptools import setup

setup()
